"""Pluggable QoS scheduling policies and the policy-ordered resource.

The paper runs "a simple FIFO-based policy" (Section 4) everywhere a
shared resource is arbitrated.  This module generalizes that single
hard-coded discipline into a :class:`SchedulerPolicy` family so any
contended point — splitter admission, accelerator units, per-port
slots — can be scheduled FIFO, round-robin fair-share across tenants,
strict-priority, or earliest-deadline-first, without the resource model
knowing which.

:class:`ScheduledResource` is the drop-in integration point: a counted
resource like :class:`repro.sim.resources.Resource`, except that when a
unit frees up the *policy* decides which waiter is granted next.  With
the default FIFO policy it is semantically identical to ``Resource``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple, Union

from ..sim import Event, LatencyHistogram, Simulator

__all__ = [
    "QueueEntry",
    "SchedulerPolicy",
    "FIFOPolicy",
    "RoundRobinPolicy",
    "StrictPriorityPolicy",
    "EarliestDeadlinePolicy",
    "ScheduledResource",
    "POLICIES",
    "make_policy",
]


class QueueEntry:
    """One waiter in a policy queue: QoS metadata + an opaque payload."""

    __slots__ = ("seq", "tenant", "priority", "deadline_ns", "enqueued_ns",
                 "payload")

    def __init__(self, seq: int, tenant: str, priority: int,
                 deadline_ns: Optional[int], enqueued_ns: int,
                 payload: object):
        self.seq = seq
        self.tenant = tenant
        self.priority = priority
        self.deadline_ns = deadline_ns
        self.enqueued_ns = enqueued_ns
        self.payload = payload

    def __repr__(self) -> str:
        return (f"<QueueEntry #{self.seq} tenant={self.tenant!r} "
                f"prio={self.priority} deadline={self.deadline_ns}>")


class SchedulerPolicy:
    """Ordering discipline for a queue of :class:`QueueEntry`.

    Subclasses implement :meth:`push` and :meth:`pop`; ``pop`` must
    return entries one at a time and only when non-empty.  Policies are
    pure data structures — they never touch the simulator clock — but
    they hold *per-resource* queue state, so one instance can drive only
    one resource (see :func:`bind_policy`); pass a name or class where a
    fresh policy per resource is wanted.
    """

    name = "abstract"

    def push(self, entry: QueueEntry) -> None:
        raise NotImplementedError

    def pop(self) -> QueueEntry:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} depth={len(self)}>"


class FIFOPolicy(SchedulerPolicy):
    """Arrival order — the paper's "simple FIFO-based policy"."""

    name = "fifo"

    def __init__(self):
        self._queue: Deque[QueueEntry] = deque()

    def push(self, entry: QueueEntry) -> None:
        self._queue.append(entry)

    def pop(self) -> QueueEntry:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class RoundRobinPolicy(SchedulerPolicy):
    """Fair share: grants rotate over tenants with waiting requests.

    Within a tenant, arrival order is preserved; across tenants each
    grant goes to the next tenant in rotation, so an aggressor with a
    deep queue cannot starve a light tenant — the light tenant waits at
    most one grant per competing tenant instead of behind the whole
    backlog.
    """

    name = "rr"

    def __init__(self):
        self._queues: "OrderedDict[str, Deque[QueueEntry]]" = OrderedDict()
        self._count = 0

    def push(self, entry: QueueEntry) -> None:
        queue = self._queues.get(entry.tenant)
        if queue is None:
            # New (or re-appearing) tenant joins the end of the rotation.
            queue = deque()
            self._queues[entry.tenant] = queue
        queue.append(entry)
        self._count += 1

    def pop(self) -> QueueEntry:
        tenant, queue = next(iter(self._queues.items()))
        entry = queue.popleft()
        del self._queues[tenant]
        if queue:
            # Tenant still has work: back of the rotation.
            self._queues[tenant] = queue
        self._count -= 1
        return entry

    def __len__(self) -> int:
        return self._count


class StrictPriorityPolicy(SchedulerPolicy):
    """Highest ``priority`` first; FIFO within a priority level."""

    name = "priority"

    def __init__(self):
        self._heap: list = []

    def push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, (-entry.priority, entry.seq, entry))

    def pop(self) -> QueueEntry:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class EarliestDeadlinePolicy(SchedulerPolicy):
    """EDF: soonest absolute deadline first; deadline-less requests last."""

    name = "edf"

    _NO_DEADLINE = float("inf")

    def __init__(self):
        self._heap: list = []

    def push(self, entry: QueueEntry) -> None:
        key = (self._NO_DEADLINE if entry.deadline_ns is None
               else entry.deadline_ns)
        heapq.heappush(self._heap, (key, entry.seq, entry))

    def pop(self) -> QueueEntry:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


POLICIES: Dict[str, type] = {
    "fifo": FIFOPolicy,
    "rr": RoundRobinPolicy,
    "round-robin": RoundRobinPolicy,
    "priority": StrictPriorityPolicy,
    "edf": EarliestDeadlinePolicy,
}


def make_policy(policy: Union[str, SchedulerPolicy, type, None]
                ) -> SchedulerPolicy:
    """Coerce a name / class / instance into a fresh-enough policy.

    Strings look up :data:`POLICIES`; ``None`` means FIFO.  Instances
    are returned as-is (callers own their sharing semantics).
    """
    if policy is None:
        return FIFOPolicy()
    if isinstance(policy, SchedulerPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, SchedulerPolicy):
        return policy()
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler policy {policy!r}; "
                f"known: {sorted(set(POLICIES))}") from None
    raise TypeError(f"cannot make a scheduler policy from {policy!r}")


def bind_policy(policy: Union[str, SchedulerPolicy, type, None],
                owner: str) -> SchedulerPolicy:
    """Resolve a policy and claim it for one scheduling point.

    A policy instance holds that resource's queue, so sharing one
    between resources silently mixes their waiters (one resource's
    release would grant another's queue entry).  Names and classes
    yield a fresh instance every call; an explicit instance may be
    bound exactly once, and reuse raises immediately instead of
    corrupting grants at runtime.
    """
    resolved = make_policy(policy)
    bound_to = getattr(resolved, "_bound_to", None)
    if bound_to is not None:
        raise ValueError(
            f"policy {resolved!r} already drives {bound_to!r}; policy "
            f"instances hold per-resource queue state — pass the policy "
            f"name or class to give each resource its own")
    resolved._bound_to = owner
    return resolved


class ScheduledResource:
    """A counted resource whose grant order is decided by a policy.

    ``request()`` returns an event that fires when a unit is granted;
    ``release()`` frees a unit and immediately grants it to whichever
    waiter the policy picks.  Wait statistics (overall and per tenant)
    are log-bucketed histograms, so memory stays O(1) no matter how
    many requests a heavy multi-tenant run pushes through.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 policy: Union[str, SchedulerPolicy, None] = None,
                 name: str = ""):
        if capacity < 1:
            raise ValueError(
                f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.policy = bind_policy(policy, name or "ScheduledResource")
        self.name = name
        self.in_use = 0
        self._seq = itertools.count()
        self.wait_stats = LatencyHistogram(f"{name}-wait")
        self.tenant_waits: Dict[str, LatencyHistogram] = {}
        self.grants: Dict[str, int] = {}

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_depth(self) -> int:
        return len(self.policy)

    def request(self, tenant: str = "default", priority: int = 0,
                deadline_ns: Optional[int] = None) -> Event:
        """Event firing when the policy grants this waiter a unit."""
        event = Event(self.sim)
        entry = QueueEntry(next(self._seq), tenant, priority, deadline_ns,
                           self.sim.now, event)
        if self.in_use < self.capacity and not len(self.policy):
            self._grant(entry)
        else:
            self.policy.push(entry)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise ValueError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        if len(self.policy):
            self._grant(self.policy.pop())

    def _grant(self, entry: QueueEntry) -> None:
        self.in_use += 1
        waited = self.sim.now - entry.enqueued_ns
        self.wait_stats.record(waited)
        stats = self.tenant_waits.get(entry.tenant)
        if stats is None:
            stats = self.tenant_waits[entry.tenant] = LatencyHistogram(
                f"{self.name}-wait-{entry.tenant}")
        stats.record(waited)
        self.grants[entry.tenant] = self.grants.get(entry.tenant, 0) + 1
        entry.payload.succeed()

    def use(self, hold_ns: int, tenant: str = "default"):
        """Process helper: acquire, hold for ``hold_ns``, release."""
        def _use(sim=self.sim):
            yield self.request(tenant=tenant)
            try:
                yield sim.timeout(hold_ns)
            finally:
                self.release()
        return _use()
