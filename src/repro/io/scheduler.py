"""Pluggable QoS scheduling policies and the policy-ordered resource.

The paper runs "a simple FIFO-based policy" (Section 4) everywhere a
shared resource is arbitrated.  This module generalizes that single
hard-coded discipline into a :class:`SchedulerPolicy` family so any
contended point — splitter admission, accelerator units, per-port
slots — can be scheduled FIFO, round-robin fair-share across tenants,
weighted-fair-share (virtual-time WFQ over per-tenant weights),
token-bucket rate-limited, strict-priority, or earliest-deadline-first,
without the resource model knowing which.

:class:`ScheduledResource` is the drop-in integration point: a counted
resource like :class:`repro.sim.resources.Resource`, except that when a
unit frees up the *policy* decides which waiter is granted next.  With
the default FIFO policy it is semantically identical to ``Resource``.
Entries carry a *cost* (bytes for I/O admission) so that weighted fair
share and token buckets account bandwidth, not just slot counts, and
the resource keeps per-tenant served-byte totals.

Rate-limiting policies are the one departure from pure reordering: a
token bucket may have waiters that are not yet *eligible*.  The policy
protocol therefore includes :meth:`SchedulerPolicy.next_ready_ns`,
letting :class:`ScheduledResource` park until the earliest refill
instead of busy-granting — the only scheduling point that is allowed
to leave capacity idle while requests are queued.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..sim import Event, LatencyHistogram, Simulator

__all__ = [
    "QueueEntry",
    "SchedulerPolicy",
    "FIFOPolicy",
    "RoundRobinPolicy",
    "WeightedFairPolicy",
    "TokenBucketPolicy",
    "StrictPriorityPolicy",
    "EarliestDeadlinePolicy",
    "ScheduledResource",
    "POLICIES",
    "make_policy",
]


class QueueEntry:
    """One waiter in a policy queue: QoS metadata + an opaque payload.

    ``cost`` is the amount of the resource's accounted quantity this
    grant consumes — bytes for splitter admission, 1 for unit-shaped
    resources.  Weighted fair share charges ``cost / weight`` of virtual
    time per grant; token buckets drain ``cost`` tokens.

    ``pages`` is the entry's *batch width*: a coalesced multi-page
    command occupies one grant slot but carries the merged pages'
    combined cost, so fair-share and rate policies arbitrate the real
    load while the capacity count still reflects commands.  Unit
    entries leave it at 1.
    """

    __slots__ = ("seq", "tenant", "priority", "deadline_ns", "enqueued_ns",
                 "payload", "cost", "pages")

    def __init__(self, seq: int, tenant: str, priority: int,
                 deadline_ns: Optional[int], enqueued_ns: int,
                 payload: object, cost: int = 1, pages: int = 1):
        if pages < 1:
            raise ValueError(f"pages must be >= 1, got {pages}")
        self.seq = seq
        self.tenant = tenant
        self.priority = priority
        self.deadline_ns = deadline_ns
        self.enqueued_ns = enqueued_ns
        self.payload = payload
        self.cost = cost
        self.pages = pages

    def __repr__(self) -> str:
        return (f"<QueueEntry #{self.seq} tenant={self.tenant!r} "
                f"prio={self.priority} deadline={self.deadline_ns} "
                f"cost={self.cost} pages={self.pages}>")


class SchedulerPolicy:
    """Ordering discipline for a queue of :class:`QueueEntry`.

    Subclasses implement :meth:`push` and :meth:`pop`; ``pop`` must
    return entries one at a time and only when non-empty.  Policies are
    pure data structures — they never touch the simulator clock (``pop``
    and :meth:`next_ready_ns` receive the current time from the caller)
    — but they hold *per-resource* queue state, so one instance can
    drive only one resource (see :func:`bind_policy`); pass a name or
    class where a fresh policy per resource is wanted.

    Per-tenant QoS parameters (``weight``, ``rate_bytes_per_ns``,
    ``burst_bytes``) arrive through :meth:`configure_tenant`; policies
    that don't use a parameter simply ignore it, so one configuration
    pass works for every discipline.
    """

    name = "abstract"

    def __init__(self):
        #: tenant -> {param: value} QoS configuration.
        self.tenant_config: Dict[str, Dict[str, float]] = {}

    def configure_tenant(self, tenant: str, **params) -> None:
        """Record per-tenant QoS parameters (None values are ignored)."""
        config = self.tenant_config.setdefault(tenant, {})
        config.update({key: value for key, value in params.items()
                       if value is not None})

    def push(self, entry: QueueEntry) -> None:
        raise NotImplementedError

    def pop(self, now: int = 0) -> QueueEntry:
        raise NotImplementedError

    def next_ready_ns(self, now: int) -> Optional[int]:
        """Earliest time a queued entry is dispatchable.

        ``None`` when the queue is empty; ``now`` for work-conserving
        policies with waiters.  Rate-limiting policies return the
        earliest refill instant, which may be in the future.
        """
        return now if len(self) else None

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} depth={len(self)}>"


class FIFOPolicy(SchedulerPolicy):
    """Arrival order — the paper's "simple FIFO-based policy"."""

    name = "fifo"

    def __init__(self):
        super().__init__()
        self._queue: Deque[QueueEntry] = deque()

    def push(self, entry: QueueEntry) -> None:
        self._queue.append(entry)

    def pop(self, now: int = 0) -> QueueEntry:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class RoundRobinPolicy(SchedulerPolicy):
    """Fair share: grants rotate over tenants with waiting requests.

    Within a tenant, arrival order is preserved; across tenants each
    grant goes to the next tenant in rotation, so an aggressor with a
    deep queue cannot starve a light tenant — the light tenant waits at
    most one grant per competing tenant instead of behind the whole
    backlog.
    """

    name = "rr"

    def __init__(self):
        super().__init__()
        self._queues: "OrderedDict[str, Deque[QueueEntry]]" = OrderedDict()
        self._count = 0

    def push(self, entry: QueueEntry) -> None:
        queue = self._queues.get(entry.tenant)
        if queue is None:
            # New (or re-appearing) tenant joins the end of the rotation.
            queue = deque()
            self._queues[entry.tenant] = queue
        queue.append(entry)
        self._count += 1

    def pop(self, now: int = 0) -> QueueEntry:
        tenant, queue = next(iter(self._queues.items()))
        entry = queue.popleft()
        del self._queues[tenant]
        if queue:
            # Tenant still has work: back of the rotation.
            self._queues[tenant] = queue
        self._count -= 1
        return entry

    def __len__(self) -> int:
        return self._count


class WeightedFairPolicy(SchedulerPolicy):
    """Weighted fair share: start-time fair queueing over tenant weights.

    Round-robin equalizes *grant counts*; when request sizes differ
    across tenants that under-protects victims (a tenant of 8 KB reads
    and a tenant of 512 B metadata ops are not equal loads).  WFQ
    instead equalizes *weighted service*: each entry is stamped with a
    virtual start tag ``max(V, finish[tenant])`` and advances its
    tenant's finish tag by ``cost / weight``; grants go in start-tag
    order and the virtual clock ``V`` jumps to each granted tag.  Over
    any interval in which a set of tenants stays backlogged, tenant
    throughput (in cost units) converges to the ratio of their weights.

    Weights come from :meth:`configure_tenant` (``weight=...``);
    unconfigured tenants get weight 1.0.  Work-conserving.
    """

    name = "wfq"

    def __init__(self, default_weight: float = 1.0):
        super().__init__()
        if default_weight <= 0:
            raise ValueError(
                f"default_weight must be > 0, got {default_weight}")
        self.default_weight = default_weight
        self._heap: list = []
        self._vtime = 0.0
        self._finish: Dict[str, float] = {}

    def weight_of(self, tenant: str) -> float:
        weight = self.tenant_config.get(tenant, {}).get(
            "weight", self.default_weight)
        if weight <= 0:
            raise ValueError(f"tenant {tenant!r} weight must be > 0")
        return float(weight)

    def push(self, entry: QueueEntry) -> None:
        start = max(self._vtime, self._finish.get(entry.tenant, 0.0))
        # A zero-cost entry (e.g. an erase) still advances the finish
        # tag by one unit so a tenant cannot spam cost-free work.
        charge = max(entry.cost, 1) / self.weight_of(entry.tenant)
        self._finish[entry.tenant] = start + charge
        heapq.heappush(self._heap, (start, entry.seq, entry))

    def pop(self, now: int = 0) -> QueueEntry:
        start, _, entry = heapq.heappop(self._heap)
        # Virtual time tracks the service the busiest tenants received.
        self._vtime = max(self._vtime, start)
        return entry

    def __len__(self) -> int:
        return len(self._heap)


class TokenBucketPolicy(SchedulerPolicy):
    """Per-tenant token-bucket rate limiting; FIFO among eligible heads.

    Each configured tenant owns a bucket that refills at
    ``rate_bytes_per_ns`` up to ``burst_bytes``; a tenant's head entry
    is eligible once the bucket holds ``min(cost, burst)`` tokens (an
    entry larger than the whole burst passes on a full bucket and drives
    the balance negative, so oversized requests throttle — they never
    deadlock).  Unconfigured tenants are unthrottled.  Among eligible
    tenants the earliest-arrived head is granted, so the policy degrades
    to FIFO when no cap binds.

    This is the one *non-work-conserving* discipline: when every queued
    tenant is throttled, :meth:`next_ready_ns` reports the earliest
    refill instant and the resource idles until then.  A direct
    :meth:`pop` with no eligible head falls back to the earliest-arrived
    entry (charging its bucket), so ``pop`` is always total — shaping
    comes from callers honoring :meth:`next_ready_ns`.
    """

    name = "token-bucket"

    _EPS = 1e-9
    #: A rate configured without a burst gets this bucket capacity
    #: (matching the TenantSpec default) — a zero-capacity bucket would
    #: invert the cap into either starvation or a free pass.
    DEFAULT_BURST_BYTES = 64 * 1024

    def __init__(self):
        super().__init__()
        self._queues: "OrderedDict[str, Deque[QueueEntry]]" = OrderedDict()
        self._count = 0
        self._tokens: Dict[str, float] = {}
        self._refilled_ns: Dict[str, int] = {}

    def _limits(self, tenant: str) -> Tuple[Optional[float], float]:
        config = self.tenant_config.get(tenant, {})
        rate = config.get("rate_bytes_per_ns")
        burst = config.get("burst_bytes") or self.DEFAULT_BURST_BYTES
        return rate, float(burst)

    def _refill(self, tenant: str, now: int) -> float:
        """Advance the bucket to ``now``; returns the balance."""
        rate, burst = self._limits(tenant)
        if rate is None:
            return float("inf")
        last = self._refilled_ns.get(tenant)
        if last is None:
            # First sighting: the bucket starts full.
            self._refilled_ns[tenant] = now
            self._tokens[tenant] = burst
            return burst
        if now > last:
            self._tokens[tenant] = min(
                burst, self._tokens[tenant] + (now - last) * rate)
            self._refilled_ns[tenant] = now
        return self._tokens[tenant]

    def _need(self, tenant: str, entry: QueueEntry) -> float:
        rate, burst = self._limits(tenant)
        if rate is None:
            return 0.0
        return min(float(entry.cost), burst)

    def push(self, entry: QueueEntry) -> None:
        queue = self._queues.get(entry.tenant)
        if queue is None:
            queue = self._queues[entry.tenant] = deque()
        queue.append(entry)
        self._count += 1

    def _eligible_head(self, now: int) -> Optional[str]:
        """The tenant with the earliest-arrived *eligible* head entry."""
        best: Optional[str] = None
        best_seq = -1
        for tenant, queue in self._queues.items():
            head = queue[0]
            if self._refill(tenant, now) + self._EPS >= self._need(
                    tenant, head):
                if best is None or head.seq < best_seq:
                    best, best_seq = tenant, head.seq
        return best

    def pop(self, now: int = 0) -> QueueEntry:
        tenant = self._eligible_head(now)
        if tenant is None:
            # Forced dispatch (caller did not honor next_ready_ns):
            # earliest arrival overall, still charged to its bucket.
            tenant = min(self._queues, key=lambda t: self._queues[t][0].seq)
        queue = self._queues[tenant]
        entry = queue.popleft()
        if not queue:
            del self._queues[tenant]
        self._count -= 1
        rate, _ = self._limits(tenant)
        if rate is not None:
            self._refill(tenant, now)
            self._tokens[tenant] -= entry.cost
        return entry

    def next_ready_ns(self, now: int) -> Optional[int]:
        if not self._count:
            return None
        if self._eligible_head(now) is not None:
            return now
        ready: Optional[int] = None
        for tenant, queue in self._queues.items():
            rate, _ = self._limits(tenant)
            tokens = self._refill(tenant, now)
            deficit = self._need(tenant, queue[0]) - tokens
            wait = int(deficit / rate) + 1  # ceil, strictly future
            when = now + max(wait, 1)
            if ready is None or when < ready:
                ready = when
        return ready

    def __len__(self) -> int:
        return self._count


class StrictPriorityPolicy(SchedulerPolicy):
    """Highest ``priority`` first; FIFO within a priority level."""

    name = "priority"

    def __init__(self):
        super().__init__()
        self._heap: list = []

    def push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, (-entry.priority, entry.seq, entry))

    def pop(self, now: int = 0) -> QueueEntry:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class EarliestDeadlinePolicy(SchedulerPolicy):
    """EDF: soonest absolute deadline first; deadline-less requests last."""

    name = "edf"

    _NO_DEADLINE = float("inf")

    def __init__(self):
        super().__init__()
        self._heap: list = []

    def push(self, entry: QueueEntry) -> None:
        key = (self._NO_DEADLINE if entry.deadline_ns is None
               else entry.deadline_ns)
        heapq.heappush(self._heap, (key, entry.seq, entry))

    def pop(self, now: int = 0) -> QueueEntry:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


POLICIES: Dict[str, type] = {
    "fifo": FIFOPolicy,
    "rr": RoundRobinPolicy,
    "round-robin": RoundRobinPolicy,
    "wfq": WeightedFairPolicy,
    "weighted": WeightedFairPolicy,
    "token-bucket": TokenBucketPolicy,
    "tb": TokenBucketPolicy,
    "priority": StrictPriorityPolicy,
    "edf": EarliestDeadlinePolicy,
}


def make_policy(policy: Union[str, SchedulerPolicy, type, None]
                ) -> SchedulerPolicy:
    """Coerce a name / class / instance into a fresh-enough policy.

    Strings look up :data:`POLICIES`; ``None`` means FIFO.  Instances
    are returned as-is (callers own their sharing semantics).
    """
    if policy is None:
        return FIFOPolicy()
    if isinstance(policy, SchedulerPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, SchedulerPolicy):
        return policy()
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler policy {policy!r}; "
                f"known: {sorted(set(POLICIES))}") from None
    raise TypeError(f"cannot make a scheduler policy from {policy!r}")


def bind_policy(policy: Union[str, SchedulerPolicy, type, None],
                owner: str) -> SchedulerPolicy:
    """Resolve a policy and claim it for one scheduling point.

    A policy instance holds that resource's queue, so sharing one
    between resources silently mixes their waiters (one resource's
    release would grant another's queue entry).  Names and classes
    yield a fresh instance every call; an explicit instance may be
    bound exactly once, and reuse raises immediately instead of
    corrupting grants at runtime.
    """
    resolved = make_policy(policy)
    bound_to = getattr(resolved, "_bound_to", None)
    if bound_to is not None:
        raise ValueError(
            f"policy {resolved!r} already drives {bound_to!r}; policy "
            f"instances hold per-resource queue state — pass the policy "
            f"name or class to give each resource its own")
    resolved._bound_to = owner
    return resolved


class ScheduledResource:
    """A counted resource whose grant order is decided by a policy.

    ``request()`` returns an event that fires when a unit is granted;
    ``release()`` frees a unit and pumps the policy: whichever waiter
    it picks is granted immediately — unless the policy is rate-limited
    and reports no eligible waiter, in which case the resource parks a
    wakeup at the earliest refill instant.  Wait statistics (overall
    and per tenant) are log-bucketed histograms, so memory stays O(1)
    no matter how many requests a heavy multi-tenant run pushes
    through; ``served`` accumulates each tenant's granted cost (bytes,
    for I/O admission) for bandwidth accounting.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 policy: Union[str, SchedulerPolicy, None] = None,
                 name: str = ""):
        if capacity < 1:
            raise ValueError(
                f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.policy = bind_policy(policy, name or "ScheduledResource")
        self.name = name
        self.in_use = 0
        self._seq = itertools.count()
        self._wakeup_at: Optional[int] = None
        self.wait_stats = LatencyHistogram(f"{name}-wait")
        self.tenant_waits: Dict[str, LatencyHistogram] = {}
        self.grants: Dict[str, int] = {}
        #: tenant -> total granted cost (bytes for I/O admission).
        self.served: Dict[str, int] = {}
        #: tenant -> total pages granted (> grants when commands are
        #: coalesced: one grant may carry several merged pages).
        self.served_pages: Dict[str, int] = {}

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_depth(self) -> int:
        return len(self.policy)

    def configure_tenant(self, tenant: str, **params) -> None:
        """Forward per-tenant QoS parameters to the policy."""
        self.policy.configure_tenant(tenant, **params)

    def request(self, tenant: str = "default", priority: int = 0,
                deadline_ns: Optional[int] = None, cost: int = 1,
                pages: int = 1) -> Event:
        """Event firing when the policy grants this waiter a unit.

        ``cost`` is the accounted quantity this grant consumes (bytes
        for I/O admission; 1 for unit-shaped resources).  ``pages`` is
        the grant's batch width — how many coalesced pages ride on this
        single slot (1 for ordinary requests).
        """
        event = Event(self.sim)
        entry = QueueEntry(next(self._seq), tenant, priority, deadline_ns,
                           self.sim.now, event, cost=cost, pages=pages)
        self.policy.push(entry)
        self._pump()
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise ValueError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        self._pump()

    def _pump(self) -> None:
        """Grant waiters while capacity is free and the policy is ready."""
        now = self.sim.now
        while self.in_use < self.capacity and len(self.policy):
            ready = self.policy.next_ready_ns(now)
            if ready is None:
                return
            if ready <= now:
                self._grant(self.policy.pop(now))
            else:
                self._park(ready)
                return

    def _park(self, when: int) -> None:
        """Schedule a pump at ``when`` (the earliest eligibility time)."""
        if self._wakeup_at is not None and self._wakeup_at <= when:
            return
        self._wakeup_at = when
        timeout = self.sim.timeout(when - self.sim.now)

        def _fire(event, when=when):
            if self._wakeup_at == when:
                self._wakeup_at = None
            self._pump()

        timeout.callbacks.append(_fire)

    def _grant(self, entry: QueueEntry) -> None:
        self.in_use += 1
        waited = self.sim.now - entry.enqueued_ns
        self.wait_stats.record(waited)
        stats = self.tenant_waits.get(entry.tenant)
        if stats is None:
            stats = self.tenant_waits[entry.tenant] = LatencyHistogram(
                f"{self.name}-wait-{entry.tenant}")
        stats.record(waited)
        self.grants[entry.tenant] = self.grants.get(entry.tenant, 0) + 1
        self.served[entry.tenant] = (
            self.served.get(entry.tenant, 0) + entry.cost)
        self.served_pages[entry.tenant] = (
            self.served_pages.get(entry.tenant, 0) + entry.pages)
        entry.payload.succeed()

    def use(self, hold_ns: int, tenant: str = "default"):
        """Process helper: acquire, hold for ``hold_ns``, release."""
        def _use(sim=self.sim):
            yield self.request(tenant=tenant)
            try:
                yield sim.timeout(hold_ns)
            finally:
                self.release()
        return _use()
