"""Stage protocol and timing spans for the unified request pipeline.

A *stage* is any element a request passes through that costs simulated
time: the host syscall path, a splitter admission queue, the flash
array, a DMA engine.  Concrete models implement the :class:`Stage`
protocol (a name plus a DES-generator ``process``); existing layers that
interleave several concerns instead charge time to named stages with
:class:`StageSpan`, which is safe to use around ``yield`` points because
a span only reads the simulator clock from its own process.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, runtime_checkable

from ..sim import Simulator
from .request import IORequest

__all__ = ["Stage", "StageSpan", "BatchStageSpan", "Pipeline"]


@runtime_checkable
class Stage(Protocol):
    """A named pipeline element that processes one request at a time.

    ``process`` is a DES generator: it may yield events/timeouts and
    returns when the stage is done with the request.  Its return value
    is passed through by :class:`Pipeline` (the last stage's return
    value becomes the pipeline result).
    """

    name: str

    def process(self, request: IORequest):  # pragma: no cover - protocol
        ...


class _NullSpan:
    """Shared do-nothing span for untraced requests.

    One module-level instance serves every untraced ``with`` block, so
    a pipeline running without a tracer (or whose request fell outside
    the 1-in-N trace sample) allocates nothing per stage.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class StageSpan:
    """Charge the wall-clock of a ``with`` block to ``request``'s stage.

    Usage inside a DES generator::

        with StageSpan(sim, request, "software"):
            yield sim.process(cpu.compute(cost))

    ``request=None`` makes the span a no-op, so call sites don't need
    to branch on whether tracing is attached — and no span object is
    allocated at all (a shared null span is returned instead).
    """

    __slots__ = ("sim", "request", "stage")

    def __new__(cls, sim: Simulator, request: Optional[IORequest],
                stage: str):
        if not request:
            # None or UNSAMPLED: __init__ is skipped because _NullSpan
            # is not a StageSpan.
            return _NULL_SPAN
        return object.__new__(cls)

    def __init__(self, sim: Simulator, request: Optional[IORequest],
                 stage: str):
        self.sim = sim
        self.request = request
        self.stage = stage

    def __enter__(self) -> "StageSpan":
        self.request.enter(self.stage, self.sim.now)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.request.exit(self.stage, self.sim.now)


class BatchStageSpan:
    """Charge one ``with`` block's wall-clock to *every* request of a
    coalesced command or batch.

    Where a merged multi-page command holds several child requests
    through one shared wait — the admission queue, the physical tag,
    the command-setup overhead — each child spent that wall-clock time
    in the stage, so each child's ledger is charged the full span.
    That keeps per-child attribution exact (the
    :class:`~repro.io.tracer.RequestTracer` still decomposes every
    child's end-to-end latency into queueing vs. service) while the
    *amortization* shows up where it belongs: N children share one
    span instead of paying N sequential ones.

    ``requests`` may contain ``None`` or
    :data:`~repro.io.request.UNSAMPLED` entries (untraced children);
    they are skipped, so call sites never branch on tracing.
    """

    __slots__ = ("sim", "requests", "stage")

    def __new__(cls, sim: Simulator,
                requests: Iterable[Optional[IORequest]], stage: str):
        for request in requests:
            if request:
                return object.__new__(cls)
        return _NULL_SPAN

    def __init__(self, sim: Simulator,
                 requests: Iterable[Optional[IORequest]], stage: str):
        self.sim = sim
        self.requests = [r for r in requests if r]
        self.stage = stage

    def __enter__(self) -> "BatchStageSpan":
        now = self.sim.now
        for request in self.requests:
            request.enter(self.stage, now)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        now = self.sim.now
        for request in self.requests:
            request.exit(self.stage, now)


class Pipeline:
    """Run a request through a fixed sequence of stages, timing each.

    Each stage's processing time lands on the request's ledger under the
    stage's own name.  ``run`` is a DES generator::

        result = yield sim.process(pipeline.run(request))
    """

    def __init__(self, sim: Simulator, stages: Iterable[Stage]):
        self.sim = sim
        self.stages: List[Stage] = list(stages)

    def run(self, request: IORequest):
        result = None
        for stage in self.stages:
            with StageSpan(self.sim, request, stage.name):
                result = yield self.sim.process(stage.process(request))
        return result
