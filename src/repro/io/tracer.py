"""End-to-end request tracing: where did each request's time go?

A :class:`RequestTracer` is the single collection point for completed
:class:`~repro.io.request.IORequest` objects.  It maintains:

* per-stage latency histograms (log-bucketed, bounded memory) across
  all requests — "how long do requests spend waiting for admission?";
* per-tenant end-to-end latency histograms and completion counts — the
  raw material for per-tenant throughput/p99 QoS reporting;
* Figure 12 attribution: mapping the stage ledger onto the paper's
  software / storage / transfer / network taxonomy so traced paths
  reconcile with :class:`~repro.core.cluster.LatencyBreakdown`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim import LatencyHistogram, Simulator
from .request import UNSAMPLED, IOKind, IORequest

__all__ = ["RequestTracer"]

#: Stages whose time is host software cost (Figure 12 "Software").
SOFTWARE_STAGES = ("software",)
#: Stages that are flash array access (Figure 12 "Storage Access").
STORAGE_STAGES = ("storage",)
#: Annotation carrying analytic network propagation (Figure 12 "Network").
NETWORK_COMPONENT = "network"


class RequestTracer:
    """Collects completed requests and attributes their latency.

    ``keep_requests`` bounds how many completed request objects are
    retained for inspection (histograms and counters always cover every
    completion).

    ``sample`` enables deterministic 1-in-N tracing for open-loop-scale
    runs: :meth:`start` returns a request object for every ``sample``-th
    arrival (counted per tracer, so reruns of the same scenario make
    byte-identical sampling decisions) and ``None`` for the rest — the
    whole pipeline then runs span-free for unsampled requests.  Each
    traced completion is folded in with weight ``N``, keeping aggregate
    counts, byte totals, and histogram masses unbiased; percentiles
    come from the sampled subset.  ``sample=1`` (the default) traces
    everything and is byte-identical to the pre-sampling tracer.
    """

    def __init__(self, sim: Simulator, keep_requests: int = 100_000,
                 sample: int = 1):
        if keep_requests < 0:
            raise ValueError(f"negative keep_requests {keep_requests}")
        if sample < 1:
            raise ValueError(f"trace sample must be >= 1, got {sample}")
        self.sim = sim
        self.keep_requests = keep_requests
        self.sample = sample
        self.started = 0
        self.requests: List[IORequest] = []
        self.dropped = 0
        self.stage_histograms: Dict[str, LatencyHistogram] = {}
        self.tenant_latency: Dict[str, LatencyHistogram] = {}
        self.tenant_completed: Dict[str, int] = {}
        self.tenant_bytes: Dict[str, int] = {}
        self.tenant_deadline_misses: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    def start(self, kind: "IOKind | str", addr: Any, size: int,
              tenant: str = "default", priority: Optional[int] = None,
              deadline_ns: Optional[int] = None) -> Optional[IORequest]:
        """Create a request stamped as issued now.

        Returns the falsy :data:`~repro.io.request.UNSAMPLED` marker
        for arrivals outside the 1-in-N sample; every downstream span
        and the final :meth:`complete` then no-op, and lower layers
        *adopt* the marker instead of opening a replacement request
        (which would count the arrival twice).
        """
        started = self.started
        self.started = started + 1
        if started % self.sample:
            return UNSAMPLED
        return IORequest(kind, addr, size, tenant=tenant, priority=priority,
                         deadline_ns=deadline_ns, issued_ns=self.sim.now)

    def complete(self, request: Optional[IORequest]) -> None:
        """Stamp completion and fold the request into the statistics.

        ``None`` and :data:`~repro.io.request.UNSAMPLED` are accepted
        (and ignored) so call sites can complete unconditionally
        whether or not tracing was attached.
        """
        if not request:
            return
        if request.issued_ns is None:
            request.issued_ns = self.sim.now
        request.completed_ns = self.sim.now
        tenant = request.tenant
        weight = self.sample
        for stage, duration in request.stages.items():
            hist = self.stage_histograms.get(stage)
            if hist is None:
                hist = self.stage_histograms[stage] = LatencyHistogram(stage)
            hist.record(duration, weight)
        stats = self.tenant_latency.get(tenant)
        if stats is None:
            stats = self.tenant_latency[tenant] = LatencyHistogram(tenant)
        stats.record(request.total_ns, weight)
        self.tenant_completed[tenant] = (
            self.tenant_completed.get(tenant, 0) + weight)
        self.tenant_bytes[tenant] = (
            self.tenant_bytes.get(tenant, 0) + request.size * weight)
        if request.missed_deadline():
            self.tenant_deadline_misses[tenant] = (
                self.tenant_deadline_misses.get(tenant, 0) + weight)
        if len(self.requests) < self.keep_requests:
            self.requests.append(request)
        else:
            self.dropped += 1

    # -- attribution ----------------------------------------------------
    @staticmethod
    def figure12_components(request: IORequest) -> Dict[str, int]:
        """Map a completed request's ledger onto Figure 12's components.

        ``software`` and ``storage`` come from the corresponding timed
        stages, ``network`` from the cluster's analytic propagation
        annotation, and ``transfer`` is the residual — the same
        decomposition :meth:`BlueDBMCluster._attribute` applies to its
        measured totals, so the two agree on the integrated-network
        paths (ISP-F and H-F), where every software cost is a timed
        span.  On the Ethernet-detour paths (H-RH-F, H-D) the traced
        attribution is *finer* than the analytic one — ``_attribute``
        approximates the remote side with fixed terms (e.g. the
        Ethernet RPC latency counted as software), while the spans
        record what each remote stage actually took — so their software
        and transfer splits legitimately differ there.
        """
        software = sum(request.stage_ns(s) for s in SOFTWARE_STAGES)
        storage = sum(request.stage_ns(s) for s in STORAGE_STAGES)
        network = request.annotations.get(NETWORK_COMPONENT, 0)
        transfer = max(0, request.total_ns - software - storage - network)
        return {"software": software, "storage": storage,
                "transfer": transfer, "network": network}

    # -- reporting ------------------------------------------------------
    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage histogram summaries (count/mean/p50/p99)."""
        return {stage: hist.summary()
                for stage, hist in sorted(self.stage_histograms.items())}

    def tenant_summary(self, elapsed_ns: Optional[int] = None
                       ) -> Dict[str, Dict[str, float]]:
        """Per-tenant completions, throughput, latency percentiles.

        ``elapsed_ns`` is the measurement window for throughput
        (defaults to the current simulated time).
        """
        window = self.sim.now if elapsed_ns is None else elapsed_ns
        out: Dict[str, Dict[str, float]] = {}
        for tenant, stats in sorted(self.tenant_latency.items()):
            completed = self.tenant_completed.get(tenant, 0)
            moved = self.tenant_bytes.get(tenant, 0)
            out[tenant] = {
                "completed": float(completed),
                "iops": completed / (window / 1e9) if window else 0.0,
                "bytes": float(moved),
                "gbytes_per_sec": moved / window if window else 0.0,
                "mean_ns": stats.mean,
                "p50_ns": stats.percentile(50),
                "p99_ns": stats.percentile(99),
                "deadline_misses": float(
                    self.tenant_deadline_misses.get(tenant, 0)),
            }
        return out

    def overall_latency(self) -> LatencyHistogram:
        """End-to-end latency across every tenant, as one histogram.

        The per-path mean/p99 columns of the figure benchmarks come
        from here when a run has a single logical tenant per tracer.
        """
        merged = LatencyHistogram("overall")
        for hist in self.tenant_latency.values():
            merged.merge(hist)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering of everything the tracer aggregated."""
        return {
            "completed": self.completed_count,
            "dropped": self.dropped,
            "stages": self.stage_summary(),
            "tenants": self.tenant_summary(),
        }

    @property
    def completed_count(self) -> int:
        return sum(self.tenant_completed.values())
