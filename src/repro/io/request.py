"""The request: one page-granular I/O operation and its stage timeline.

An :class:`IORequest` is created where an operation enters the system
(host syscall, ISP stream issue, remote protocol request) and travels —
as a plain Python object — down through the splitter, the card, and back
up, including across the simulated network to a remote node's flash
service.  Each layer charges the time it spends on the request to a
named *stage* via :meth:`enter`/:meth:`exit` (usually through
:class:`~repro.io.stage.StageSpan`), so afterwards the full end-to-end
latency decomposes into where it actually went.

Stage names are free-form, but the layers use a shared vocabulary so the
tracer can map them onto the paper's Figure 12 components:

==============  ========================================================
stage           charged by
==============  ========================================================
``software``    host CPU syscall/driver time + RPC portal writes
``queue``       waiting for a splitter slot / QoS admission grant
``tag``         waiting for a physical tag on the card
``storage``     flash command overhead + chip array read/program
``device``      card-internal bus + aurora transfer of the payload
``pcie``        PCIe DMA between device and host DRAM
``interrupt``   completion interrupt + process wakeup
==============  ========================================================

Network propagation is deterministic per route, so the cluster records
it as an *annotation* (:meth:`annotate`) rather than a timed span.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["IOKind", "IORequest", "UNSAMPLED"]

_req_ids = itertools.count()


class _Unsampled:
    """Falsy request stand-in for arrivals outside the 1-in-N sample.

    :meth:`~repro.io.tracer.RequestTracer.start` returns
    :data:`UNSAMPLED` — never ``None`` — for arrivals it skips, and
    downstream layers *adopt* it exactly like a real request.  That
    distinction matters: ``request=None`` means "nobody upstream is
    tracing this operation", so a layer with a tracer opens its own
    request; ``UNSAMPLED`` means "an upstream tracer already counted
    this arrival and chose not to trace it", so no layer may open a
    replacement (which would double-count arrivals and skew the
    weight-scaled statistics).  It is falsy, every
    :class:`~repro.io.stage.StageSpan` over it is a shared no-op, and
    ``complete()`` ignores it.  The class attributes satisfy the QoS
    fallbacks: scheduling reads ``tenant``/``priority``/``deadline_ns``
    off adopted requests and falls back to the port's configured
    identity for all three.
    """

    __slots__ = ()
    tenant = ""
    priority: Optional[int] = None
    deadline_ns: Optional[int] = None

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "UNSAMPLED"


#: The singleton unsampled-arrival marker (see :class:`_Unsampled`).
UNSAMPLED = _Unsampled()


class IOKind(Enum):
    """What the request does to the addressed page/block."""

    READ = "read"
    WRITE = "write"
    ERASE = "erase"


class IORequest:
    """One I/O operation with QoS metadata and a per-stage time ledger.

    Parameters
    ----------
    kind:
        :class:`IOKind` (or its string value).
    addr:
        Target address — usually a :class:`~repro.flash.geometry.PhysAddr`,
        but remote-DRAM requests use a plain page number.
    size:
        Payload bytes moved by the request.
    tenant:
        Which principal issued it (``"host"``, ``"isp"``, ``"net"``,
        an application id, ...).  Fair-share policies schedule per tenant.
    priority:
        Larger is more urgent (strict-priority policy).  ``None`` means
        unspecified: scheduling points fall back to the configured
        priority of the port the request arrives through.
    deadline_ns:
        Absolute simulated-time deadline (earliest-deadline policy).
        ``None`` means unspecified; ports with a relative deadline
        configured apply it at admission.
    """

    __slots__ = ("req_id", "kind", "addr", "size", "tenant", "priority",
                 "deadline_ns", "issued_ns", "completed_ns", "stages",
                 "annotations", "_open")

    def __init__(self, kind: "IOKind | str", addr: Any, size: int,
                 tenant: str = "default", priority: Optional[int] = None,
                 deadline_ns: Optional[int] = None,
                 issued_ns: Optional[int] = None):
        self.req_id = next(_req_ids)
        self.kind = IOKind(kind)
        self.addr = addr
        self.size = size
        self.tenant = tenant
        self.priority = priority
        self.deadline_ns = deadline_ns
        self.issued_ns = issued_ns
        self.completed_ns: Optional[int] = None
        #: Accumulated nanoseconds charged to each stage.
        self.stages: Dict[str, int] = {}
        #: Analytically-known components (e.g. network propagation).
        self.annotations: Dict[str, int] = {}
        self._open: Dict[str, int] = {}

    # -- stage ledger ---------------------------------------------------
    def enter(self, stage: str, now: int) -> None:
        """Open a timing span for ``stage`` at simulated time ``now``."""
        if stage in self._open:
            raise ValueError(f"stage {stage!r} already open on {self!r}")
        self._open[stage] = now

    def exit(self, stage: str, now: int) -> None:
        """Close the span; the elapsed time accumulates onto the stage."""
        start = self._open.pop(stage, None)
        if start is None:
            raise ValueError(f"stage {stage!r} was never entered on {self!r}")
        if now < start:
            raise ValueError(f"stage {stage!r} exits before it enters")
        self.stages[stage] = self.stages.get(stage, 0) + (now - start)

    def annotate(self, component: str, duration_ns: int) -> None:
        """Record an analytically-derived latency component."""
        if duration_ns < 0:
            raise ValueError(f"negative annotation {duration_ns}")
        self.annotations[component] = (
            self.annotations.get(component, 0) + duration_ns)

    def stage_ns(self, stage: str) -> int:
        """Nanoseconds charged to ``stage`` (0 if never visited)."""
        return self.stages.get(stage, 0)

    # -- lifecycle ------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.completed_ns is not None

    @property
    def total_ns(self) -> int:
        """End-to-end latency; only meaningful once completed."""
        if self.issued_ns is None or self.completed_ns is None:
            return 0
        return self.completed_ns - self.issued_ns

    @property
    def accounted_ns(self) -> int:
        """Time explained by stage spans + annotations."""
        return sum(self.stages.values()) + sum(self.annotations.values())

    @property
    def unattributed_ns(self) -> int:
        """End-to-end time no stage claimed (transfer residual et al.)."""
        return max(0, self.total_ns - self.accounted_ns)

    def missed_deadline(self) -> bool:
        """True if the request completed after its deadline."""
        return (self.deadline_ns is not None and self.completed_ns is not None
                and self.completed_ns > self.deadline_ns)

    def __repr__(self) -> str:
        state = ("completed" if self.completed
                 else "issued" if self.issued_ns is not None else "new")
        return (f"<IORequest #{self.req_id} {self.kind.value} "
                f"tenant={self.tenant!r} {state}>")
