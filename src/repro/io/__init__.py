"""Unified I/O request pipeline: one request abstraction for every path.

Every access path in the appliance — host software over PCIe, local
in-store processors, remote in-store processors over the integrated
network, Ethernet-reached remote hosts — moves pages through the same
kinds of stages: queueing, software, flash array access, bus/link
transfer, network propagation.  Before this package existed each layer
kept private bookkeeping; now they all speak :class:`IORequest`:

* :class:`~repro.io.request.IORequest` — one page-granular operation
  with kind, address, size, tenant, priority, deadline and per-stage
  timestamps accumulated as it traverses the layers.
* :class:`~repro.io.stage.Stage` / :class:`~repro.io.stage.StageSpan` —
  the protocol a pipeline element implements, and the timing span
  layers use to charge wall-clock to a named stage.
* :class:`~repro.io.batch.RequestBatch` /
  :class:`~repro.io.batch.BatchItem` — a parent span over
  asynchronously-submitted child operations with per-child completion
  events delivered out of order (the queue-depth host interface).
* :class:`~repro.io.tracer.RequestTracer` — collects completed
  requests; attributes end-to-end latency to stages (reconciling with
  Figure 12's software/storage/transfer/network taxonomy) and keeps
  per-tenant and per-stage percentile histograms.
* :class:`~repro.io.scheduler.SchedulerPolicy` — pluggable queueing
  disciplines (FIFO, round-robin fair share, weighted fair share,
  token-bucket rate limiting, strict priority, earliest deadline) and
  :class:`~repro.io.scheduler.ScheduledResource`, a counted resource
  whose grant order is decided by a policy.
"""

from .batch import BatchItem, RequestBatch
from .request import UNSAMPLED, IOKind, IORequest
from .scheduler import (
    POLICIES,
    EarliestDeadlinePolicy,
    FIFOPolicy,
    QueueEntry,
    RoundRobinPolicy,
    ScheduledResource,
    SchedulerPolicy,
    StrictPriorityPolicy,
    TokenBucketPolicy,
    WeightedFairPolicy,
    bind_policy,
    make_policy,
)
from .stage import BatchStageSpan, Pipeline, Stage, StageSpan
from .tracer import RequestTracer

__all__ = [
    "IOKind",
    "IORequest",
    "UNSAMPLED",
    "BatchItem",
    "RequestBatch",
    "Stage",
    "StageSpan",
    "BatchStageSpan",
    "Pipeline",
    "RequestTracer",
    "SchedulerPolicy",
    "QueueEntry",
    "FIFOPolicy",
    "RoundRobinPolicy",
    "WeightedFairPolicy",
    "TokenBucketPolicy",
    "StrictPriorityPolicy",
    "EarliestDeadlinePolicy",
    "ScheduledResource",
    "POLICIES",
    "make_policy",
    "bind_policy",
]
