"""Batched submission: a parent span over child :class:`IORequest`\\ s.

The paper's flash card only reaches its advertised bandwidth when many
commands are in flight — per-command overhead (syscall, RPC, command
setup) is amortized across a deep queue.  A :class:`RequestBatch` is the
software-visible half of that contract: one *parent span* (issue time,
completion time, tenant) over a set of child operations, each a
:class:`BatchItem` carrying its own :class:`~repro.io.request.IORequest`
and its own completion :class:`~repro.sim.Event`.

The batch is deliberately *not* ordered on the completion side: the
tagged hardware interface underneath completes commands out of order,
and the batch records the order children actually finished in
:attr:`RequestBatch.completion_order` while :attr:`RequestBatch.done`
fires only when every child has settled.  Waiters can therefore consume
completions as they happen (``yield item.event``), or the whole batch at
once (``yield batch.done``).

Issuers — :meth:`repro.host.iface.HostInterface.submit` today — own the
pacing: how many children run concurrently is the *queue depth* of the
submitting interface, not a property of the batch.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..sim import Event, Simulator
from .request import IOKind, IORequest

__all__ = ["BatchItem", "RequestBatch"]


class BatchItem:
    """One child operation of a :class:`RequestBatch`.

    ``result`` carries the operation's return value (page data for
    reads, ``None`` for writes/erases) once :attr:`event` has fired;
    ``error`` carries the exception if the operation failed instead —
    in that case :attr:`event` fails, so a waiter sees the same raise a
    blocking call would have produced.
    """

    __slots__ = ("index", "kind", "addr", "data", "request", "event",
                 "result", "error", "completed_ns")

    def __init__(self, index: int, kind: IOKind, addr: Any,
                 data: Optional[bytes], event: Event):
        self.index = index
        self.kind = kind
        self.addr = addr
        self.data = data
        self.request: Optional[IORequest] = None
        self.event = event
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.completed_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.completed_ns is not None

    def __repr__(self) -> str:
        state = ("failed" if self.error is not None
                 else "completed" if self.completed else "pending")
        return (f"<BatchItem #{self.index} {self.kind.value} "
                f"{self.addr} {state}>")


class RequestBatch:
    """A parent span over asynchronously-submitted child operations.

    Build one with repeated :meth:`add` calls, then :meth:`seal` it —
    after sealing, no more children may join and :attr:`done` fires as
    soon as the last child settles (immediately, for an empty batch).
    The issuing interface drives the children and reports each one back
    through :meth:`item_done`.
    """

    def __init__(self, sim: Simulator, tenant: str = "default"):
        self.sim = sim
        self.tenant = tenant
        self.items: List[BatchItem] = []
        #: Fires (with the batch as value) when every child has settled.
        self.done = Event(sim)
        #: Children in the order they actually completed.
        self.completion_order: List[BatchItem] = []
        self.issued_ns = sim.now
        self.completed_ns: Optional[int] = None
        self._sealed = False

    # -- building -------------------------------------------------------
    def add(self, kind: "IOKind | str", addr: Any,
            data: Optional[bytes] = None,
            request: Optional[IORequest] = None) -> BatchItem:
        """Append one child operation; returns its :class:`BatchItem`."""
        if self._sealed:
            raise ValueError("cannot add to a sealed batch")
        item = BatchItem(len(self.items), IOKind(kind), addr, data,
                         Event(self.sim))
        item.request = request
        self.items.append(item)
        return item

    def seal(self) -> "RequestBatch":
        """Freeze membership; an empty sealed batch completes at once."""
        if not self._sealed:
            self._sealed = True
            if not self.items:
                self.completed_ns = self.sim.now
                self.done.succeed(self)
        return self

    # -- completion -----------------------------------------------------
    def item_done(self, item: BatchItem, result: Any = None,
                  error: Optional[BaseException] = None) -> None:
        """Settle one child: fire its event, record completion order."""
        if item.completed:
            raise ValueError(f"{item!r} already settled")
        item.completed_ns = self.sim.now
        item.result = result
        item.error = error
        self.completion_order.append(item)
        if error is not None:
            item.event.fail(error)
        else:
            item.event.succeed(result)
        if self._sealed and self.remaining == 0:
            self.completed_ns = self.sim.now
            self.done.succeed(self)

    # -- views ----------------------------------------------------------
    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def remaining(self) -> int:
        """Children that have not settled yet."""
        return sum(1 for item in self.items if not item.completed)

    @property
    def completed(self) -> bool:
        return self.completed_ns is not None

    @property
    def errors(self) -> List[BatchItem]:
        """Children that settled with an exception."""
        return [item for item in self.items if item.error is not None]

    @property
    def total_ns(self) -> int:
        """Parent-span duration; only meaningful once completed."""
        if self.completed_ns is None:
            return 0
        return self.completed_ns - self.issued_ns

    def results(self) -> List[Any]:
        """Child results in *submission* order (None for failures)."""
        return [item.result for item in self.items]

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return (f"<RequestBatch tenant={self.tenant!r} "
                f"{len(self.items) - self.remaining}/{len(self.items)} "
                f"done>")
