"""Deterministic process-parallel execution of experiment points.

Every sweep experiment in this repo is embarrassingly parallel: each
point builds its own fresh :class:`~repro.api.Session` (or cluster)
from a spec, runs it, and shares no state with any other point.  This
module fans those points across spawned worker processes while keeping
the one property the perf-snapshot artifacts and the determinism suite
depend on: **the merged output is byte-identical to the serial run**.

The contract a point function must honor (the "purity contract"):

* it is a *top-level* function (picklable by reference) taking one
  picklable argument — typically a tuple of primitives the function
  turns into a :class:`~repro.api.spec.ScenarioSpec`;
* every random decision derives from the argument (spec seeds), never
  from process identity, wall clock, or execution order;
* it returns plain picklable data (dicts / dataclasses of dicts) and
  touches no global state the caller will read afterwards.

Under that contract :func:`parallel_map` is observationally equal to
``list(map(fn, points))`` for any worker count: results are merged in
*input* order regardless of completion order, worker identity never
reaches the payload, and ``jobs=1`` *is* the serial path — no pool, no
subprocess machinery, just a list comprehension.

Failures keep their context: a point that raises in a worker surfaces
as a :class:`PointError` naming the failing point (index + argument)
and carrying the worker's full original traceback text — not the
useless ``concurrent.futures`` re-raise at the ``result()`` call site.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, List, Optional, Sequence

__all__ = ["PointError", "WorkerPool", "parallel_map", "active_pool",
           "current_pool"]


class PointError(RuntimeError):
    """One sweep point failed in a worker process.

    Carries the failing point's position (``index``), its argument
    (``point``) and the worker's original formatted traceback
    (``worker_traceback``) so a crash three processes away reads like
    a local one.
    """

    def __init__(self, index: int, point: Any, worker_traceback: str):
        self.index = index
        self.point = point
        self.worker_traceback = worker_traceback
        super().__init__(
            f"sweep point #{index} ({point!r}) failed in a worker "
            f"process; original traceback:\n{worker_traceback}")


def _warm_worker(fault_seed: Optional[int] = None) -> None:
    """Worker initializer: import the experiments package once.

    Spawned workers start from a cold interpreter; importing
    :mod:`repro.experiments` here loads the whole simulator and the
    registry a single time per worker instead of once per point.
    ``fault_seed`` replays the parent's ``--fault-seed`` override —
    process-global state the purity contract would otherwise lose.
    """
    import repro.experiments  # noqa: F401

    if fault_seed is not None:
        from repro.faults import set_fault_seed_override
        set_fault_seed_override(fault_seed)


def _run_point(fn: Callable[[Any], Any], point: Any) -> tuple:
    """Execute one point in a worker, shielding the result channel.

    Exceptions are flattened to their formatted traceback *here*, in
    the worker, so propagation never depends on the exception type
    itself being picklable.
    """
    try:
        return ("ok", fn(point))
    except Exception:
        return ("error", traceback.format_exc())


class WorkerPool:
    """A reusable pool of spawned, repro-warm worker processes.

    Thread-safe: concurrent :meth:`map` calls (e.g. several bench
    experiments overlapping) interleave their points over the same
    workers.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError(f"WorkerPool needs jobs >= 2, got {jobs}; "
                             f"jobs=1 is the serial path and never "
                             f"builds a pool")
        from ..faults import fault_seed_override

        self.jobs = jobs
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_warm_worker,
            initargs=(fault_seed_override(),))

    def map(self, fn: Callable[[Any], Any],
            points: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``points``; results in input order."""
        points = list(points)
        futures = [self._executor.submit(_run_point, fn, point)
                   for point in points]
        results = []
        # Gathering in submission order is what makes the merge
        # deterministic: completion order never leaks into the output.
        for index, (future, point) in enumerate(zip(futures, points)):
            tag, payload = future.result()
            if tag == "error":
                raise PointError(index, point, payload)
            results.append(payload)
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: The ambient pool an orchestrator (``repro bench --jobs N``) installs
#: so nested ``parallel_map`` calls share one set of workers instead of
#: spawning pools per experiment.
_ACTIVE: Optional[WorkerPool] = None


@contextmanager
def active_pool(pool: WorkerPool):
    """Route every ``parallel_map`` in this context through ``pool``."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = pool
    try:
        yield pool
    finally:
        _ACTIVE = previous


def current_pool() -> Optional[WorkerPool]:
    """The ambient :class:`WorkerPool`, if an orchestrator set one."""
    return _ACTIVE


def parallel_map(fn: Callable[[Any], Any], points: Iterable[Any],
                 jobs: int = 1,
                 pool: Optional[WorkerPool] = None) -> List[Any]:
    """``list(map(fn, points))``, optionally across worker processes.

    Execution substrate, in priority order:

    1. an explicit ``pool`` argument;
    2. the ambient pool installed by :func:`active_pool` (how
       ``repro bench --jobs N`` shares one pool across overlapping
       experiments);
    3. an ephemeral spawn pool of ``min(jobs, len(points))`` workers
       when ``jobs > 1`` and there is more than one point;
    4. otherwise the exact serial path — a plain loop in this process,
       with zero subprocess machinery.

    For pure point functions (see the module docstring) the result is
    byte-identical across all four substrates.
    """
    points = list(points)
    target = pool if pool is not None else _ACTIVE
    if target is not None:
        return target.map(fn, points)
    if jobs <= 1 or len(points) <= 1:
        return [fn(point) for point in points]
    with WorkerPool(min(jobs, len(points))) as target:
        return target.map(fn, points)
