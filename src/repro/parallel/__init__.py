"""Process-parallel experiment execution with serial-identical results.

``parallel_map(fn, points, jobs=N)`` fans pure per-point experiment
functions across spawned worker processes; ``jobs=1`` is the exact
serial path.  See :mod:`repro.parallel.runner` for the purity contract
point functions must honor and the determinism guarantee the sweep
experiments pin in ``tests/test_qos_determinism.py``.
"""

from .runner import (
    PointError,
    WorkerPool,
    active_pool,
    current_pool,
    parallel_map,
)

__all__ = ["PointError", "WorkerPool", "parallel_map", "active_pool",
           "current_pool"]
