"""Device-driven facade over the shared log-structured FTL core.

Both host-side management designs the paper discusses sit on the same
machinery:

* the **block device driver FTL** ("a full-fledged FTL implemented in the
  device driver, similar to Fusion IO's driver", Section 4), and
* the **RFS-style file system** that "performs some functionality of an
  FTL, including logical-to-physical address mapping and garbage
  collection".

The machinery itself lives in :class:`~repro.ftl.core.FtlCore` — the
map, allocator, greedy GC with mid-relocation re-checks, completion-time
accounting and the per-block program-order gate are shared with
:class:`~repro.volume.LogicalVolume`.  This facade is the *device-driven*
policy shell: it performs its own :class:`~repro.flash.device.
StorageDevice` I/O (foreground and GC relocation alike), which is what
the FTL and RFS facades translating block/file operations need.
"""

from __future__ import annotations

from typing import Optional

from ..flash import PhysAddr
from ..flash.device import StorageDevice
from ..sim import Simulator
from .core import FtlCore, OutOfSpaceError

__all__ = ["LogStructuredCore", "OutOfSpaceError"]


class LogStructuredCore:
    """Append-only page writes + greedy GC over a :class:`StorageDevice`.

    A thin shell over :class:`FtlCore`: this class owns the device I/O
    (and is the core's GC relocation backend); the core owns every
    mapping, allocation, ordering and accounting decision.
    """

    def __init__(self, sim: Simulator, device: StorageDevice,
                 gc_low_watermark: int = 2, name: str = "ftl"):
        self.sim = sim
        self.device = device
        self.geometry = device.geometry
        self.core = FtlCore(sim, device, io=self,
                            gc_low_watermark=gc_low_watermark, name=name)

    # -- shared-core state, re-exported ---------------------------------
    @property
    def map(self):
        return self.core.map

    @property
    def allocator(self):
        return self.core.allocator

    @property
    def gc_low_watermark(self) -> int:
        return self.core.gc_low_watermark

    # -- telemetry -----------------------------------------------------------
    @property
    def user_writes(self) -> int:
        return self.core.user_writes_total

    @property
    def total_writes(self) -> int:
        """Every flash program charged: user + GC-moved + stale."""
        return self.core.total_programs

    @property
    def gc_runs(self) -> int:
        return self.core.gc_runs

    @property
    def gc_moved_pages(self) -> int:
        return self.core.gc_moved_pages

    @property
    def gc_stale_moves(self) -> int:
        """Relocations abandoned because a foreground write or TRIM
        completed mid-copy (the copy stayed programmed-and-invalid)."""
        return self.core.gc_stale_moves

    @property
    def write_amplification(self) -> float:
        """Total flash programs per user write (1.0 = no GC traffic)."""
        if self.core.user_writes_total == 0:
            return 1.0
        return self.core.total_programs / self.core.user_writes_total

    # -- page I/O (DES generators) -------------------------------------------
    def read_lpn(self, lpn: int):
        """Read a logical page; returns bytes (erased pattern if unmapped).

        The resolved block is pinned against GC's erase for the read's
        lifetime (the mapping may still move meanwhile — ordinary
        out-of-place-FTL semantics).
        """
        addr = self.core.map.lookup(lpn)
        if addr is None:
            yield self.sim.timeout(0)
            return b"\xff" * self.geometry.page_size
        self.core.begin_read(addr)
        try:
            result = yield self.sim.process(self.device.read_page(addr))
        finally:
            self.core.end_read(addr)
        return result.data

    def physical_of(self, lpn: int) -> Optional[PhysAddr]:
        """Current physical location of a logical page (for ISP streams)."""
        return self.core.map.lookup(lpn)

    def write_lpn(self, lpn: int, data: bytes):
        """Write (or overwrite) a logical page out-of-place.

        The remap and the ``user_writes``/``total_writes`` charge happen
        at program *completion*: a write whose program fails charges
        nothing, and its page is retired programmed-and-invalid so the
        block still fills toward GC eligibility (no free-space leak).
        """
        addr = yield from self.core.allocate()
        yield from self.core.await_program_turn(addr)
        try:
            yield self.sim.process(self.device.write_page(addr, data))
        except BaseException:
            self.core.retire_page(addr)
            raise
        self.core.commit_write(lpn, addr, self.core.name)

    def trim_lpn(self, lpn: int):
        """Invalidate a logical page (TRIM); frees space lazily via GC."""
        yield self.sim.timeout(0)
        self.core.trim(lpn)

    # -- garbage collection ----------------------------------------------------
    def force_gc(self):
        """Run one GC pass explicitly (DES generator) -> bool reclaimed."""
        reclaimed = yield from self.core.collect_once()
        return reclaimed

    # -- GC relocation backend (FtlCore ``io``) --------------------------------
    def gc_read(self, addr: PhysAddr):
        result = yield self.sim.process(self.device.read_page(addr))
        return result

    def gc_write(self, addr: PhysAddr, data: bytes):
        yield self.sim.process(self.device.write_page(addr, data))

    def gc_erase(self, addr: PhysAddr):
        yield self.sim.process(self.device.erase_block(addr))
