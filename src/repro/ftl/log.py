"""Shared log-structured flash management core.

Both host-side management designs the paper discusses sit on the same
machinery:

* the **block device driver FTL** ("a full-fledged FTL implemented in the
  device driver, similar to Fusion IO's driver", Section 4), and
* the **RFS-style file system** that "performs some functionality of an
  FTL, including logical-to-physical address mapping and garbage
  collection".

This core owns the allocator, the page map, greedy garbage collection and
the write-amplification accounting; the FTL and RFS facades translate
block/file operations onto it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..flash import PhysAddr, UncorrectablePageError
from ..flash.device import StorageDevice
from ..sim import Counter, Simulator
from .allocator import BlockAllocator
from .mapping import PageMap

__all__ = ["LogStructuredCore", "OutOfSpaceError"]

_BlockKey = Tuple[int, int, int, int, int]


class OutOfSpaceError(Exception):
    """No free pages remain even after garbage collection."""


class LogStructuredCore:
    """Append-only page writes + greedy GC over a :class:`StorageDevice`."""

    def __init__(self, sim: Simulator, device: StorageDevice,
                 gc_low_watermark: int = 2):
        if gc_low_watermark < 1:
            raise ValueError("gc_low_watermark must be >= 1")
        self.sim = sim
        self.device = device
        self.geometry = device.geometry
        self.map = PageMap(device.geometry)
        self.allocator = BlockAllocator(device.geometry, device.badblocks,
                                        device.wear, node=device.node)
        self.gc_low_watermark = gc_low_watermark
        self._full_blocks: Set[_BlockKey] = set()
        self.user_writes = Counter("user-writes")
        self.total_writes = Counter("total-writes")
        self.gc_runs = Counter("gc-runs")
        self.gc_moved_pages = Counter("gc-moved")

    # -- capacity ------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """Total flash programs per user write (1.0 = no GC traffic)."""
        if self.user_writes.value == 0:
            return 1.0
        return self.total_writes.value / self.user_writes.value

    # -- page I/O (DES generators) -------------------------------------------
    def read_lpn(self, lpn: int):
        """Read a logical page; returns bytes (erased pattern if unmapped)."""
        addr = self.map.lookup(lpn)
        if addr is None:
            yield self.sim.timeout(0)
            return b"\xff" * self.geometry.page_size
        result = yield self.sim.process(self.device.read_page(addr))
        return result.data

    def physical_of(self, lpn: int) -> Optional[PhysAddr]:
        """Current physical location of a logical page (for ISP streams)."""
        return self.map.lookup(lpn)

    def write_lpn(self, lpn: int, data: bytes):
        """Write (or overwrite) a logical page out-of-place."""
        yield from self._ensure_space()
        addr = self.allocator.next_page()
        if addr is None:
            raise OutOfSpaceError("no free pages after GC")
        yield self.sim.process(self.device.write_page(addr, data))
        self.map.map_page(lpn, addr)
        self.map.note_programmed(addr)
        if addr.page == self.geometry.pages_per_block - 1:
            self._full_blocks.add(self._key(addr))
        self.user_writes.add()
        self.total_writes.add()

    def trim_lpn(self, lpn: int):
        """Invalidate a logical page (TRIM); frees space lazily via GC."""
        yield self.sim.timeout(0)
        self.map.unmap(lpn)

    # -- garbage collection ----------------------------------------------------
    def _ensure_space(self):
        while (self.allocator.free_blocks < self.gc_low_watermark
               and self._full_blocks):
            freed = yield from self._collect_once()
            if not freed:
                break

    def _collect_once(self):
        """Greedy GC: relocate the fullest-of-invalid block, erase it.

        Returns True if a block was reclaimed.
        """
        victim_key = min(
            self._full_blocks,
            key=lambda key: self.map.block_state(
                self._addr_of(key)).valid_count,
            default=None)
        if victim_key is None:
            return False
        victim = self._addr_of(victim_key)
        state = self.map.block_state(victim)
        if state.valid_count >= self.geometry.pages_per_block:
            # Every page still valid: nothing to reclaim anywhere.
            return False
        self._full_blocks.discard(victim_key)
        self.gc_runs.add()
        for page_addr in list(self.map.valid_pages_of(victim)):
            lpn = self.map.reverse(page_addr)
            if lpn is None:
                continue
            result = yield self.sim.process(
                self.device.read_page(page_addr))
            dest = self.allocator.next_page()
            if dest is None:
                raise OutOfSpaceError("GC found no destination page")
            yield self.sim.process(
                self.device.write_page(dest, result.data))
            self.map.map_page(lpn, dest)
            self.map.note_programmed(dest)
            if dest.page == self.geometry.pages_per_block - 1:
                self._full_blocks.add(self._key(dest))
            self.total_writes.add()
            self.gc_moved_pages.add()
        yield self.sim.process(self.device.erase_block(victim))
        self.map.drop_block(victim)
        self.allocator.release_block(victim)
        return True

    def force_gc(self):
        """Run one GC pass explicitly (DES generator) -> bool reclaimed."""
        reclaimed = yield from self._collect_once()
        return reclaimed

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _key(addr: PhysAddr) -> _BlockKey:
        return (addr.node, addr.card, addr.bus, addr.chip, addr.block)

    @staticmethod
    def _addr_of(key: _BlockKey) -> PhysAddr:
        node, card, bus, chip, block = key
        return PhysAddr(node=node, card=card, bus=bus, chip=chip,
                        block=block, page=0)
