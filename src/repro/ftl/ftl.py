"""Block-device-driver FTL: the backwards-compatible path (Section 4).

"For compatibility with existing software, BlueDBM also offers a
full-fledged FTL implemented in the device driver ... This allows us to
use well-known Linux file systems (e.g., ext2/3/4) as well as database
systems (directly running on top of a block device)."

The device presents ``logical_pages`` uniform pages; overwrites are
remapped out-of-place and cleaned by the shared log-structured core.
Logical capacity is the physical capacity minus over-provisioning — the
spare area GC needs to stay efficient.
"""

from __future__ import annotations

from typing import Optional

from ..flash.device import StorageDevice
from ..sim import Simulator
from .log import LogStructuredCore

__all__ = ["BlockDeviceFTL"]


class BlockDeviceFTL:
    """A flat logical block device over raw flash."""

    def __init__(self, sim: Simulator, device: StorageDevice,
                 overprovision: float = 0.25, gc_low_watermark: int = 2):
        if not 0.0 <= overprovision < 1.0:
            raise ValueError(
                f"overprovision must be in [0, 1), got {overprovision}")
        self.sim = sim
        self.core = LogStructuredCore(sim, device,
                                      gc_low_watermark=gc_low_watermark,
                                      name="ftl")
        physical_pages = device.geometry.pages_per_node
        self.logical_pages = int(physical_pages * (1.0 - overprovision))
        self.page_size = device.geometry.page_size

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"LPN {lpn} out of range (device has "
                f"{self.logical_pages} logical pages)")

    # -- block device operations (DES generators) ---------------------------
    def read(self, lpn: int):
        """Read one logical page -> bytes."""
        self._check_lpn(lpn)
        data = yield from self.core.read_lpn(lpn)
        return data

    def write(self, lpn: int, data: bytes):
        """Write one logical page (out-of-place, GC as needed)."""
        self._check_lpn(lpn)
        yield from self.core.write_lpn(lpn, data)

    def trim(self, lpn: int):
        """Discard a logical page's contents."""
        self._check_lpn(lpn)
        yield from self.core.trim_lpn(lpn)

    # -- telemetry -------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        return self.core.write_amplification

    @property
    def gc_runs(self) -> int:
        return self.core.gc_runs

    @property
    def gc_stale_moves(self) -> int:
        """GC copies abandoned because a concurrent write/TRIM won."""
        return self.core.gc_stale_moves
