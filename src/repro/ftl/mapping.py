"""Logical-to-physical page mapping state.

BlueDBM moves flash management out of the device "into file system/block
device driver" (Section 3.1): the mapping, validity and allocation state
below is host-side software state, exactly like the paper's full-fledged
FTL "implemented in the device driver, similar to Fusion IO's driver".
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from ..flash import FlashGeometry, PhysAddr

__all__ = ["PageMap", "BlockState"]

_BlockKey = Tuple[int, int, int, int, int]


def _block_key(addr: PhysAddr) -> _BlockKey:
    return (addr.node, addr.card, addr.bus, addr.chip, addr.block)


class BlockState:
    """Validity bookkeeping for one physical block."""

    __slots__ = ("addr", "valid_pages", "write_pointer")

    def __init__(self, addr: PhysAddr):
        self.addr = addr.block_addr()
        self.valid_pages: Set[int] = set()
        self.write_pointer = 0  # next page to program (NAND order rule)

    @property
    def valid_count(self) -> int:
        return len(self.valid_pages)

    def is_full(self, pages_per_block: int) -> bool:
        return self.write_pointer >= pages_per_block


class PageMap:
    """Bidirectional LPN <-> physical page map with validity tracking."""

    def __init__(self, geometry: FlashGeometry):
        self.geometry = geometry
        self._l2p: Dict[int, PhysAddr] = {}
        self._p2l: Dict[PhysAddr, int] = {}
        self._blocks: Dict[_BlockKey, BlockState] = {}

    def lookup(self, lpn: int) -> Optional[PhysAddr]:
        """Physical location of a logical page, or None if unmapped."""
        return self._l2p.get(lpn)

    def reverse(self, addr: PhysAddr) -> Optional[int]:
        """LPN stored at a physical page, or None if invalid/free."""
        return self._p2l.get(addr)

    def map_page(self, lpn: int, addr: PhysAddr) -> Optional[PhysAddr]:
        """Point ``lpn`` at ``addr``; returns the invalidated old address."""
        if lpn < 0:
            raise ValueError(f"negative LPN {lpn}")
        old = self._l2p.get(lpn)
        if old is not None:
            self._invalidate(old)
        self._l2p[lpn] = addr
        self._p2l[addr] = lpn
        state = self._block_state(addr)
        state.valid_pages.add(addr.page)
        return old

    def unmap(self, lpn: int) -> Optional[PhysAddr]:
        """TRIM: drop the mapping; returns the invalidated address."""
        old = self._l2p.pop(lpn, None)
        if old is not None:
            self._invalidate(old)
        return old

    def _invalidate(self, addr: PhysAddr) -> None:
        self._p2l.pop(addr, None)
        state = self._blocks.get(_block_key(addr))
        if state is not None:
            state.valid_pages.discard(addr.page)

    def _block_state(self, addr: PhysAddr) -> BlockState:
        key = _block_key(addr)
        state = self._blocks.get(key)
        if state is None:
            state = BlockState(addr)
            self._blocks[key] = state
        return state

    def block_state(self, addr: PhysAddr) -> BlockState:
        """Public accessor (creates state lazily)."""
        return self._block_state(addr)

    def note_programmed(self, addr: PhysAddr) -> None:
        """Advance the block's write pointer past ``addr.page``."""
        state = self._block_state(addr)
        state.write_pointer = max(state.write_pointer, addr.page + 1)

    def drop_block(self, addr: PhysAddr) -> None:
        """Forget a block's state after erase (all pages must be invalid)."""
        key = _block_key(addr)
        state = self._blocks.get(key)
        if state is not None and state.valid_pages:
            raise ValueError(
                f"erasing block {addr.block_addr()} with "
                f"{state.valid_count} valid pages")
        self._blocks.pop(key, None)

    def valid_pages_of(self, addr: PhysAddr) -> Iterator[PhysAddr]:
        """Addresses of the still-valid pages in ``addr``'s block."""
        state = self._blocks.get(_block_key(addr))
        if state is None:
            return
        base = addr.block_addr()
        for page in sorted(state.valid_pages):
            yield PhysAddr(node=base.node, card=base.card, bus=base.bus,
                           chip=base.chip, block=base.block, page=page)

    @property
    def mapped_count(self) -> int:
        return len(self._l2p)
