"""Physical block allocation with chip-striping and wear awareness.

The allocator hands out *write points* — (block, next page) cursors — in
round-robin order across every chip of the device, so that sequential
logical writes land on different buses/chips and program in parallel
(the "exposing all degrees of parallelism" goal of Section 3.1.1).

Free blocks per chip are kept wear-sorted: taking the least-erased block
first is the static wear-leveling policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..flash import BadBlockTable, FlashGeometry, PhysAddr, WearTracker

__all__ = ["BlockAllocator"]

_ChipKey = Tuple[int, int, int, int]


class BlockAllocator:
    """Free-block lists and rotating write points for one flash device."""

    def __init__(self, geometry: FlashGeometry, badblocks: BadBlockTable,
                 wear: WearTracker, node: int = 0,
                 cards: Optional[List[int]] = None):
        self.geometry = geometry
        self.badblocks = badblocks
        self.wear = wear
        self.node = node
        self.cards = cards if cards is not None else list(
            range(geometry.cards_per_node))
        self._free: Dict[_ChipKey, List[int]] = {}
        self._chips: List[_ChipKey] = []
        # Bus-fastest rotation: consecutive allocations land on different
        # buses, so short sequential runs still engage every channel.
        for chip in range(geometry.chips_per_bus):
            for card in self.cards:
                for bus in range(geometry.buses_per_card):
                    key = (node, card, bus, chip)
                    self._chips.append(key)
                    blocks = [
                        b for b in range(geometry.blocks_per_chip)
                        if not badblocks.is_bad(PhysAddr(
                            node=node, card=card, bus=bus, chip=chip,
                            block=b))
                    ]
                    self._free[key] = blocks
        self._rr = 0  # round-robin cursor over chips
        # Open write point per chip: (block, next_page).
        self._open: Dict[_ChipKey, Optional[Tuple[int, int]]] = {
            key: None for key in self._chips}

    # -- free space --------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        return sum(len(blocks) for blocks in self._free.values())

    @property
    def total_good_blocks(self) -> int:
        return self.free_blocks + sum(
            1 for open_ in self._open.values() if open_ is not None)

    def _take_block(self, key: _ChipKey) -> Optional[int]:
        """Pop the least-worn free block of a chip (wear leveling)."""
        blocks = self._free.get(key)
        if not blocks:
            return None
        node, card, bus, chip = key
        blocks.sort(key=lambda b: self.wear.erase_count(PhysAddr(
            node=node, card=card, bus=bus, chip=chip, block=b)))
        return blocks.pop(0)

    # -- write point allocation ----------------------------------------------
    def next_page(self) -> Optional[PhysAddr]:
        """The next physical page to program, striped across chips.

        Returns None when the device is out of free space (caller must
        garbage collect).
        """
        for _ in range(len(self._chips)):
            key = self._chips[self._rr]
            self._rr = (self._rr + 1) % len(self._chips)
            open_ = self._open[key]
            if open_ is None:
                block = self._take_block(key)
                if block is None:
                    continue
                open_ = (block, 0)
            block, page = open_
            node, card, bus, chip = key
            addr = PhysAddr(node=node, card=card, bus=bus, chip=chip,
                            block=block, page=page)
            page += 1
            self._open[key] = (None if page >= self.geometry.pages_per_block
                               else (block, page))
            return addr
        return None

    def release_block(self, addr: PhysAddr) -> None:
        """Return an erased block to its chip's free list."""
        key = (addr.node, addr.card, addr.bus, addr.chip)
        if key not in self._free:
            raise ValueError(f"{addr} not managed by this allocator")
        if addr.block in self._free[key]:
            raise ValueError(f"block {addr.block} already free")
        if not self.badblocks.is_bad(addr):
            self._free[key].append(addr.block)

    def retire_block(self, addr: PhysAddr) -> None:
        """Drop a grown-bad block from circulation permanently."""
        key = (addr.node, addr.card, addr.bus, addr.chip)
        blocks = self._free.get(key)
        if blocks and addr.block in blocks:
            blocks.remove(addr.block)
