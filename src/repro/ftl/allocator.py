"""Physical block allocation with chip-striping and wear awareness.

The allocator hands out *write points* — (block, next page) cursors — so
that sequential logical writes land on different buses/chips and program
in parallel (the "exposing all degrees of parallelism" goal of Section
3.1.1).  Two allocation modes:

* ``striped`` (the default) rotates round-robin over every chip,
  advancing each chip's private open block independently — the seed
  behavior.  Consecutive allocations always land on different buses,
  but the pages are only *stripe-adjacent* while every chip happens to
  share the same open block.
* ``sequential`` hands out write points as stripe-adjacent runs — the
  exact inverse of :meth:`~repro.flash.geometry.FlashGeometry.
  striped_index`.  A *stripe group* (the same block id opened on every
  chip at once) is filled unit-by-unit, page-by-page, so consecutive
  allocations have consecutive striped indices and a logically
  sequential writer's pages merge into multi-page program commands
  downstream.  When no block id is free on every chip (bad blocks,
  fragmented frees), allocation falls back to the striped rotation for
  that page.

Free blocks per chip are kept in a min-heap keyed by erase count
(least-erased-first is the static wear-leveling policy): taking a block
is O(log n) instead of the former sort-per-take.  Heap entries are
re-keyed lazily — an entry whose recorded erase count went stale is
re-pushed at its current count before it can win — so external erases
recorded against free blocks still reorder the heap correctly.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..flash import BadBlockTable, FlashGeometry, PhysAddr, WearTracker

__all__ = ["BlockAllocator", "ALLOCATION_MODES"]

_ChipKey = Tuple[int, int, int, int]

#: Legal ``mode`` values: the seed's chip rotation and the
#: stripe-adjacent sequential mode logical volumes use.
ALLOCATION_MODES = ("striped", "sequential")


class BlockAllocator:
    """Free-block lists and rotating write points for one flash device."""

    def __init__(self, geometry: FlashGeometry, badblocks: BadBlockTable,
                 wear: WearTracker, node: int = 0,
                 cards: Optional[List[int]] = None,
                 mode: str = "striped"):
        if mode not in ALLOCATION_MODES:
            raise ValueError(f"unknown allocation mode {mode!r}; "
                             f"expected one of {ALLOCATION_MODES}")
        self.geometry = geometry
        self.badblocks = badblocks
        self.wear = wear
        self.node = node
        self.mode = mode
        self.cards = cards if cards is not None else list(
            range(geometry.cards_per_node))
        #: Authoritative per-chip free membership; the heap may carry
        #: stale entries that are skipped at pop time.
        self._free: Dict[_ChipKey, Set[int]] = {}
        self._heaps: Dict[_ChipKey, List[Tuple[int, int]]] = {}
        self._chips: List[_ChipKey] = []
        # Bus-fastest rotation: consecutive allocations land on different
        # buses, so short sequential runs still engage every channel.
        # With all cards present this enumeration order is exactly the
        # striped unit order (bus-fastest, then card, then chip), which
        # is what makes sequential mode's unit walk stripe-adjacent.
        for chip in range(geometry.chips_per_bus):
            for card in self.cards:
                for bus in range(geometry.buses_per_card):
                    key = (node, card, bus, chip)
                    self._chips.append(key)
                    blocks = [
                        b for b in range(geometry.blocks_per_chip)
                        if not badblocks.is_bad(PhysAddr(
                            node=node, card=card, bus=bus, chip=chip,
                            block=b))
                    ]
                    self._free[key] = set(blocks)
                    heap = [(wear.erase_count(PhysAddr(
                        node=node, card=card, bus=bus, chip=chip,
                        block=b)), b) for b in blocks]
                    heapq.heapify(heap)
                    self._heaps[key] = heap
        self._rr = 0  # round-robin cursor over chips
        # Open write point per chip: (block, next_page).
        self._open: Dict[_ChipKey, Optional[Tuple[int, int]]] = {
            key: None for key in self._chips}
        # Sequential mode's open stripe group: (block, unit, page).
        self._seq_open: Optional[Tuple[int, int, int]] = None
        # Chips pulled out of allocation (evacuation of a dying chip);
        # they stay in ``_chips`` so striped-unit numbering is stable,
        # but every allocation path skips them.
        self._retired: Set[_ChipKey] = set()

    # -- free space --------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        return sum(len(blocks) for blocks in self._free.values())

    @property
    def total_good_blocks(self) -> int:
        open_blocks = sum(
            1 for open_ in self._open.values() if open_ is not None)
        if self._seq_open is not None:
            open_blocks += len(self._chips)
        return self.free_blocks + open_blocks

    def _erase_count(self, key: _ChipKey, block: int) -> int:
        node, card, bus, chip = key
        return self.wear.erase_count(PhysAddr(
            node=node, card=card, bus=bus, chip=chip, block=block))

    def _take_block(self, key: _ChipKey) -> Optional[int]:
        """Pop the least-worn free block of a chip (wear leveling).

        Stale heap entries (removed blocks, or blocks whose erase count
        moved since push) are dropped or re-keyed lazily, so the block
        returned is least-erased at *take* time — ties broken by block
        id for determinism.
        """
        free = self._free.get(key)
        if not free:
            return None
        heap = self._heaps[key]
        while heap:
            count, block = heap[0]
            if block not in free:
                heapq.heappop(heap)
                continue
            current = self._erase_count(key, block)
            if current != count:
                heapq.heapreplace(heap, (current, block))
                continue
            heapq.heappop(heap)
            free.discard(block)
            return block
        return None

    def _take_specific(self, key: _ChipKey, block: int) -> None:
        """Claim one named free block (sequential stripe groups)."""
        self._free[key].discard(block)
        # Its heap entry goes stale and is skipped at a later pop.

    # -- write point allocation ----------------------------------------------
    def next_page(self) -> Optional[PhysAddr]:
        """The next physical page to program.

        ``striped`` mode rotates across chips; ``sequential`` mode walks
        the open stripe group in striped-index order (falling back to
        the rotation when no block id is free on every chip).  Returns
        None when the device is out of free space (caller must garbage
        collect).
        """
        if self.mode == "sequential":
            addr = self._next_sequential()
            if addr is not None:
                return addr
        for _ in range(len(self._chips)):
            key = self._chips[self._rr]
            self._rr = (self._rr + 1) % len(self._chips)
            open_ = self._open[key]
            if open_ is None:
                block = self._take_block(key)
                if block is None:
                    continue
                open_ = (block, 0)
            block, page = open_
            node, card, bus, chip = key
            addr = PhysAddr(node=node, card=card, bus=bus, chip=chip,
                            block=block, page=page)
            page += 1
            self._open[key] = (None if page >= self.geometry.pages_per_block
                               else (block, page))
            return addr
        return None

    def _common_block(self) -> Optional[int]:
        """A block id free on *every* live chip, least total wear first."""
        active = [key for key in self._chips if key not in self._retired]
        if not active:
            return None
        common = set.intersection(
            *(self._free[key] for key in active))
        if not common:
            return None
        return min(common, key=lambda b: (
            sum(self._erase_count(key, b) for key in active), b))

    def _next_sequential(self) -> Optional[PhysAddr]:
        """One page off the open stripe group, striped-index order.

        Unit-fastest, then page: consecutive calls return addresses with
        consecutive :meth:`FlashGeometry.striped_index` values, which is
        the adjacency the write coalescer merges on.
        """
        if self._seq_open is None:
            block = self._common_block()
            if block is None:
                return None
            for key in self._chips:
                if key not in self._retired:
                    self._take_specific(key, block)
            self._seq_open = (block, 0, 0)
        block, unit, page = self._seq_open
        addr = None
        while addr is None:
            key = self._chips[unit]
            if key not in self._retired:
                node, card, bus, chip = key
                addr = PhysAddr(node=node, card=card, bus=bus, chip=chip,
                                block=block, page=page)
            unit += 1
            if unit >= len(self._chips):
                unit = 0
                page += 1
                if page >= self.geometry.pages_per_block:
                    self._seq_open = None
                    return addr
        self._seq_open = (block, unit, page)
        return addr

    def release_block(self, addr: PhysAddr) -> None:
        """Return an erased block to its chip's free list."""
        key = (addr.node, addr.card, addr.bus, addr.chip)
        if key not in self._free:
            raise ValueError(f"{addr} not managed by this allocator")
        if addr.block in self._free[key]:
            raise ValueError(f"block {addr.block} already free")
        if not self.badblocks.is_bad(addr):
            self._free[key].add(addr.block)
            heapq.heappush(self._heaps[key],
                           (self._erase_count(key, addr.block), addr.block))

    def retire_block(self, addr: PhysAddr) -> None:
        """Drop a grown-bad block from circulation permanently."""
        key = (addr.node, addr.card, addr.bus, addr.chip)
        free = self._free.get(key)
        if free is not None:
            free.discard(addr.block)

    def retire_chip(self, card: int, bus: int, chip: int) -> None:
        """Pull a dying chip out of allocation entirely.

        Its free blocks and open write point are dropped, the striped
        rotation stops finding anything on it, and sequential stripe
        groups skip its units in place — the walk stays stripe-adjacent
        on the surviving chips (falling back to the rotation when no
        common block id remains).  Already-allocated pages are the
        caller's to evacuate (:meth:`~repro.ftl.core.FtlCore.
        evacuate_chip`).
        """
        key = (self.node, card, bus, chip)
        if key not in self._free:
            raise ValueError(f"chip ({card}, {bus}, {chip}) not managed "
                             f"by this allocator")
        self._retired.add(key)
        self._free[key].clear()
        self._heaps[key].clear()
        self._open[key] = None
