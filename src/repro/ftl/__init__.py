"""Host-side flash management (the paper moves the FTL out of the device).

* :mod:`~repro.ftl.mapping` — L2P/P2L page map with validity tracking.
* :mod:`~repro.ftl.allocator` — chip-striped, wear-aware block allocation.
* :mod:`~repro.ftl.core` — :class:`FtlCore`, the one shared
  map/allocator/GC substrate every management facade rides.
* :mod:`~repro.ftl.log` — :class:`LogStructuredCore`, the device-driven
  facade (BlockDeviceFTL/RFS do their own device I/O).
* :mod:`~repro.ftl.ftl` — :class:`BlockDeviceFTL`, the compatibility
  block-device path.

(The QoS-port-riding facade over the same core is
:class:`repro.volume.LogicalVolume`.)
"""

from .allocator import ALLOCATION_MODES, BlockAllocator
from .core import WEAR_LEVELING_MODES, FtlCore, OutOfSpaceError
from .ftl import BlockDeviceFTL
from .log import LogStructuredCore
from .mapping import BlockState, PageMap

__all__ = [
    "PageMap",
    "BlockState",
    "BlockAllocator",
    "ALLOCATION_MODES",
    "FtlCore",
    "WEAR_LEVELING_MODES",
    "LogStructuredCore",
    "OutOfSpaceError",
    "BlockDeviceFTL",
]
