"""Host-side flash management (the paper moves the FTL out of the device).

* :mod:`~repro.ftl.mapping` — L2P/P2L page map with validity tracking.
* :mod:`~repro.ftl.allocator` — chip-striped, wear-aware block allocation.
* :mod:`~repro.ftl.log` — shared log-structured core (writes + greedy GC).
* :mod:`~repro.ftl.ftl` — :class:`BlockDeviceFTL`, the compatibility
  block-device path.
"""

from .allocator import ALLOCATION_MODES, BlockAllocator
from .ftl import BlockDeviceFTL
from .log import LogStructuredCore, OutOfSpaceError
from .mapping import BlockState, PageMap

__all__ = [
    "PageMap",
    "BlockState",
    "BlockAllocator",
    "ALLOCATION_MODES",
    "LogStructuredCore",
    "OutOfSpaceError",
    "BlockDeviceFTL",
]
