"""The one log-structured FTL substrate every management facade rides.

The paper's two host-side flash-management designs (Section 4) — the
driver-level FTL ("a full-fledged FTL implemented in the device driver,
similar to Fusion IO's driver") and the RFS-style file system ("RFS
performs some functionality of an FTL, including logical-to-physical
address mapping and garbage collection") — share one log-structured
substrate.  :class:`FtlCore` *is* that substrate: it owns the
:class:`~repro.ftl.mapping.PageMap`, the
:class:`~repro.ftl.allocator.BlockAllocator` (``striped`` and
``sequential`` modes), greedy garbage collection with a deterministic
victim tiebreak, and every invariant the PR-5 review pass hardened:

* **mid-relocation re-checks** — the victim page's reverse mapping is
  re-read after the relocation read *and* after the relocation write,
  so a foreground overwrite or TRIM completing while the copy was in
  flight keeps the newer state (the abandoned copy is retired
  programmed-and-invalid and counted in ``gc_stale_moves``);
* **completion-time write accounting** — a write charges
  ``user_writes``/``total_programs`` only when its program completes; a
  failed program charges nothing and retires its page
  programmed-and-invalid, so the identity
  ``total_programs == user + gc_moved + gc_stale`` always holds and no
  free space leaks;
* **the per-block program-order gate** — same-block programs are gated
  into allocation order (ascending pages) before they are issued, so
  concurrent writers racing through independently-arbitrated paths
  never violate the NAND in-block order rule;
* **read pinning** — foreground reads pin their block against GC's
  erase for the read's lifetime, so relocation can move the mapping
  but the physical page is never erased under an in-flight read.

The core performs **no device I/O of its own**.  GC relocation traffic
goes through the ``io`` backend handed in at construction — three DES
generator methods:

``gc_read(addr) -> ReadResult`` / ``gc_write(addr, data)`` /
``gc_erase(addr)``

:class:`~repro.ftl.log.LogStructuredCore` (behind
:class:`~repro.ftl.ftl.BlockDeviceFTL` and :class:`~repro.fs.rfs.RFS`)
backs them with direct :class:`~repro.flash.device.StorageDevice`
commands; :class:`~repro.volume.LogicalVolume` backs them with its
dedicated low-priority ``volume-gc`` splitter port so relocation is
QoS-arbitrated.  Foreground I/O likewise stays in the facades — the
core hands out addresses (:meth:`allocate`), gates program order
(:meth:`await_program_turn`), and records outcomes
(:meth:`commit_write` / :meth:`retire_page`); the facade decides *how*
the bytes move.

Write amplification is accounted per owner: each committed write bumps
its owner's ``user_writes``; each GC relocation bumps the owning
tenant's ``gc_moved`` (ownership = the registered LBA window containing
the moved page, the core's ``name`` when none matches).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..flash import (
    BadBlockProgramError,
    EraseError,
    PhysAddr,
    ProgramFailedError,
    UncorrectablePageError,
)
from ..sim import Event, Simulator
from .allocator import ALLOCATION_MODES, BlockAllocator
from .mapping import PageMap

__all__ = ["FtlCore", "OutOfSpaceError", "WEAR_LEVELING_MODES"]

#: ``none`` = least-erased-first allocation only (the min-heaps already
#: prefer cold blocks); ``static`` additionally migrates the coldest
#: *full* block when the erase-count spread crosses a threshold, so
#: cold data stops camping on cycles the device can never reclaim.
WEAR_LEVELING_MODES = ("none", "static")

_BlockKey = Tuple[int, int, int, int, int]


class OutOfSpaceError(Exception):
    """No free pages remain even after garbage collection."""


class FtlCore:
    """Shared map/allocator/GC state machine over one node's flash.

    ``io`` is the relocation backend (``gc_read``/``gc_write``/
    ``gc_erase`` DES generators); serialization of :meth:`allocate`
    against concurrent callers is the facade's job (the volume holds a
    one-slot lock, the driver FTL and RFS run their writers in a
    single logical stream).
    """

    def __init__(self, sim: Simulator, device, io,
                 mode: str = "striped", gc_low_watermark: int = 2,
                 name: str = "ftl", wear_leveling: str = "none",
                 wl_spread_threshold: int = 8):
        if mode not in ALLOCATION_MODES:
            raise ValueError(
                f"unknown allocation mode {mode!r}; expected one "
                f"of {ALLOCATION_MODES}")
        if gc_low_watermark < 1:
            raise ValueError("gc_low_watermark must be >= 1")
        if wear_leveling not in WEAR_LEVELING_MODES:
            raise ValueError(
                f"unknown wear-leveling mode {wear_leveling!r}; "
                f"expected one of {WEAR_LEVELING_MODES}")
        if wl_spread_threshold < 1:
            raise ValueError("wl_spread_threshold must be >= 1")
        self.sim = sim
        self.device = device
        self.io = io
        self.geometry = device.geometry
        self.name = name
        self.allocation = mode
        self.gc_low_watermark = gc_low_watermark
        self.wear_leveling = wear_leveling
        self.wl_spread_threshold = wl_spread_threshold
        self.map = PageMap(self.geometry)
        self.allocator = BlockAllocator(self.geometry, device.badblocks,
                                        device.wear, node=device.node,
                                        mode=mode)
        self._full_blocks: Set[_BlockKey] = set()
        self._programmed: Dict[_BlockKey, int] = {}
        #: block -> next page expected to program; writers (foreground
        #: and GC alike) gate on it so same-block programs reach the
        #: chip in allocation order (the NAND in-block order rule).
        self._program_next: Dict[_BlockKey, int] = {}
        self._program_gates: Dict[_BlockKey, List[Event]] = {}
        #: block -> in-flight foreground reads; GC must not erase a
        #: block out from under one (it would read back erased bytes).
        self._reading: Dict[_BlockKey, int] = {}
        self._read_gates: Dict[_BlockKey, List[Event]] = {}
        #: (start, end, tenant) LBA ownership windows, in registration
        #: order; GC relocation is attributed to the owning tenant.
        self._owners: List[Tuple[int, int, str]] = []
        self.user_writes: Dict[str, int] = {}
        self.gc_moved: Dict[str, int] = {}
        self.total_programs = 0
        self.gc_runs = 0
        self.gc_moved_pages = 0
        #: relocations a foreground write/TRIM overtook mid-flight: the
        #: copy was programmed but discarded (never remapped).
        self.gc_stale_moves = 0
        #: collected victim block keys in collection order — GC victim
        #: order is reproducible by construction (deterministic
        #: tiebreak), and this is the pin equivalence tests compare.
        self.gc_victims: List[_BlockKey] = []
        self.prefilled_pages = 0
        #: blocks that ate a program failure: they keep serving reads
        #: and filling normally, but are retired (grown-bad) instead of
        #: released at their next erase — the firmware-style
        #: retire-at-erase lifecycle.
        self._suspect: Set[_BlockKey] = set()
        #: foreground writes recovered by rewriting to a fresh page.
        self.recovered_writes = 0
        self.bad_blocks_retired = 0
        #: pages whose relocation read came back uncorrectable: the
        #: only copy is gone; the LPN is unmapped (reads as erased).
        self.gc_lost_pages = 0
        #: unrecoverable losses, however discovered (GC or foreground).
        self.lost_pages = 0
        self.first_loss_ns: Optional[int] = None
        #: user writes completed when the first page was lost — the
        #: lifetime experiment's TBW-to-first-loss numerator.
        self.first_loss_user_writes: Optional[int] = None
        self.wl_migrations = 0
        self.evacuated_pages = 0
        self.chips_evacuated = 0
        self._wl_last_total_erases = -1

    # -- ownership / accounting -----------------------------------------
    def register_owner(self, start: int, end: int, tenant: str) -> None:
        """Attribute the LBA window ``[start, end)`` to ``tenant``."""
        self._owners.append((start, end, tenant))
        self.user_writes.setdefault(tenant, 0)
        self.gc_moved.setdefault(tenant, 0)

    def owner_of(self, lpn: int) -> str:
        """The tenant owning ``lpn``'s window (the core name if none)."""
        for start, end, tenant in self._owners:
            if start <= lpn < end:
                return tenant
        return self.name

    @property
    def user_writes_total(self) -> int:
        return sum(self.user_writes.values())

    def write_amplification(self, tenant: Optional[str] = None) -> float:
        """Programs per user write: 1.0 = no GC traffic charged.

        With a ``tenant``, the per-tenant view — that tenant's user
        writes plus the relocations its pages caused; without, the
        volume-wide aggregate.  Stale (abandoned) copies are charged to
        nobody: they are GC overhead, not any tenant's data movement.
        """
        if tenant is not None:
            user = self.user_writes.get(tenant, 0)
            if user == 0:
                return 1.0
            return (user + self.gc_moved.get(tenant, 0)) / user
        user = self.user_writes_total
        if user == 0:
            return 1.0
        return (user + self.gc_moved_pages) / user

    # -- mapping ---------------------------------------------------------
    def physical_of(self, lpn: int) -> Optional[PhysAddr]:
        """Current physical location of a logical page (None=unmapped)."""
        return self.map.lookup(lpn)

    def trim(self, lpn: int) -> None:
        """Invalidate a logical page (TRIM); space is reclaimed by GC."""
        self.map.unmap(lpn)

    @staticmethod
    def _key(addr: PhysAddr) -> _BlockKey:
        return (addr.node, addr.card, addr.bus, addr.chip, addr.block)

    @staticmethod
    def _addr_of(key: _BlockKey) -> PhysAddr:
        node, card, bus, chip, block = key
        return PhysAddr(node=node, card=card, bus=bus, chip=chip,
                        block=block, page=0)

    # -- program bookkeeping ---------------------------------------------
    def _note_program(self, addr: PhysAddr) -> None:
        """Record one programmed page; track fully-programmed blocks.

        Blocks become GC-eligible only once *every* allocated page has
        actually programmed, so GC never relocates (or erases under) a
        page whose program is still in flight.
        """
        self.map.note_programmed(addr)
        key = self._key(addr)
        count = self._programmed.get(key, 0) + 1
        if count >= self.geometry.pages_per_block:
            self._programmed.pop(key, None)
            self._full_blocks.add(key)
        else:
            self._programmed[key] = count

    def await_program_turn(self, addr: PhysAddr):
        """Hold a program until every earlier page of its block has
        programmed (DES generator).

        The allocator hands out a block's pages in ascending order, but
        the programs themselves may race through independently-
        arbitrated paths (tenant QoS ports vs. the low-priority GC
        port, or concurrent file-system writers).  This gate restores
        allocation order per block before the command is issued, so the
        NAND in-block order rule survives arbitration.  It costs no
        simulated event when programs already arrive in order.
        """
        key = self._key(addr)
        while self._program_next.get(key, 0) < addr.page:
            gate = Event(self.sim)
            self._program_gates.setdefault(key, []).append(gate)
            yield gate

    def program_done(self, addr: PhysAddr) -> None:
        """Advance the block's program cursor and wake gated writers."""
        key = self._key(addr)
        if addr.page >= self._program_next.get(key, 0):
            self._program_next[key] = addr.page + 1
        for gate in self._program_gates.pop(key, ()):
            if not gate.triggered:
                gate.succeed()

    # -- read pinning ----------------------------------------------------
    def begin_read(self, addr: PhysAddr) -> None:
        """Pin ``addr``'s block against GC's erase (pure bookkeeping).

        The mapping may still move meanwhile (the caller then returns
        the version that was current at resolve time — ordinary
        out-of-place-FTL semantics), but the physical page must not be
        erased under the in-flight read.
        """
        key = self._key(addr)
        self._reading[key] = self._reading.get(key, 0) + 1

    def end_read(self, addr: PhysAddr) -> None:
        """Release a read pin; wake GC if it is waiting to erase."""
        key = self._key(addr)
        remaining = self._reading[key] - 1
        if remaining:
            self._reading[key] = remaining
        else:
            del self._reading[key]
            for gate in self._read_gates.pop(key, ()):
                if not gate.triggered:
                    gate.succeed()

    # -- allocation / write completion -----------------------------------
    def allocate(self):
        """Garbage-collect as needed, then hand out the next physical
        page to program (DES generator).

        The caller must serialize concurrent ``allocate`` calls (the
        volume's one-slot lock); raises :class:`OutOfSpaceError` when
        even GC cannot free a page.
        """
        yield from self.ensure_space()
        addr = self.allocator.next_page()
        if addr is None:
            raise OutOfSpaceError("no free pages after GC")
        return addr

    def commit_write(self, lpn: int, addr: PhysAddr, owner: str) -> None:
        """Record a *completed* program: remap, retire, charge.

        Called only when the program landed — the remap (old mapping
        invalidated, LPN pointed at the fresh page) happens at
        completion, so reads resolving meanwhile still see the previous
        version and concurrent writes to one LPN settle
        last-completer-wins.  Accounting follows completion too.
        """
        self.map.map_page(lpn, addr)
        self._note_program(addr)
        self.program_done(addr)
        self.user_writes[owner] = self.user_writes.get(owner, 0) + 1
        self.total_programs += 1

    def retire_page(self, addr: PhysAddr) -> None:
        """Retire a page whose program failed (or was abandoned).

        The page is burned whether or not the program landed: count it
        programmed-and-invalid (never mapped) instead of leaking it, so
        the block keeps filling toward GC eligibility and no user write
        is charged.
        """
        self._note_program(addr)
        self.program_done(addr)

    def note_program_failure(self, addr: PhysAddr) -> None:
        """Record an injected program failure the write path recovered.

        The burned page retires programmed-and-invalid and its block
        becomes *suspect*: it keeps serving reads (its acknowledged
        sibling pages are fine) and keeps filling, but is retired to
        the grown-bad table instead of released at its next erase.
        """
        self.retire_page(addr)
        self._suspect.add(self._key(addr))
        self.recovered_writes += 1

    def _record_loss(self) -> None:
        """One page of acknowledged data is unrecoverable."""
        self.lost_pages += 1
        if self.first_loss_ns is None:
            self.first_loss_ns = self.sim.now
            self.first_loss_user_writes = self.user_writes_total

    def note_read_loss(self, lpn: int) -> None:
        """A foreground read came back uncorrectable: the mapping is
        dropped (the LPN reads as erased from now on) and the loss is
        recorded.  The card already retired the block."""
        self.map.unmap(lpn)
        self._record_loss()

    def reliability_stats(self) -> Dict[str, object]:
        """The injector-independent recovery/retirement counters."""
        return {
            "recovered_writes": self.recovered_writes,
            "bad_blocks_retired": self.bad_blocks_retired,
            "gc_lost_pages": self.gc_lost_pages,
            "lost_pages": self.lost_pages,
            "first_loss_ns": self.first_loss_ns,
            "first_loss_user_writes": self.first_loss_user_writes,
            "wl_migrations": self.wl_migrations,
            "evacuated_pages": self.evacuated_pages,
            "chips_evacuated": self.chips_evacuated,
            "wear_spread": self.device.wear.spread(),
            "grown_bad_blocks": self.device.badblocks.grown_bad_count,
        }

    def prefill(self, start: int, count: int) -> None:
        """Map ``count`` logical pages from ``start``, instantly.

        Functional setup (zero simulated time, no device commands):
        the pages get real physical locations from the allocator —
        stripe-adjacent runs under sequential allocation — and count as
        programmed for GC purposes, but not as user writes, so
        write-amplification measures only the workload.
        """
        for lpn in range(start, start + count):
            addr = self.allocator.next_page()
            if addr is None:
                raise OutOfSpaceError(
                    f"prefill exhausted the device at LPN {lpn}")
            self.map.map_page(lpn, addr)
            self._note_program(addr)
            self.program_done(addr)
            self.prefilled_pages += 1

    # -- garbage collection ----------------------------------------------
    def ensure_space(self):
        """Collect until the free-block floor holds (DES generator; any
        facade-level allocation lock must already be held)."""
        while (self.allocator.free_blocks < self.gc_low_watermark
               and self._full_blocks):
            freed = yield from self.collect_once()
            if not freed:
                break
        if self.wear_leveling == "static":
            yield from self._maybe_level_wear()

    def _maybe_level_wear(self):
        """Static wear leveling: migrate the coldest full block when the
        erase-count spread crosses the threshold (DES generator).

        Least-erased-first allocation levels the *free* pool but cannot
        touch cold data camped on a barely-erased full block; migrating
        it returns those cycles to the pool.  Migrations are paced to at
        most one per block's worth of device erases: a migration costs
        about one block cycle itself (relocate every valid page, then
        erase), so any tighter cadence lets a deep cold pool monopolize
        the allocation path — every post-erase allocation would launch
        another full-block relocation and foreground writes would crawl.
        """
        wear = self.device.wear
        total = wear.total_erases
        if (self._wl_last_total_erases >= 0
                and total - self._wl_last_total_erases
                < self.geometry.pages_per_block):
            return
        if self.allocator.free_blocks < self.gc_low_watermark:
            # Never spend the GC reserve on leveling.  Exactly *at* the
            # watermark is fine — ``ensure_space`` stops there, and a
            # migration hands its victim back to the free pool.
            return
        candidates = [key for key in self._full_blocks
                      if key not in self._suspect]
        if not candidates:
            return
        victim_key = min(candidates, key=lambda key: (
            wear.erase_count(self._addr_of(key)), key))
        # Spread is measured against the coldest *migratable* block, not
        # the tracker's touched-only view: prefilled cold data sits on
        # never-erased blocks the tracker would exclude, and those are
        # exactly the blocks leveling exists to recirculate.
        spread = (wear.max_erase_count
                  - wear.erase_count(self._addr_of(victim_key)))
        if spread < self.wl_spread_threshold:
            return
        self._wl_last_total_erases = total
        freed = yield from self.collect_once(victim_key=victim_key,
                                             force=True)
        if freed:
            self.wl_migrations += 1

    def _relocate_valid_pages(self, victim: PhysAddr):
        """Move every still-valid page of ``victim`` elsewhere (DES
        generator) — the shared relocation loop of GC, wear leveling,
        and chip evacuation.

        Relocation never races foreground completions: the mapping is
        re-checked after the relocation read and again after the
        relocation write, so an LPN a foreground write remapped (or a
        TRIM invalidated) while its copy was in flight keeps the newer
        state — last-completer-wins is decided by the *map*, never by
        GC overwriting it with stale data.

        A relocation read that comes back ECC-uncorrectable is an
        unrecoverable loss: the only copy is gone, the LPN is unmapped
        (it reads as erased from now on), and the loss is counted —
        the collection pass itself keeps going.
        """
        for page_addr in list(self.map.valid_pages_of(victim)):
            lpn = self.map.reverse(page_addr)
            if lpn is None:
                continue
            try:
                result = yield from self.io.gc_read(page_addr)
            except UncorrectablePageError:
                if self.map.reverse(page_addr) == lpn:
                    self.map.unmap(lpn)
                    self.gc_lost_pages += 1
                    self._record_loss()
                continue
            if self.map.reverse(page_addr) != lpn:
                # A foreground write or TRIM overtook the relocation
                # while the read was in flight: nothing left to move.
                continue
            # Relocation writes take injected program failures like any
            # other write: retire the failed page (marking its block
            # suspect) and retry on a fresh destination.  The attempt
            # bound matches the foreground write path's — each retry
            # lands on a new page, so the failure odds roll fresh.
            for attempt in range(8):
                dest = self.allocator.next_page()
                if dest is None:
                    raise OutOfSpaceError("GC found no destination page")
                yield from self.await_program_turn(dest)
                try:
                    yield from self.io.gc_write(dest, result.data)
                except (ProgramFailedError, BadBlockProgramError):
                    self.note_program_failure(dest)
                    continue
                except BaseException:
                    self.retire_page(dest)
                    raise
                self._note_program(dest)
                self.program_done(dest)
                self.total_programs += 1
                break
            else:
                raise ProgramFailedError(
                    f"relocation of LPN {lpn} failed on every destination")
            if self.map.reverse(page_addr) != lpn:
                # Overtaken during the program: the copy at ``dest`` is
                # stale.  Keep the newer mapping (or the TRIM) — never
                # clobber it with relocated data — and leave ``dest``
                # programmed-and-invalid for a later GC pass.
                self.gc_stale_moves += 1
                continue
            self.map.map_page(lpn, dest)
            owner = self.owner_of(lpn)
            self.gc_moved[owner] = self.gc_moved.get(owner, 0) + 1
            self.gc_moved_pages += 1

    def _await_no_readers(self, victim_key: _BlockKey):
        """Erase barrier: foreground reads that resolved a page of this
        block before the relocation must finish first — erasing under
        them would hand back erased bytes instead of their data."""
        while self._reading.get(victim_key):
            gate = Event(self.sim)
            self._read_gates.setdefault(victim_key, []).append(gate)
            yield gate

    def collect_once(self, victim_key: Optional[_BlockKey] = None,
                     force: bool = False):
        """Greedy GC: relocate the fewest-valid full block through the
        ``io`` backend, erase it.  Returns True if reclaimed.

        The victim tiebreak is the block key tuple, so equal-validity
        ties resolve identically on every run and every facade — GC
        victim order is reproducible by construction, never an artifact
        of set-iteration order.

        ``victim_key``/``force`` serve the static wear leveler: an
        explicit victim is collected even when every page is still
        valid (a pure migration frees no space but moves the cold data
        off a barely-erased block).

        A failed erase (injected fault or endurance exceeded — the card
        already marked the block grown-bad) is not fatal: the block is
        retired from the allocator instead of released, as are blocks
        that went *suspect* after a program failure.
        """
        if victim_key is None:
            victim_key = min(
                self._full_blocks,
                key=lambda key: (self.map.block_state(
                    self._addr_of(key)).valid_count, key),
                default=None)
        if victim_key is None:
            return False
        victim = self._addr_of(victim_key)
        state = self.map.block_state(victim)
        if not force and state.valid_count >= self.geometry.pages_per_block:
            # Every page still valid: nothing to reclaim anywhere.
            return False
        self._full_blocks.discard(victim_key)
        self.gc_runs += 1
        self.gc_victims.append(victim_key)
        yield from self._relocate_valid_pages(victim)
        yield from self._await_no_readers(victim_key)
        try:
            yield from self.io.gc_erase(victim)
            erased = True
        except EraseError:
            # The card marked the block grown-bad; retire it below.
            erased = False
        self.map.drop_block(victim)
        self._programmed.pop(victim_key, None)
        # The block only became a victim once fully programmed, so no
        # writer can still be gated on it; reset its program cursor for
        # the next time the allocator opens it.
        self._program_next.pop(victim_key, None)
        if victim_key in self._suspect:
            self._suspect.discard(victim_key)
            self.device.badblocks.mark_bad(victim)
        if not erased or self.device.badblocks.is_bad(victim):
            self.allocator.retire_block(victim)
            self.bad_blocks_retired += 1
        else:
            self.allocator.release_block(victim)
        return True

    # -- chip evacuation ---------------------------------------------------
    def evacuate_block(self, card: int, bus: int, chip: int, block: int):
        """Relocate one block's valid pages and retire it WITHOUT
        erasing it (DES generator; the facade's allocation lock must be
        held).  Returns True if the block held any state.

        The block is marked grown-bad and dropped from the allocator —
        the dying chip may no longer be able to erase, so unlike GC the
        block never returns to the free pool.
        """
        key = (self.device.node, card, bus, chip, block)
        victim = self._addr_of(key)
        had_state = (key in self._full_blocks
                     or key in self._programmed
                     or self.map.block_state(victim).valid_count > 0)
        if not had_state:
            return False
        moved_before = self.gc_moved_pages
        yield from self._relocate_valid_pages(victim)
        yield from self._await_no_readers(key)
        self.map.drop_block(victim)
        self._full_blocks.discard(key)
        self._programmed.pop(key, None)
        self._program_next.pop(key, None)
        self._suspect.discard(key)
        self.device.badblocks.mark_bad(victim)
        self.allocator.retire_block(victim)
        self.bad_blocks_retired += 1
        self.evacuated_pages += self.gc_moved_pages - moved_before
        return True

    def evacuate_chip(self, card: int, bus: int, chip: int):
        """Move everything off a dying chip (DES generator; the
        facade's allocation lock must be held throughout — the volume
        facade instead retires the chip and evacuates block-by-block so
        writers can interleave).

        The chip's free blocks and open write point leave the allocator
        first (new allocations land elsewhere), then every block with
        mapped pages is relocated through the ``io`` backend and
        retired.  Reads still work on a dead chip — stored charge
        survives controller death — so data comes off intact unless a
        page was independently unreadable, which counts as a loss.
        """
        self.allocator.retire_chip(card, bus, chip)
        for block in range(self.geometry.blocks_per_chip):
            yield from self.evacuate_block(card, bus, chip, block)
        self.chips_evacuated += 1
