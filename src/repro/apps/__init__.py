"""Full applications with accelerated and software execution paths.

* :mod:`~repro.apps.lsh` — LSH nearest-neighbour search (Figures 16-19).
* :mod:`~repro.apps.graph` — distributed graph traversal (Figure 20).
* :mod:`~repro.apps.search` — string search vs grep (Figure 21).
"""

from .graph import DistributedGraph, GraphTraversal
from .lsh import (
    LSHIndex,
    NearestNeighborISP,
    SoftwareNN,
    TieredPageStore,
    brute_force_nearest,
    make_item_corpus,
)
from .mapreduce import WordCountJob, make_sharded_corpus
from .search import SoftwareGrep, StringSearchISP, make_text_corpus
from .spmv import SpMVApp, make_sparse_matrix
from .sql import FlashTable, TableScan, make_orders_table

__all__ = [
    "LSHIndex",
    "NearestNeighborISP",
    "SoftwareNN",
    "TieredPageStore",
    "brute_force_nearest",
    "make_item_corpus",
    "DistributedGraph",
    "GraphTraversal",
    "StringSearchISP",
    "SoftwareGrep",
    "make_text_corpus",
    "WordCountJob",
    "make_sharded_corpus",
    "SpMVApp",
    "make_sparse_matrix",
    "FlashTable",
    "TableScan",
    "make_orders_table",
]
