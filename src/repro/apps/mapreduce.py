"""BlueDBM-optimized MapReduce (Section 8 future work, built out).

Word count as the canonical job, restructured for an in-store-processing
cluster the way the paper proposes:

* **map runs in storage** — each node's engines stream its local shard
  from flash and emit per-page partial counts; raw pages never cross
  PCIe or the host network;
* **shuffle rides the integrated storage network** — partial counts are
  partitioned by word hash and sent device-to-device to their reducer
  node on a dedicated logical endpoint;
* **reduce is host software** — small merged dictionaries cross PCIe
  once.

The software baseline maps on the host: every page crosses PCIe and
tokenization burns host CPU.  Both return counts identical to a
``collections.Counter`` oracle.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.accel import Engine
from ..core.cluster import BlueDBMCluster
from ..sim import Store, units

__all__ = ["WordCountEngine", "WordCountJob", "make_sharded_corpus",
           "SHUFFLE_EP"]

#: Logical endpoint reserved for shuffle traffic (the cluster's own
#: request/response protocol uses 0..n-1; benches construct the cluster
#: with enough endpoints).
SHUFFLE_EP = 1

#: Host-side cost to tokenize+count one byte of text (software map).
HOST_MAP_NS_PER_BYTE = 2.0
#: Host-side cost to merge one (word, count) entry during reduce.
REDUCE_NS_PER_ENTRY = 80


def make_sharded_corpus(cluster_nodes: int, pages_per_shard: int,
                        page_size: int, seed: int = 0
                        ) -> Tuple[List[List[bytes]], Counter]:
    """Per-node lists of word-aligned text pages + the oracle counts."""
    import random
    rng = random.Random(seed)
    vocabulary = [f"word{i:03d}".encode() for i in range(64)]
    shards: List[List[bytes]] = []
    oracle: Counter = Counter()
    for _ in range(cluster_nodes):
        pages = []
        for _ in range(pages_per_shard):
            words = []
            size = 0
            while True:
                word = vocabulary[rng.randrange(len(vocabulary))]
                if size + len(word) + 1 > page_size:
                    break
                words.append(word)
                size += len(word) + 1
            for word in words:
                oracle[word.decode()] += 1
            pages.append(b" ".join(words))
        shards.append(pages)
    return shards, oracle


class WordCountEngine(Engine):
    """In-store map: tokenize a text page and count words (for real)."""

    def __init__(self, sim, bytes_per_ns: float = 0.4,
                 name: str = "wordcount-engine"):
        super().__init__(sim, bytes_per_ns, name=name)

    def process_page(self, data: bytes, context=None) -> Dict[str, int]:
        counts: Counter = Counter()
        for token in data.rstrip(b"\x00").split():
            counts[token.decode()] += 1
        return dict(counts)


def _partition(word: str, n_reducers: int) -> int:
    digest = hashlib.md5(word.encode()).digest()
    return digest[0] % n_reducers


def _wire_bytes(counts: Dict[str, int]) -> int:
    """Serialized size of a partial-count dictionary on the wire."""
    return sum(len(w) + 8 for w in counts)


class WordCountJob:
    """A word-count job over files sharded across the cluster."""

    def __init__(self, cluster: BlueDBMCluster, engines_per_node: int = 8,
                 engine_bytes_per_ns: float = 0.4):
        self.cluster = cluster
        self.sim = cluster.sim
        self.engines_per_node = engines_per_node
        self.engine_bytes_per_ns = engine_bytes_per_ns
        self._loaded = False

    def load(self, shards: Sequence[Sequence[bytes]]):
        """Write each node's shard through its file system (generator)."""
        if len(shards) != self.cluster.n_nodes:
            raise ValueError("one shard per node required")
        page_size = self.cluster.page_size
        for node, pages in zip(self.cluster.nodes, shards):
            blob = b"".join(p.ljust(page_size, b"\x00") for p in pages)
            yield from node.fs.write_file("shard.txt", blob)
        self._loaded = True

    # ------------------------------------------------------------------
    def run_isp(self):
        """(DES generator) -> (Counter, stats).

        In-store map -> integrated-network shuffle -> host reduce.
        """
        self._check_loaded()
        cluster = self.cluster
        n = cluster.n_nodes
        t0 = self.sim.now
        reduced: List[Counter] = [Counter() for _ in range(n)]
        shuffle_bytes = [0]
        mappers = []
        reducers_live = [n]  # mappers still running, per reducer loop

        def mapper(node_id: int):
            node = cluster.nodes[node_id]
            extents = node.fs.physical_extents("shard.txt")
            handle = node.flash_server.register_file("wc", extents)
            engines = [WordCountEngine(self.sim, self.engine_bytes_per_ns,
                                       name=f"wc-{node_id}-{i}")
                       for i in range(self.engines_per_node)]
            out = Store(self.sim, capacity=2 * len(engines))
            self.sim.process(node.flash_server.stream_file(
                handle.handle_id, out))
            # Partial counts per reducer, flushed at end of shard.
            partials: List[Counter] = [Counter() for _ in range(n)]
            pending = []
            for i in range(len(extents)):
                page = yield out.get()
                engine = engines[i % len(engines)]
                pending.append(self.sim.process(
                    engine.run_page(page.data)))
                if len(pending) >= 2 * len(engines):
                    counts = yield pending.pop(0)
                    self._fold(counts, partials)
            for proc in pending:
                counts = yield proc
                self._fold(counts, partials)
            # Shuffle: send each reducer its partition device-to-device.
            endpoint = cluster.network.endpoint(node_id, SHUFFLE_EP)
            for reducer, counter in enumerate(partials):
                payload = dict(counter)
                size = max(1, _wire_bytes(payload))
                shuffle_bytes[0] += size
                if reducer == node_id:
                    reduced[reducer].update(payload)  # local, no wire
                else:
                    yield self.sim.process(endpoint.send(
                        reducer, ("wc-partial", payload), size))

        def reducer_loop(node_id: int):
            endpoint = cluster.network.endpoint(node_id, SHUFFLE_EP)
            node = cluster.nodes[node_id]
            for _ in range(n - 1):  # one partial from each other node
                message = yield self.sim.process(endpoint.receive())
                tag, payload = message.payload
                assert tag == "wc-partial"
                yield self.sim.process(node.cpu.compute(
                    REDUCE_NS_PER_ENTRY * max(1, len(payload))))
                reduced[node_id].update(payload)

        procs = [self.sim.process(mapper(i)) for i in range(n)]
        procs += [self.sim.process(reducer_loop(i)) for i in range(n)]
        for proc in procs:
            yield proc
        total: Counter = Counter()
        for counter in reduced:
            total.update(counter)
        elapsed = self.sim.now - t0
        return total, self._stats(elapsed, shuffle_bytes[0])

    def run_host(self):
        """(DES generator) -> (Counter, stats).

        Conventional path: pages to host DRAM over PCIe, map in
        software, merge over Ethernet (counts are small; the page moves
        dominate).
        """
        self._check_loaded()
        cluster = self.cluster
        t0 = self.sim.now
        merged: Counter = Counter()
        procs = []

        def host_mapper(node_id: int):
            node = cluster.nodes[node_id]
            extents = node.fs.physical_extents("shard.txt")
            local: Counter = Counter()
            pending = []

            def one(addr):
                data = yield self.sim.process(
                    node.host_read(addr, software_path=False))
                yield self.sim.process(node.cpu.compute(
                    int(len(data) * HOST_MAP_NS_PER_BYTE)))
                for token in data.rstrip(b"\x00").split():
                    local[token.decode()] += 1

            for addr in extents:
                pending.append(self.sim.process(one(addr)))
                if len(pending) >= 64:
                    yield pending.pop(0)
            for proc in pending:
                yield proc
            if node_id != 0:
                yield self.sim.process(cluster.ethernet.send(
                    node_id, 0, dict(local), max(1, _wire_bytes(local))))
            else:
                merged.update(local)

        def collector(sim):
            node = cluster.nodes[0]
            for _ in range(cluster.n_nodes - 1):
                message = yield cluster.app_inbox[0].get()
                yield self.sim.process(node.cpu.compute(
                    REDUCE_NS_PER_ENTRY * max(1, len(message.payload))))
                merged.update(message.payload)

        for i in range(cluster.n_nodes):
            procs.append(self.sim.process(host_mapper(i)))
        procs.append(self.sim.process(collector(self.sim)))
        for proc in procs:
            yield proc
        elapsed = self.sim.now - t0
        return merged, self._stats(elapsed, 0)

    # ------------------------------------------------------------------
    def _check_loaded(self):
        if not self._loaded:
            raise RuntimeError("load() must run before the job")

    @staticmethod
    def _fold(counts: Dict[str, int], partials: List[Counter]) -> None:
        n = len(partials)
        for word, count in counts.items():
            partials[_partition(word, n)][word] += count

    def _stats(self, elapsed_ns: int, shuffle_bytes: int) -> Dict:
        pages = sum(node.fs.stat("shard.txt").num_pages
                    for node in self.cluster.nodes)
        scanned = pages * self.cluster.page_size
        return {
            "elapsed_ns": elapsed_ns,
            "scan_gbs": units.bandwidth_gbytes(scanned, elapsed_ns),
            "shuffle_bytes": shuffle_bytes,
        }
