"""Distributed graph traversal (Section 7.2, Figure 20).

Vertices live one-per-page, spread across every node's flash (and
mirrored in each node's DRAM for the RAMCloud-style baselines).  A
traversal is a chain of *dependent* lookups: parse the vertex page, pick
a neighbor, fetch its page — the next fetch cannot be issued until the
current one returns, so the chain rate is 1/latency and the access-path
choice (ISP-F / H-F / H-RH-F / DRAM mixes) is everything.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.cluster import BlueDBMCluster
from ..flash import PhysAddr
from ..isp.graphwalk import GraphWalkEngine, decode_vertex, encode_vertex
from ..sim import units

__all__ = ["DistributedGraph", "GraphTraversal"]


class DistributedGraph:
    """A synthetic directed graph sharded over a BlueDBM cluster."""

    def __init__(self, cluster: BlueDBMCluster, n_vertices: int,
                 avg_degree: int = 8, seed: int = 0):
        if n_vertices < 2:
            raise ValueError("need at least two vertices")
        if avg_degree < 1:
            raise ValueError("need at least degree 1")
        self.cluster = cluster
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.adjacency: Dict[int, List[int]] = {}
        rng = random.Random(seed)
        page_size = cluster.page_size
        for v in range(n_vertices):
            degree = max(1, min(n_vertices - 1,
                                rng.randint(1, 2 * avg_degree)))
            neighbors = rng.sample(
                [u for u in range(n_vertices) if u != v],
                min(degree, n_vertices - 1))
            self.adjacency[v] = neighbors
            data = encode_vertex(v, neighbors, page_size)
            owner = self.owner(v)
            node = cluster.nodes[owner]
            node.device.store.program(self.address(v), data)
            node.dram.store(self.dram_page(v), data)

    # -- placement ----------------------------------------------------------
    def owner(self, vertex: int) -> int:
        """Vertices are sharded round-robin across nodes."""
        return vertex % self.cluster.n_nodes

    def dram_page(self, vertex: int) -> int:
        return vertex // self.cluster.n_nodes

    def address(self, vertex: int) -> PhysAddr:
        """Physical flash location of a vertex's page."""
        node = self.owner(vertex)
        slot = vertex // self.cluster.n_nodes
        geometry = self.cluster.nodes[node].geometry
        if slot >= geometry.pages_per_node:
            raise ValueError("graph exceeds node flash capacity")
        return geometry.striped(slot, node=node)

    def reference_walk(self, start: int, steps: int) -> List[int]:
        """Pure-software oracle of the deterministic walk."""
        path = [start]
        v = start
        for step in range(steps):
            neighbors = self.adjacency[v]
            v = neighbors[step % len(neighbors)]
            path.append(v)
        return path


class GraphTraversal:
    """Runs the walk over each of Figure 20's access configurations."""

    def __init__(self, graph: DistributedGraph, home_node: int = 0,
                 seed: int = 0):
        self.graph = graph
        self.cluster = graph.cluster
        self.sim = graph.cluster.sim
        self.home = home_node
        self.rng = random.Random(seed)

    # -- access paths per lookup ----------------------------------------------
    def _fetch_isp_f(self, vertex: int):
        """ISP-F: the in-store processor drives; remote reads go over the
        integrated network, local ones straight to flash."""
        addr = self.graph.address(vertex)
        if addr.node == self.home:
            result = yield self.sim.process(
                self.cluster.nodes[self.home].isp_read(addr))
            return result.data
        data, _ = yield from self.cluster.isp_remote_flash(self.home, addr)
        return data

    def _fetch_h_f(self, vertex: int):
        """H-F: host software drives; data still moves on the integrated
        network but every lookup pays the host request/PCIe path."""
        addr = self.graph.address(vertex)
        if addr.node == self.home:
            data = yield self.sim.process(
                self.cluster.nodes[self.home].host_read(addr))
            return data
        data, _ = yield from self.cluster.host_remote_flash(self.home, addr)
        return data

    def _fetch_h_rh_f(self, vertex: int):
        """H-RH-F: requests detour through the remote host's software."""
        addr = self.graph.address(vertex)
        if addr.node == self.home:
            data = yield self.sim.process(
                self.cluster.nodes[self.home].host_read(addr))
            return data
        data, _ = yield from self.cluster.host_remote_via_host(
            self.home, addr)
        return data

    def _fetch_dram_mixed(self, vertex: int, dram_fraction: float):
        """RAMCloud-style: remote server answers from DRAM with
        probability ``dram_fraction``, else from its flash."""
        addr = self.graph.address(vertex)
        if self.rng.random() < dram_fraction:
            if addr.node == self.home:
                node = self.cluster.nodes[self.home]
                data = yield from node.dram.read(
                    self.graph.dram_page(vertex))
                return data
            data, _ = yield from self.cluster.host_remote_dram(
                self.home, addr.node, self.graph.dram_page(vertex))
            return data
        data = yield from self._fetch_h_rh_f(vertex)
        return data

    # -- the measured walk ------------------------------------------------------
    def run(self, config: str, start: int, steps: int,
            n_chains: int = 1):
        """(DES generator) -> (lookups_per_second, visited_paths).

        ``config`` is one of ``isp-f``, ``h-f``, ``h-rh-f``,
        ``dram-50f``, ``dram-30f``, ``h-dram`` (Figure 20's x axis).
        ``n_chains`` independent walks run concurrently (distinct start
        vertices) to model a multi-query workload.
        """
        fetchers = {
            "isp-f": self._fetch_isp_f,
            "h-f": self._fetch_h_f,
            "h-rh-f": self._fetch_h_rh_f,
            "dram-50f": lambda v: self._fetch_dram_mixed(v, 0.5),
            "dram-30f": lambda v: self._fetch_dram_mixed(v, 0.7),
            "h-dram": lambda v: self._fetch_dram_mixed(v, 1.0),
        }
        if config not in fetchers:
            raise ValueError(f"unknown config {config!r}; "
                             f"options: {sorted(fetchers)}")
        if steps < 1 or n_chains < 1:
            raise ValueError("steps and n_chains must be >= 1")
        fetch = fetchers[config]
        paths: List[List[int]] = []
        t0 = self.sim.now
        done = []

        def chain(chain_start: int):
            engine = GraphWalkEngine(self.sim)
            path = [chain_start]
            v = chain_start
            for _ in range(steps):
                data = yield from fetch(v)
                _, nxt = yield self.sim.process(engine.run_page(data))
                if nxt is None:
                    break
                v = nxt
                path.append(v)
            paths.append(path)
            done.append(self.sim.now)

        procs = [
            self.sim.process(chain((start + c) % self.graph.n_vertices))
            for c in range(n_chains)
        ]
        for proc in procs:
            yield proc
        elapsed = max(done) - t0
        total_lookups = sum(len(p) - 1 for p in paths)
        rate = total_lookups / units.to_s(elapsed) if elapsed else 0.0
        return rate, paths
