"""Nearest-neighbour search via Locality Sensitive Hashing (Section 7.1).

The full application the paper benchmarks in Figures 16-19:

* a real LSH index for Hamming space — multiple hash tables, each keyed
  by a random subset of bit positions, so similar pages land in the same
  bucket;
* the **accelerated path**: software hashes the query, looks up the
  bucket, and streams the bucket's *physical addresses* to in-store
  Hamming engines that read flash at device speed and return only
  distances;
* the **software paths**: host threads fetch candidate pages from some
  store (host DRAM, BlueDBM over PCIe, commodity SSD, disk, or a tiered
  DRAM-with-misses store) and compute distances on host cores.

Functional correctness is tested against a brute-force oracle; the
timing knobs (``compare_ns`` etc.) reproduce the paper's measured
constants: the host needs ~4 threads to match one BlueDBM node's 320K
comparisons/s.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.accel import EngineArray
from ..core.node import BlueDBMNode
from ..devices import DRAMStore
from ..flash import PhysAddr
from ..host import HostCPU
from ..isp.hamming import HammingEngine, hamming_distance
from ..sim import Resource, Simulator, units

__all__ = [
    "LSHIndex",
    "make_item_corpus",
    "brute_force_nearest",
    "NearestNeighborISP",
    "SoftwareNN",
    "TieredPageStore",
]


class LSHIndex:
    """Locality Sensitive Hashing for Hamming space [Gionis et al. 99].

    Each of ``n_tables`` hash functions samples ``bits_per_hash`` fixed
    random bit positions of the item; items sharing all sampled bits in
    some table are bucket-mates and become query candidates.
    """

    def __init__(self, item_bytes: int, n_tables: int = 4,
                 bits_per_hash: int = 12, seed: int = 0):
        if n_tables < 1 or bits_per_hash < 1:
            raise ValueError("need >= 1 table and >= 1 bit per hash")
        self.item_bytes = item_bytes
        self.n_tables = n_tables
        self.bits_per_hash = bits_per_hash
        rng = random.Random(seed)
        total_bits = item_bytes * 8
        self._positions: List[List[int]] = [
            sorted(rng.sample(range(total_bits), bits_per_hash))
            for _ in range(n_tables)
        ]
        self._tables: List[Dict[int, List[int]]] = [
            {} for _ in range(n_tables)]
        self._items: Dict[int, bytes] = {}

    def _key(self, table: int, data: bytes) -> int:
        key = 0
        for i, bit in enumerate(self._positions[table]):
            if data[bit // 8] >> (bit % 8) & 1:
                key |= 1 << i
        return key

    def insert(self, item_id: int, data: bytes) -> None:
        """Index one item (host-side, done at load time)."""
        self._items[item_id] = data
        for t in range(self.n_tables):
            self._tables[t].setdefault(self._key(t, data), []).append(
                item_id)

    def candidates(self, query: bytes) -> List[int]:
        """Bucket-mates of the query across all tables, deduplicated."""
        seen: Dict[int, None] = {}
        for t in range(self.n_tables):
            for item_id in self._tables[t].get(self._key(t, query), []):
                seen.setdefault(item_id, None)
        return list(seen)

    @property
    def n_items(self) -> int:
        return len(self._items)


def make_item_corpus(n_items: int, item_bytes: int, seed: int = 0,
                     n_clusters: int = 4,
                     flip_fraction: float = 0.02) -> Dict[int, bytes]:
    """Synthetic 8KB-item corpus with planted similarity structure.

    Items are noisy copies of ``n_clusters`` random centroids (a small
    fraction of bits flipped), so LSH buckets are meaningful and nearest
    neighbours are well-defined — the paper's image-search stand-in.
    """
    if n_items < 1:
        raise ValueError("need at least one item")
    rng = random.Random(seed)
    centroids = [bytes(rng.randrange(256) for _ in range(item_bytes))
                 for _ in range(n_clusters)]
    corpus = {}
    n_flip = max(1, int(item_bytes * 8 * flip_fraction))
    for item_id in range(n_items):
        base = bytearray(centroids[item_id % n_clusters])
        for bit in rng.sample(range(item_bytes * 8), n_flip):
            base[bit // 8] ^= 1 << (bit % 8)
        corpus[item_id] = bytes(base)
    return corpus


def brute_force_nearest(query: bytes,
                        items: Dict[int, bytes]) -> Tuple[int, int]:
    """Oracle: exact nearest neighbour by exhaustive Hamming scan."""
    best_id, best_dist = -1, None
    for item_id, data in items.items():
        dist = hamming_distance(query, data)
        if best_dist is None or dist < best_dist or (
                dist == best_dist and item_id < best_id):
            best_id, best_dist = item_id, dist
    return best_id, best_dist


class NearestNeighborISP:
    """The accelerated path on one BlueDBM node."""

    def __init__(self, node: BlueDBMNode, n_engines: int = 8,
                 engine_bytes_per_ns: float = 0.4):
        self.node = node
        self.sim = node.sim
        self.n_engines = n_engines
        self.engine_bytes_per_ns = engine_bytes_per_ns
        self._addr_of: Dict[int, PhysAddr] = {}
        self._items: Dict[int, bytes] = {}
        self.index: Optional[LSHIndex] = None

    def load(self, corpus: Dict[int, bytes], index: LSHIndex) -> None:
        """Place items in flash (striped for parallelism) and index them.

        Loading is setup, not the measured experiment, so items go
        straight into the page store.
        """
        geometry = self.node.geometry
        if len(corpus) > geometry.pages_per_node:
            raise ValueError("corpus exceeds node capacity")
        for slot, (item_id, data) in enumerate(sorted(corpus.items())):
            addr = geometry.striped(slot, node=self.node.node_id)
            self.node.device.store.program(addr, data)
            self._addr_of[item_id] = addr
            self._items[item_id] = data
            index.insert(item_id, data)
        self.index = index

    def query(self, query: bytes, candidate_ids: Optional[List[int]] = None):
        """One full query (DES generator) -> (best_id, best_distance).

        Software hashes the query and streams candidate addresses; the
        engines read flash and compare at device bandwidth.
        """
        if candidate_ids is None:
            if self.index is None:
                raise RuntimeError("load() must run before query()")
            candidate_ids = self.index.candidates(query)
        if not candidate_ids:
            return (-1, None)
        # Software setup: ship the query page to the engines over DMA.
        yield self.sim.process(self.node.pcie.host_to_device(len(query)))
        engines = EngineArray([
            HammingEngine(self.sim, query, self.engine_bytes_per_ns,
                          name=f"hamming-{i}")
            for i in range(self.n_engines)])
        best: List[Tuple[int, int]] = []

        def _compare(item_id: int):
            result = yield self.sim.process(
                self.node.isp_read(self._addr_of[item_id]))
            engine = engines.pick()
            dist = yield self.sim.process(engine.run_page(result.data))
            best.append((dist, item_id))

        in_flight = []
        for item_id in candidate_ids:
            in_flight.append(self.sim.process(_compare(item_id)))
            if len(in_flight) >= 4 * self.n_engines:
                yield in_flight.pop(0)
        for proc in in_flight:
            yield proc
        dist, item_id = min(best)
        return (item_id, dist)

    def throughput_run(self, query: bytes, n_comparisons: int,
                       candidate_ids: Optional[Sequence[int]] = None):
        """Stream ``n_comparisons`` distance calculations (DES generator).

        Returns comparisons/second.  Mirrors the paper's methodology:
        "we simply send out a million nearest-neighbor searches for the
        same query" — addresses cycle through the bucket.
        """
        if n_comparisons < 1:
            raise ValueError("need at least one comparison")
        ids = list(candidate_ids if candidate_ids is not None
                   else self._addr_of)
        engines = EngineArray([
            HammingEngine(self.sim, query, self.engine_bytes_per_ns,
                          name=f"hamming-{i}")
            for i in range(self.n_engines)])
        start = self.sim.now
        done = []

        def _compare(item_id: int):
            result = yield self.sim.process(
                self.node.isp_read(self._addr_of[item_id]))
            engine = engines.pick()
            yield self.sim.process(engine.run_page(result.data))
            done.append(self.sim.now)

        # Deep pipelining: the bandwidth-delay product of the flash path
        # (~260K pages/s x ~100 us) needs well over a hundred requests in
        # flight; the tagged controller supports exactly this.
        in_flight = []
        for i in range(n_comparisons):
            in_flight.append(self.sim.process(
                _compare(ids[i % len(ids)])))
            if len(in_flight) >= 32 * self.n_engines:
                yield in_flight.pop(0)
        for proc in in_flight:
            yield proc
        elapsed = max(done) - start
        return n_comparisons / units.to_s(elapsed)


class TieredPageStore:
    """Host DRAM with a fraction of accesses spilling to a slower tier.

    Models the "DRAM + 10% Flash" / "DRAM + 5% Disk" configurations of
    Figure 17.  Misses serialize on a narrow paging path (the kernel
    fault/IO path), which is what makes even small miss fractions
    catastrophic — the paper's RAMCloud cliff.
    """

    def __init__(self, sim: Simulator, dram: DRAMStore, secondary,
                 miss_fraction: float, seed: int = 0,
                 paging_width: int = 2):
        if not 0.0 <= miss_fraction <= 1.0:
            raise ValueError("miss_fraction must be in [0, 1]")
        self.sim = sim
        self.dram = dram
        self.secondary = secondary
        self.miss_fraction = miss_fraction
        self.rng = random.Random(seed)
        self._paging = Resource(sim, capacity=paging_width,
                                name="paging-path")
        self.misses = 0
        self.hits = 0

    def read(self, page: int):
        """Read one page (DES generator), maybe via the slow tier."""
        if self.miss_fraction > 0 and self.rng.random() < self.miss_fraction:
            self.misses += 1
            yield self._paging.request()
            try:
                data = yield from self.secondary.read(page)
            finally:
                self._paging.release()
            return data
        self.hits += 1
        data = yield from self.dram.read(page)
        return data


class SoftwareNN:
    """Multithreaded software nearest-neighbour runner.

    ``read_fn(page) -> generator`` abstracts the storage backend: host
    DRAM, :class:`TieredPageStore`, commodity SSD, or BlueDBM through the
    host interface.  Each thread loops: fetch page, compare on a core.
    """

    #: Host software Hamming comparison cost for an 8KB item (one core).
    #: Calibrated so ~4 host threads match one BlueDBM node (Figure 16).
    COMPARE_NS_PER_8K = 12_500

    def __init__(self, sim: Simulator, cpu: HostCPU,
                 read_fn: Callable[[int], Iterable],
                 compare_ns: Optional[int] = None):
        self.sim = sim
        self.cpu = cpu
        self.read_fn = read_fn
        self.compare_ns = (self.COMPARE_NS_PER_8K if compare_ns is None
                           else compare_ns)

    def run(self, query: bytes, pages: Sequence[int], threads: int,
            n_comparisons: int):
        """(DES generator) -> comparisons per second.

        ``pages`` is the candidate working set; threads cycle over it
        until ``n_comparisons`` are done.
        """
        if threads < 1:
            raise ValueError("need at least one thread")
        if n_comparisons < 1:
            raise ValueError("need at least one comparison")
        start = self.sim.now
        remaining = [n_comparisons]
        finish_times = []

        def worker(offset: int):
            i = offset
            while remaining[0] > 0:
                remaining[0] -= 1
                page = pages[i % len(pages)]
                i += threads
                data = yield from self.read_fn(page)
                yield self.sim.process(self.cpu.compute(self.compare_ns))
                # Functional: the comparison really happens.
                hamming_distance(query[:64], data[:64])
            finish_times.append(self.sim.now)

        procs = [self.sim.process(worker(t)) for t in range(threads)]
        for proc in procs:
            yield proc
        elapsed = max(finish_times) - start
        return n_comparisons / units.to_s(elapsed)
