"""SQL-style table scans: in-store filtering vs host scan.

The Section 8 extension built out: a table lives in flash through the
file system; a query is a predicate + projection.  Two execution paths:

* **offloaded** — the host ships the predicate to in-store
  :class:`~repro.isp.filter.FilterEngine` banks; pages stream from flash
  into the engines, and only selected/projected rows cross PCIe.  Result
  traffic scales with *selectivity*, not table size.
* **host scan** — every page crosses PCIe and the host CPU evaluates the
  predicate (a per-row software cost), the classic row-store scan.

Both paths return the same oracle-verified rows.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.node import BlueDBMNode
from ..isp.filter import FilterEngine, Predicate, Schema
from ..sim import Store, units

__all__ = ["FlashTable", "TableScan", "make_orders_table"]

#: Host cost to decode + evaluate one row in software (tight C loop).
HOST_NS_PER_ROW = 150


def make_orders_table(n_rows: int, seed: int = 0
                      ) -> Tuple[Schema, List[Dict[str, Any]]]:
    """A synthetic orders table (the kind of scan the intro motivates)."""
    if n_rows < 1:
        raise ValueError("need at least one row")
    schema = Schema([
        ("order_id", "int64"),
        ("customer", "int64"),
        ("amount", "int64"),
        ("region", "str8"),
        ("status", "str8"),
    ])
    rng = random.Random(seed)
    regions = ["north", "south", "east", "west"]
    statuses = ["open", "shipped", "returned"]
    rows = [{
        "order_id": i,
        "customer": rng.randrange(1000),
        "amount": rng.randrange(1, 10_000),
        "region": regions[rng.randrange(4)],
        "status": statuses[rng.randrange(3)],
    } for i in range(n_rows)]
    return schema, rows


class FlashTable:
    """A row table stored page-packed through the node's file system."""

    def __init__(self, node: BlueDBMNode, name: str, schema: Schema):
        self.node = node
        self.sim = node.sim
        self.name = name
        self.schema = schema
        self.n_rows = 0

    def load(self, rows: Sequence[Dict[str, Any]]):
        """Write rows into flash via RFS (DES generator)."""
        page_size = self.node.geometry.page_size
        per_page = self.schema.rows_per_page(page_size - 4)
        pages = []
        for start in range(0, len(rows), per_page):
            pages.append(self.schema.pack_page(
                rows[start:start + per_page], page_size - 4))
        blob = b"".join(page.ljust(page_size, b"\x00") for page in pages)
        yield from self.node.fs.write_file(self.name, blob)
        self.n_rows = len(rows)

    @property
    def n_pages(self) -> int:
        return self.node.fs.stat(self.name).num_pages


class TableScan:
    """Executes predicate scans over a :class:`FlashTable`."""

    def __init__(self, table: FlashTable, n_engines: int = 8,
                 engine_bytes_per_ns: float = 0.4):
        self.table = table
        self.sim = table.sim
        self.n_engines = n_engines
        self.engine_bytes_per_ns = engine_bytes_per_ns

    # -- offloaded path ----------------------------------------------------
    def offloaded(self, predicate: Predicate,
                  project: Optional[Sequence[str]] = None):
        """(DES generator) -> (rows, stats dict).

        Software ships the predicate, streams physical addresses; engine
        banks filter at flash speed; only results return over PCIe.
        """
        node = self.table.node
        # Ship the compiled predicate + projection list to the engines.
        yield self.sim.process(
            node.cpu.compute(node.host_config.software_request_ns))
        yield self.sim.process(node.pcie.host_to_device(256))
        extents = node.fs.physical_extents(self.table.name)
        handle = node.flash_server.register_file(
            f"{self.table.name}-scan", extents)

        engines = [FilterEngine(self.sim, self.table.schema, predicate,
                                project, self.engine_bytes_per_ns,
                                name=f"filter-{i}")
                   for i in range(self.n_engines)]
        t0 = self.sim.now
        results: List[Dict] = []
        result_bytes = [0]
        procs = []
        per = max(1, -(-len(extents) // self.n_engines))

        def segment(k: int, engine: FilterEngine):
            lo, hi = k * per, min(len(extents), (k + 1) * per)
            if lo >= hi:
                return
            out = Store(self.sim, capacity=2)
            self.sim.process(node.flash_server.stream_file(
                handle.handle_id, out, offsets=range(lo, hi)))
            for _ in range(hi - lo):
                page = yield out.get()
                rows = yield self.sim.process(
                    engine.run_page(page.data, None))
                if rows:
                    result_bytes[0] += engine.result_bytes(rows)
                    results.extend(rows)

        for k, engine in enumerate(engines):
            procs.append(self.sim.process(segment(k, engine)))
        for proc in procs:
            yield proc
        # Ship the (small) result set up to the host.
        yield self.sim.process(
            node.pcie.device_to_host(max(1, result_bytes[0])))
        elapsed = self.sim.now - t0
        stats = self._stats(elapsed, result_bytes[0], len(results))
        return self._ordered(results, project), stats

    # -- host scan path ---------------------------------------------------------
    def host_scan(self, predicate: Predicate,
                  project: Optional[Sequence[str]] = None,
                  outstanding: int = 64):
        """(DES generator) -> (rows, stats dict).

        Every page crosses PCIe; the host CPU decodes and filters.
        Reads are pipelined (async I/O) so the path is bandwidth-bound,
        the fairest software comparison.
        """
        node = self.table.node
        schema = self.table.schema
        extents = node.fs.physical_extents(self.table.name)
        t0 = self.sim.now
        results: List[Dict] = []
        pending = []

        def one(addr):
            data = yield self.sim.process(
                node.host_read(addr, software_path=False))
            rows = schema.unpack_page(data)
            yield self.sim.process(
                node.cpu.compute(HOST_NS_PER_ROW * max(1, len(rows))))
            for row in rows:
                if predicate.matches(row):
                    if project is not None:
                        row = {k: row[k] for k in project}
                    results.append(row)

        for addr in extents:
            pending.append(self.sim.process(one(addr)))
            if len(pending) >= outstanding:
                yield pending.pop(0)
        for proc in pending:
            yield proc
        elapsed = self.sim.now - t0
        page_bytes = len(extents) * node.geometry.page_size
        stats = self._stats(elapsed, page_bytes, len(results))
        return self._ordered(results, project), stats

    # -- helpers -------------------------------------------------------------
    def _stats(self, elapsed_ns: int, wire_bytes: int,
               n_rows: int) -> Dict[str, float]:
        scanned = self.table.n_pages * self.table.node.geometry.page_size
        return {
            "elapsed_ns": elapsed_ns,
            "scan_gbs": units.bandwidth_gbytes(scanned, elapsed_ns),
            "result_wire_bytes": wire_bytes,
            "rows_returned": n_rows,
        }

    @staticmethod
    def _ordered(rows: List[Dict], project) -> List[Dict]:
        key_field = None
        if rows:
            key_field = ("order_id" if "order_id" in rows[0]
                         else sorted(rows[0])[0])
        return sorted(rows, key=lambda r: (r[key_field],
                                           tuple(sorted(r.items()))))
