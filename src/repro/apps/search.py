"""String search: in-store MP engines vs software grep (Section 7.3).

The accelerated path is "fully integrated with the file system, flash
controller and application software": software ships the needle and MP
constants to the engines, asks the file system for the haystack's
physical addresses, and streams them to the accelerator; engines divide
the haystack into contiguous segments (with one page of overlap so
boundary-spanning matches are kept) and return only match positions.

The baselines run grep-style software scans over the commodity SSD and
the hard disk, paying host CPU per byte — the Figure 21 comparison.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.node import BlueDBMNode
from ..flash import PhysAddr
from ..isp.mp import MPEngine, MPStream, failure_function, mp_search
from ..sim import LatencyHistogram, Simulator, Store, units

__all__ = ["make_text_corpus", "StringSearchISP", "SoftwareGrep"]

_WORDS = (b"flash storage analytics query engine network latency "
          b"bandwidth accelerator processor data page block controller "
          b"cluster node memory system hardware software").split()


def make_text_corpus(total_bytes: int, needle: bytes, n_matches: int,
                     seed: int = 0) -> Tuple[bytes, List[int]]:
    """Synthetic haystack with ``needle`` planted ``n_matches`` times.

    Returns (corpus, expected match end-offsets) where offsets are
    verified against the pure-software MP oracle, so tests can trust
    them even if random text accidentally contains the needle.
    """
    if total_bytes < len(needle) * (n_matches + 1):
        raise ValueError("corpus too small for requested matches")
    rng = random.Random(seed)
    chunks: List[bytes] = []
    size = 0
    while size < total_bytes:
        word = _WORDS[rng.randrange(len(_WORDS))]
        chunks.append(word + b" ")
        size += len(word) + 1
    corpus = bytearray(b"".join(chunks)[:total_bytes])
    stride = total_bytes // (n_matches + 1)
    for i in range(1, n_matches + 1):
        pos = i * stride
        corpus[pos:pos + len(needle)] = needle
    expected, _ = mp_search(bytes(corpus), needle)
    return bytes(corpus), expected


class StringSearchISP:
    """Hardware-accelerated exact-match search on one node."""

    def __init__(self, node: BlueDBMNode, engines_per_bus: int = 4,
                 engine_bytes_per_ns: float = 0.05):
        self.node = node
        self.sim = node.sim
        self.engines_per_bus = engines_per_bus
        self.engine_bytes_per_ns = engine_bytes_per_ns
        self._file: Optional[str] = None
        self._corpus_pages = 0

    @property
    def n_engines(self) -> int:
        geometry = self.node.geometry
        return (self.engines_per_bus * geometry.buses_per_card
                * geometry.cards_per_node)

    def setup(self, corpus: bytes, filename: str = "haystack"):
        """Store the haystack through the file system (DES generator)."""
        yield from self.node.fs.write_file(filename, corpus)
        self._file = filename
        self._corpus_pages = self.node.fs.stat(filename).num_pages

    def run(self, needle: bytes):
        """(DES generator) -> (match_offsets, search_gbs, cpu_util).

        Software cost is setup only: ship needle + MP constants, query
        the file system for physical locations, stream addresses.  Then
        engines pull pages at flash speed; only matches return.
        """
        if self._file is None:
            raise RuntimeError("setup() must run before run()")
        node = self.node
        page_size = node.geometry.page_size
        # (1) software setup: needle + MP constants over DMA + extents
        # query; one short burst of host work.
        setup_bytes = len(needle) + 4 * len(needle)  # pattern + constants
        yield self.sim.process(
            node.cpu.compute(node.host_config.software_request_ns))
        yield self.sim.process(node.pcie.host_to_device(setup_bytes))
        extents = node.fs.physical_extents(self._file)
        handle = node.flash_server.register_file(self._file, extents)

        n_engines = min(self.n_engines, max(1, len(extents)))
        # Contiguous segments with one page of overlap at each boundary.
        bounds = [round(i * len(extents) / n_engines)
                  for i in range(n_engines + 1)]
        # Stagger segment starts across buses: with bus-fastest striping,
        # page p lives on bus p mod N, so snapping segment i's start to
        # p === i (mod N) keeps every bus busy from the first request
        # instead of convoying all engines onto one bus.
        n_buses = node.geometry.buses_per_card
        for i in range(1, n_engines):
            if bounds[i + 1] - bounds[i] > n_buses:
                bounds[i] += (i - bounds[i]) % n_buses
        t0 = self.sim.now
        cpu_busy_before = node.cpu.tracker.busy_ns
        all_matches: List[int] = []
        segment_procs = []

        def segment(index: int, engine: MPEngine):
            lo, hi = bounds[index], bounds[index + 1]
            if lo >= hi:
                return
            start_page = max(0, lo - 1) if index > 0 else lo
            stream = MPStream()
            stream.offset = start_page * page_size
            segment_floor = lo * page_size
            # The Flash Server streams the segment through its page
            # buffers while the engine scans: reads and compute fully
            # overlap, which is how the engines reach ~92% of the
            # board's sequential bandwidth.
            pages = Store(self.sim, capacity=2)
            self.sim.process(node.flash_server.stream_file(
                handle.handle_id, pages,
                offsets=range(start_page, hi)))
            for _ in range(hi - start_page):
                result = yield pages.get()
                yield self.sim.process(
                    engine.run_page(result.data, stream))
            # Drop overlap-region duplicates owned by the previous segment.
            all_matches.extend(m for m in stream.matches
                               if m >= segment_floor or index == 0)

        for i in range(n_engines):
            engine = MPEngine(self.sim, needle, self.engine_bytes_per_ns,
                              name=f"mp-{i}")
            segment_procs.append(self.sim.process(segment(i, engine)))
        for proc in segment_procs:
            yield proc
        elapsed = self.sim.now - t0
        searched_bytes = len(extents) * page_size
        gbs = units.bandwidth_gbytes(searched_bytes, elapsed)
        cpu_busy = node.cpu.tracker.busy_ns - cpu_busy_before
        cpu_util = cpu_busy / elapsed if elapsed else 0.0
        return sorted(set(all_matches)), gbs, cpu_util


class SoftwareGrep:
    """grep-style software scan over a page-addressed device.

    Reads the haystack sequentially and scans on a host core; this is
    the real MP algorithm too, but every byte crosses the device bus and
    burns host CPU (``scan_ns_per_byte``, default ~1.1 ns/B — a fast
    string-search inner loop of the era).
    """

    def __init__(self, sim: Simulator, cpu, device,
                 scan_ns_per_byte: float = 1.08):
        self.sim = sim
        self.cpu = cpu
        self.device = device
        self.scan_ns_per_byte = scan_ns_per_byte
        #: Per-page device read latency (issue -> data back), across
        #: every :meth:`run` — the mean/p99 the Figure 21 table reports
        #: for the software rows.
        self.page_latency = LatencyHistogram("grep-page-read")

    def load(self, corpus: bytes, page_size: int = 8192) -> int:
        """Lay the corpus out sequentially on the device; -> page count."""
        n_pages = (len(corpus) + page_size - 1) // page_size
        for page in range(n_pages):
            self.device.store(
                page, corpus[page * page_size:(page + 1) * page_size])
        return n_pages

    def run(self, needle: bytes, n_pages: int, page_size: int = 8192,
            readahead: int = 8):
        """(DES generator) -> (match_offsets, scan_gbs, cpu_util).

        ``readahead`` models the kernel's sequential readahead window:
        device reads overlap the CPU scan, so throughput settles at
        min(device rate, scan rate) — I/O bound on SSD at ~65 % of one
        core, exactly Figure 21's software rows.
        """
        if readahead < 1:
            raise ValueError("readahead must be >= 1")
        fail = failure_function(needle)
        stream_state = 0
        matches: List[int] = []
        t0 = self.sim.now
        cpu_busy_before = self.cpu.tracker.busy_ns

        def _read(page: int):
            issued = self.sim.now
            data = yield from self.device.read(page)
            self.page_latency.record(self.sim.now - issued)
            return data

        pending = []
        next_issue = 0
        for page in range(n_pages):
            while next_issue < n_pages and len(pending) < readahead:
                pending.append(self.sim.process(_read(next_issue)))
                next_issue += 1
            data = yield pending.pop(0)
            scan_ns = int(len(data) * self.scan_ns_per_byte)
            yield self.sim.process(self.cpu.compute(scan_ns))
            found, stream_state = mp_search(
                data, needle, fail, state=stream_state,
                base_offset=page * page_size)
            matches.extend(found)
        elapsed = self.sim.now - t0
        gbs = units.bandwidth_gbytes(n_pages * page_size, elapsed)
        cpu_busy = self.cpu.tracker.busy_ns - cpu_busy_before
        cpu_util = cpu_busy / elapsed if elapsed else 0.0
        return matches, gbs, cpu_util
