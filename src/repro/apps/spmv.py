"""Sparse matrix-vector multiply: in-store vs host execution.

The matrix streams from flash; the question is where the multiply
happens.  In-store, only the dense result vector crosses PCIe (8 bytes
per row); on the host, every matrix page does.  Both paths produce
``A @ x`` to float64 precision, checked against the numpy oracle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.node import BlueDBMNode
from ..isp.spmv import SpMVEngine, decode_rows, pack_csr_pages
from ..sim import Store, units

__all__ = ["SpMVApp", "make_sparse_matrix"]

#: Host cost per nonzero (load, multiply, accumulate — pointer-chasing
#: CSR code is memory-latency bound).
HOST_NS_PER_NNZ = 12


def make_sparse_matrix(n_rows: int, n_cols: int, density: float = 0.05,
                       seed: int = 0) -> np.ndarray:
    """A reproducible random sparse matrix as a dense float64 array."""
    if n_rows < 1 or n_cols < 1:
        raise ValueError("matrix must be non-empty")
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    matrix = rng.random((n_rows, n_cols))
    mask = rng.random((n_rows, n_cols)) < density
    return np.where(mask, matrix, 0.0)


class SpMVApp:
    """y = A @ x with A resident in one node's flash."""

    def __init__(self, node: BlueDBMNode, n_engines: int = 8,
                 engine_bytes_per_ns: float = 0.4):
        self.node = node
        self.sim = node.sim
        self.n_engines = n_engines
        self.engine_bytes_per_ns = engine_bytes_per_ns
        self.n_rows = 0
        self.nnz = 0

    def load(self, matrix: np.ndarray):
        """Pack the matrix into CSR pages and write via RFS (generator)."""
        page_size = self.node.geometry.page_size
        pages = pack_csr_pages(matrix, page_size)
        blob = b"".join(p.ljust(page_size, b"\x00") for p in pages)
        yield from self.node.fs.write_file("matrix.csr", blob)
        self.n_rows = matrix.shape[0]
        self.nnz = int(np.count_nonzero(matrix))

    def run_isp(self, x: np.ndarray):
        """(DES generator) -> (y, stats): multiply inside storage."""
        node = self.node
        # Ship the dense vector into on-board DRAM once.
        x = np.asarray(x, dtype=np.float64)
        yield self.sim.process(node.pcie.host_to_device(x.nbytes))
        extents = node.fs.physical_extents("matrix.csr")
        handle = node.flash_server.register_file("spmv", extents)
        engines = [SpMVEngine(self.sim, x, self.engine_bytes_per_ns,
                              name=f"spmv-{i}")
                   for i in range(self.n_engines)]
        y = np.zeros(self.n_rows)
        t0 = self.sim.now
        procs = []
        per = max(1, -(-len(extents) // self.n_engines))

        def segment(k: int, engine: SpMVEngine):
            lo, hi = k * per, min(len(extents), (k + 1) * per)
            if lo >= hi:
                return
            out = Store(self.sim, capacity=2)
            self.sim.process(node.flash_server.stream_file(
                handle.handle_id, out, offsets=range(lo, hi)))
            for _ in range(hi - lo):
                page = yield out.get()
                partial = yield self.sim.process(
                    engine.run_page(page.data))
                for row, value in partial.items():
                    y[row] += value

        for k, engine in enumerate(engines):
            procs.append(self.sim.process(segment(k, engine)))
        for proc in procs:
            yield proc
        # Only the dense result crosses PCIe.
        yield self.sim.process(node.pcie.device_to_host(y.nbytes))
        elapsed = self.sim.now - t0
        return y, self._stats(elapsed, len(extents))

    def run_host(self, x: np.ndarray, outstanding: int = 64):
        """(DES generator) -> (y, stats): pages to host, multiply there."""
        node = self.node
        x = np.asarray(x, dtype=np.float64)
        extents = node.fs.physical_extents("matrix.csr")
        y = np.zeros(self.n_rows)
        t0 = self.sim.now
        pending = []

        def one(addr):
            data = yield self.sim.process(
                node.host_read(addr, software_path=False))
            rows = decode_rows(data)
            nnz = sum(len(entries) for _, entries in rows)
            yield self.sim.process(
                node.cpu.compute(HOST_NS_PER_NNZ * max(1, nnz)))
            for row_id, entries in rows:
                acc = 0.0
                for column, value in entries:
                    acc += value * x[column]
                if entries:
                    y[row_id] += acc

        for addr in extents:
            pending.append(self.sim.process(one(addr)))
            if len(pending) >= outstanding:
                yield pending.pop(0)
        for proc in pending:
            yield proc
        elapsed = self.sim.now - t0
        return y, self._stats(elapsed, len(extents))

    def _stats(self, elapsed_ns: int, n_pages: int) -> Dict[str, float]:
        scanned = n_pages * self.node.geometry.page_size
        return {
            "elapsed_ns": elapsed_ns,
            "stream_gbs": units.bandwidth_gbytes(scanned, elapsed_ns),
            "nnz_per_sec": self.nnz / units.to_s(elapsed_ns)
            if elapsed_ns else 0.0,
        }
