"""Analysis utilities: parameter sweeps and shared workload scenarios."""

from .qos import ADMISSION_SLOTS, QOS_POLICIES, QOS_TENANTS, run_policy
from .sweep import SweepResult, cross_sweep, sweep

__all__ = ["SweepResult", "sweep", "cross_sweep",
           "QOS_POLICIES", "QOS_TENANTS", "ADMISSION_SLOTS", "run_policy"]
