"""Analysis utilities: parameter sweeps over the appliance model."""

from .sweep import SweepResult, cross_sweep, sweep

__all__ = ["SweepResult", "sweep", "cross_sweep"]
