"""The multi-tenant QoS contention scenario, shared by benchmark and example.

One node, three tenants on its splitter — local in-store processors
(``isp``), host software paying the full syscall/RPC/PCIe path
(``host``), and the remote-request network service (``net``) as a 12x
aggressor — with card admission bounded so the scheduling policy, not
the physical tag pool, decides who runs.  ``run_policy`` executes the
closed-loop workload under one policy and returns the populated
:class:`~repro.io.tracer.RequestTracer`.
"""

from __future__ import annotations

import random

from ..core.node import BlueDBMNode
from ..flash import FlashGeometry
from ..io import RequestTracer
from ..sim import Simulator, units

__all__ = ["QOS_POLICIES", "QOS_TENANTS", "ADMISSION_SLOTS", "run_policy"]

QOS_POLICIES = ["fifo", "rr", "priority", "edf"]

#: tenant -> (closed-loop workers, splitter-port QoS kwargs).
QOS_TENANTS = {
    "isp": (4, dict(max_in_flight=8, priority=2,
                    deadline_ns=500 * units.US)),
    "host": (4, dict(max_in_flight=8, priority=1,
                     deadline_ns=2000 * units.US)),
    "net": (48, dict(max_in_flight=64, priority=0,
                     deadline_ns=20_000 * units.US)),
}

#: Outstanding commands allowed across all ports — well below the
#: card's 256 physical tags, so the policy arbitrates under contention.
ADMISSION_SLOTS = 8

#: Striped page indices the tenants draw addresses from (clamped to the
#: geometry's capacity, so small test geometries work too).
ADDR_SPACE = 4096


def run_policy(policy: str, geometry: FlashGeometry, duration_ns: int,
               seed: int = 1234) -> RequestTracer:
    """Run the three-tenant contention workload under ``policy``."""
    addr_space = min(ADDR_SPACE, geometry.pages_per_node)
    sim = Simulator()
    tracer = RequestTracer(sim)
    node = BlueDBMNode(sim, geometry=geometry,
                       splitter_policy=policy,
                       splitter_in_flight=ADMISSION_SLOTS,
                       tracer=tracer,
                       port_qos={tenant: kwargs for tenant, (_, kwargs)
                                 in QOS_TENANTS.items()})
    rng = random.Random(seed)
    reads = {"isp": node.isp_read, "host": node.host_read,
             "net": node.net_read}

    def worker(sim, read):
        while sim.now < duration_ns:
            addr = geometry.striped(rng.randrange(addr_space))
            yield sim.process(read(addr))

    for tenant, (workers, _) in QOS_TENANTS.items():
        for _ in range(workers):
            sim.process(worker(sim, reads[tenant]), name=f"{tenant}-worker")
    sim.run()
    return tracer
