"""The multi-tenant QoS contention scenario, shared by benchmark,
example and the ``qos`` registry experiment.

One node, three tenants on its splitter — local in-store processors
(``isp``), host software paying the full syscall/RPC/PCIe path
(``host``), and the remote-request network service (``net``) as a 12x
aggressor — with card admission bounded so the scheduling policy, not
the physical tag pool, decides who runs.  All six disciplines run over
the same mix: the victims carry wfq weights, the aggressor carries a
token-bucket rate cap, and the four policies that use neither ignore
both.

The scenario is pure data now: :func:`qos_scenario` builds the
:class:`~repro.api.ScenarioSpec` (tenant mix, per-tenant QoS
parameters, shared-RNG closed loop, full drain) and
:func:`run_policy` executes it through a :class:`~repro.api.Session`,
returning the populated :class:`~repro.io.tracer.RequestTracer` as
before.
"""

from __future__ import annotations

from ..api import ScenarioSpec, Session, TenantSpec, WorkloadSpec
from ..flash import FlashGeometry
from ..io import RequestTracer
from ..sim import units

__all__ = ["QOS_POLICIES", "QOS_TENANTS", "ADMISSION_SLOTS",
           "qos_scenario", "run_policy"]

#: All six scheduling disciplines, in the order the tables report them.
QOS_POLICIES = ["fifo", "rr", "wfq", "token-bucket", "priority", "edf"]

#: tenant -> (closed-loop workers, splitter-port QoS kwargs).
#: Kept in the historical shape for the benchmark's iteration order.
#: ``weight`` feeds the wfq policy (victims outweigh the aggressor);
#: the aggressor's ``rate_mbps``/``burst_kb`` feed token-bucket; the
#: other four policies ignore both, so one mix runs under all six.
QOS_TENANTS = {
    "isp": (4, dict(max_in_flight=8, priority=2,
                    deadline_ns=500 * units.US, weight=3.0)),
    "host": (4, dict(max_in_flight=8, priority=1,
                     deadline_ns=2000 * units.US, weight=2.0)),
    "net": (48, dict(max_in_flight=64, priority=0,
                     deadline_ns=20_000 * units.US,
                     rate_mbps=300.0, burst_kb=256.0)),
}

#: Outstanding commands allowed across all ports — well below the
#: card's 256 physical tags, so the policy arbitrates under contention.
ADMISSION_SLOTS = 8

#: Striped page indices the tenants draw addresses from (clamped to the
#: geometry's capacity, so small test geometries work too).
ADDR_SPACE = 4096


def qos_scenario(policy: str, geometry: FlashGeometry, duration_ns: int,
                 seed: int = 1234) -> ScenarioSpec:
    """The three-tenant contention scenario under ``policy``, as data."""
    tenants = tuple(
        TenantSpec(name=name, access=name,
                   workers=workers, rng="shared",
                   addr_space=ADDR_SPACE, **qos_kwargs)
        for name, (workers, qos_kwargs) in QOS_TENANTS.items())
    return ScenarioSpec(
        name=f"qos-{policy}",
        geometry=geometry,
        splitter_policy=policy,
        splitter_in_flight=ADMISSION_SLOTS,
        workload=WorkloadSpec(duration_ns=duration_ns, tenants=tenants,
                              seed=seed, drain=True))


def run_policy(policy: str, geometry: FlashGeometry, duration_ns: int,
               seed: int = 1234) -> RequestTracer:
    """Run the three-tenant contention workload under ``policy``."""
    session = Session(qos_scenario(policy, geometry, duration_ns, seed))
    session.run()
    return session.tracer
