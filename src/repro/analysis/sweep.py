"""Parameter sweeps: run an experiment across a parameter grid.

The benchmarks reproduce the paper's fixed configurations; this utility
is for the follow-on questions a user of the appliance model actually
asks — "what if links were 25 Gbps?", "how many lanes until the flash
is the bottleneck?", "where does PCIe stop mattering?".  A sweep runs
an experiment factory once per parameter value (each in a fresh
simulator, so runs are independent and deterministic) and collects a
result series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence

__all__ = ["SweepResult", "sweep", "cross_sweep"]


@dataclass
class SweepResult:
    """One parameter axis and the measured series along it."""

    parameter: str
    values: List[Any]
    results: List[Any]

    def __post_init__(self):
        if len(self.values) != len(self.results):
            raise ValueError("values/results length mismatch")

    def as_dict(self) -> Dict[Any, Any]:
        return dict(zip(self.values, self.results))

    def series(self, key: str) -> List[Any]:
        """Extract one field when results are dictionaries."""
        return [r[key] for r in self.results]

    def argmax(self):
        """Parameter value with the largest (scalar) result."""
        best = max(range(len(self.results)),
                   key=lambda i: self.results[i])
        return self.values[best]

    def is_monotone_increasing(self, tolerance: float = 0.0) -> bool:
        """True if the (scalar) series never drops by more than
        ``tolerance`` (relative)."""
        for a, b in zip(self.results, self.results[1:]):
            if b < a * (1.0 - tolerance):
                return False
        return True


def sweep(parameter: str, values: Sequence[Any],
          experiment: Callable[[Any], Any]) -> SweepResult:
    """Run ``experiment(value)`` for each value; collect results.

    The experiment owns simulator construction so every point is an
    independent, reproducible run.
    """
    values = list(values)
    if not values:
        raise ValueError("empty sweep")
    return SweepResult(parameter, values,
                       [experiment(v) for v in values])


def cross_sweep(param_a: str, values_a: Sequence[Any],
                param_b: str, values_b: Sequence[Any],
                experiment: Callable[[Any, Any], Any]
                ) -> Dict[Any, SweepResult]:
    """2-D sweep: one :class:`SweepResult` over ``param_b`` per value of
    ``param_a``."""
    values_a, values_b = list(values_a), list(values_b)
    if not values_a or not values_b:
        raise ValueError("empty sweep axis")
    return {
        a: SweepResult(param_b, values_b,
                       [experiment(a, b) for b in values_b])
        for a in values_a
    }
