"""Hard disk baseline.

Figures 17 and 21 compare against spinning disks: "DRAM + 5% Disk"
collapses nearest-neighbour throughput, and grep on HDD is I/O bound at
~1/7.5 of the in-store engine's 1.1 GB/s.  The model is the classic
seek + rotate + transfer decomposition with a single actuator: random
page reads pay ~12 ms of mechanical positioning; sequential runs stream
at the platter rate.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import BandwidthMeter, Counter, Resource, Simulator, units

__all__ = ["HardDisk"]


class HardDisk:
    """A 7200-RPM-class disk with one head assembly."""

    def __init__(self, sim: Simulator, page_size: int = 8192,
                 seek_ns: int = 8 * units.MS,
                 rotational_ns: int = 4 * units.MS,
                 transfer_gbs: float = 0.15):
        if transfer_gbs <= 0:
            raise ValueError("transfer rate must be positive")
        self.sim = sim
        self.page_size = page_size
        self.seek_ns = seek_ns
        self.rotational_ns = rotational_ns
        self.transfer_gbs = transfer_gbs
        self._actuator = Resource(sim, capacity=1, name="hdd-actuator")
        self._pages: Dict[int, bytes] = {}
        self._head_at: Optional[int] = None
        self.reads = Counter("hdd-reads")
        self.seeks = Counter("hdd-seeks")
        self.meter = BandwidthMeter(sim, "hdd")

    def store(self, page: int, data: bytes) -> None:
        """Populate a page without simulated time (test/bench setup)."""
        if len(data) > self.page_size:
            raise ValueError("data exceeds page size")
        self._pages[page] = data + b"\x00" * (self.page_size - len(data))

    def read(self, page: int):
        """Read one page -> bytes (DES generator).

        A page adjacent to the head streams; anything else seeks.
        """
        if page < 0:
            raise ValueError(f"negative page {page}")
        yield self._actuator.request()
        try:
            if self._head_at is None or page != self._head_at + 1:
                self.seeks.add()
                yield self.sim.timeout(self.seek_ns + self.rotational_ns)
            self._head_at = page
            self.meter.record(0)
            yield self.sim.timeout(
                units.transfer_ns(self.page_size, self.transfer_gbs))
            self.meter.record(self.page_size)
        finally:
            self._actuator.release()
        self.reads.add()
        return self._pages.get(page, b"\x00" * self.page_size)

    def write(self, page: int, data: bytes):
        """Write one page (DES generator); same mechanics as read."""
        if len(data) > self.page_size:
            raise ValueError("data exceeds page size")
        yield self._actuator.request()
        try:
            if self._head_at is None or page != self._head_at + 1:
                self.seeks.add()
                yield self.sim.timeout(self.seek_ns + self.rotational_ns)
            self._head_at = page
            yield self.sim.timeout(
                units.transfer_ns(self.page_size, self.transfer_gbs))
        finally:
            self._actuator.release()
        self.store(page, data)
