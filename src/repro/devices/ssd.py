"""Off-the-shelf commodity SSD baseline (Sections 5, 7.1).

The paper compares against "a commercially available M.2 mPCIe SSD, whose
performance, for 8KB accesses, was limited to 600MB/s", and observes in
Figure 18 that its *random* performance is poor while artificially
sequential access "improved dramatically, sometimes matching throttled
BlueDBM.  This suggests that the Off-the-shelf SSD may be optimized for
sequential accesses."

The model captures exactly that asymmetry: a sequential-detecting
prefetcher serves runs at the device's full 600 MB/s, while random pages
pay a flash translation + mapping penalty that roughly halves sustained
throughput; a bounded NVMe-style queue limits parallelism.  Payloads are
real bytes so applications can run against it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from ..sim import BandwidthMeter, Counter, Resource, Simulator, units

__all__ = ["CommoditySSD"]


class CommoditySSD:
    """A block-addressed commodity SSD with hidden internal management."""

    def __init__(self, sim: Simulator, page_size: int = 8192,
                 seq_gbs: float = 0.6, rand_gbs: float = 0.3,
                 latency_ns: int = 120 * units.US, queue_depth: int = 32):
        if seq_gbs <= 0 or rand_gbs <= 0:
            raise ValueError("bandwidths must be positive")
        if rand_gbs > seq_gbs:
            raise ValueError("random rate cannot exceed sequential rate")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.sim = sim
        self.page_size = page_size
        self.seq_gbs = seq_gbs
        self.rand_gbs = rand_gbs
        self.latency_ns = latency_ns
        self._queue = Resource(sim, capacity=queue_depth, name="nvme-queue")
        self._media = Resource(sim, capacity=1, name="ssd-media")
        self._pages: Dict[int, bytes] = {}
        # Multi-stream sequential detection: real devices track several
        # concurrent readahead streams (NCQ), so interleaved per-thread
        # sequential scans still hit the prefetcher.
        self._recent: "deque[int]" = deque(maxlen=64)
        self._recent_set: set = set()
        self.reads = Counter("ssd-reads")
        self.sequential_hits = Counter("ssd-seq-hits")
        self.meter = BandwidthMeter(sim, "ssd")

    def _note_access(self, page: int) -> None:
        if len(self._recent) == self._recent.maxlen:
            self._recent_set.discard(self._recent[0])
        self._recent.append(page)
        self._recent_set.add(page)

    # -- functional contents -------------------------------------------------
    def store(self, page: int, data: bytes) -> None:
        """Populate a page without simulated time (test/bench setup)."""
        if len(data) > self.page_size:
            raise ValueError("data exceeds page size")
        self._pages[page] = data + b"\x00" * (self.page_size - len(data))

    # -- timed I/O (DES generators) --------------------------------------------
    def read(self, page: int):
        """Read one page -> bytes.

        Consecutive page numbers hit the prefetcher and stream at the
        sequential rate; anything else pays the random-access rate.
        """
        if page < 0:
            raise ValueError(f"negative page {page}")
        yield self._queue.request()
        try:
            sequential = (page - 1) in self._recent_set
            self._note_access(page)
            if sequential:
                # The prefetcher already staged this page: the request
                # streams straight out of the device buffer.
                self.sequential_hits.add()
                yield self._media.request()
                try:
                    self.meter.record(0)
                    yield self.sim.timeout(
                        units.transfer_ns(self.page_size, self.seq_gbs))
                    self.meter.record(self.page_size)
                finally:
                    self._media.release()
            else:
                # FTL lookup / chip-conflict penalty on random access.
                yield self.sim.timeout(self.latency_ns // 2)
                yield self._media.request()
                try:
                    self.meter.record(0)
                    yield self.sim.timeout(
                        units.transfer_ns(self.page_size, self.rand_gbs))
                    self.meter.record(self.page_size)
                finally:
                    self._media.release()
                yield self.sim.timeout(self.latency_ns // 2)
        finally:
            self._queue.release()
        self.reads.add()
        return self._pages.get(page, b"\x00" * self.page_size)

    def write(self, page: int, data: bytes):
        """Write one page (device-managed; sequentialized internally)."""
        if len(data) > self.page_size:
            raise ValueError("data exceeds page size")
        yield self._queue.request()
        try:
            yield self._media.request()
            try:
                yield self.sim.timeout(
                    units.transfer_ns(self.page_size, self.rand_gbs))
            finally:
                self._media.release()
            yield self.sim.timeout(self.latency_ns)
        finally:
            self._queue.release()
        self.store(page, data)
