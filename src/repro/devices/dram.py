"""DRAM page store: the RAMCloud-style baseline tier.

"One approach ... is ram cloud, where the cluster has enough collective
DRAM to accommodate the entire dataset in DRAM" (Section 1).  The H-DRAM
configurations of Figures 16-17 and 20 read pages straight from host
memory: ~100 ns access latency and tens of GB/s of shared bandwidth —
fast, but a shared resource that saturates under many threads, and
ruinously expensive per GB compared to flash.
"""

from __future__ import annotations

from typing import Dict

from ..sim import BandwidthMeter, Counter, Resource, Simulator, units

__all__ = ["DRAMStore"]


class DRAMStore:
    """A page-granular in-memory store with bandwidth contention."""

    def __init__(self, sim: Simulator, page_size: int = 8192,
                 bandwidth_gbs: float = 40.0, latency_ns: int = 100):
        if bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.page_size = page_size
        self.bandwidth_gbs = bandwidth_gbs
        self.latency_ns = latency_ns
        self._bus = Resource(sim, capacity=1, name="dram-bus")
        self._pages: Dict[int, bytes] = {}
        self.reads = Counter("dram-reads")
        self.meter = BandwidthMeter(sim, "dram")

    def store(self, page: int, data: bytes) -> None:
        """Populate a page without simulated time (test/bench setup)."""
        if len(data) > self.page_size:
            raise ValueError("data exceeds page size")
        self._pages[page] = data + b"\x00" * (self.page_size - len(data))

    def read(self, page: int):
        """Read one page -> bytes (DES generator)."""
        if page < 0:
            raise ValueError(f"negative page {page}")
        yield self.sim.timeout(self.latency_ns)
        yield self._bus.request()
        try:
            self.meter.record(0)
            yield self.sim.timeout(
                units.transfer_ns(self.page_size, self.bandwidth_gbs))
            self.meter.record(self.page_size)
        finally:
            self._bus.release()
        self.reads.add()
        return self._pages.get(page, b"\x00" * self.page_size)

    def write(self, page: int, data: bytes):
        """Write one page (DES generator)."""
        if len(data) > self.page_size:
            raise ValueError("data exceeds page size")
        yield self.sim.timeout(self.latency_ns)
        yield self._bus.request()
        try:
            yield self.sim.timeout(
                units.transfer_ns(self.page_size, self.bandwidth_gbs))
        finally:
            self._bus.release()
        self.store(page, data)

    def __contains__(self, page: int) -> bool:
        return page in self._pages
