"""Baseline storage devices the paper compares against.

* :class:`CommoditySSD` — the off-the-shelf M.2 SSD (600 MB/s,
  sequential-optimized).
* :class:`HardDisk` — seek + rotate + transfer spinning disk.
* :class:`DRAMStore` — RAMCloud-style in-memory page store.
"""

from .dram import DRAMStore
from .hdd import HardDisk
from .ssd import CommoditySSD

__all__ = ["CommoditySSD", "HardDisk", "DRAMStore"]
