"""Accelerator-sharing scheduler (Section 4).

"It is also very common that multiple instances of a user application may
compete for the same hardware acceleration units.  For efficient sharing
of hardware resources, BlueDBM runs a scheduler that assigns available
hardware-acceleration units to competing user-applications.  In our
implementation, a simple FIFO-based policy is used."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from ..sim import Event, LatencyStats, Simulator

__all__ = ["AcceleratorScheduler"]


class AcceleratorScheduler:
    """FIFO assignment of ``n_units`` identical accelerator units."""

    def __init__(self, sim: Simulator, n_units: int, name: str = "accel"):
        if n_units < 1:
            raise ValueError(f"need at least one unit, got {n_units}")
        self.sim = sim
        self.name = name
        self.n_units = n_units
        self._free: Deque[int] = deque(range(n_units))
        self._waiters: Deque[Tuple[Event, str, int]] = deque()
        self.wait_stats = LatencyStats(f"{name}-wait")
        self.grants: Dict[str, int] = {}

    def acquire(self, app_id: str):
        """Claim a unit for ``app_id`` (DES generator -> unit index)."""
        event = Event(self.sim)
        self._waiters.append((event, app_id, self.sim.now))
        self._dispatch()
        unit = yield event
        return unit

    def release(self, unit: int) -> None:
        """Return a unit to the pool."""
        if not 0 <= unit < self.n_units:
            raise ValueError(f"unit {unit} out of range")
        if unit in self._free:
            raise ValueError(f"unit {unit} is already free")
        self._free.append(unit)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and self._free:
            event, app_id, enqueued = self._waiters.popleft()
            unit = self._free.popleft()
            self.wait_stats.record(self.sim.now - enqueued)
            self.grants[app_id] = self.grants.get(app_id, 0) + 1
            event.succeed(unit)

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    @property
    def units_free(self) -> int:
        return len(self._free)
