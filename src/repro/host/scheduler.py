"""Accelerator-sharing scheduler (Section 4).

"It is also very common that multiple instances of a user application may
compete for the same hardware acceleration units.  For efficient sharing
of hardware resources, BlueDBM runs a scheduler that assigns available
hardware-acceleration units to competing user-applications.  In our
implementation, a simple FIFO-based policy is used."

The paper's FIFO policy remains the default, but the scheduler is a
thin wrapper over the unified pipeline's
:class:`~repro.io.scheduler.ScheduledResource`: the policy-ordered
grant queue, wait statistics, and per-application grant accounting all
come from there; this class only adds unit-index bookkeeping.  Pass
``policy="rr"`` (fair share across applications), ``"priority"`` or
``"edf"`` — or a policy instance — and the same unit pool is arbitrated
under that discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..io import ScheduledResource
from ..sim import Simulator

__all__ = ["AcceleratorScheduler"]


class AcceleratorScheduler:
    """Policy-driven assignment of ``n_units`` identical accelerator units.

    With the default FIFO policy this is exactly the paper's scheduler;
    other policies reorder *which waiting application* gets the next
    free unit, nothing else.
    """

    def __init__(self, sim: Simulator, n_units: int, name: str = "accel",
                 policy=None):
        if n_units < 1:
            raise ValueError(f"need at least one unit, got {n_units}")
        self.sim = sim
        self.name = name
        self.n_units = n_units
        self._units = ScheduledResource(sim, capacity=n_units,
                                        policy=policy, name=name)
        self._free: Deque[int] = deque(range(n_units))

    def acquire(self, app_id: str, priority: int = 0,
                deadline_ns: Optional[int] = None):
        """Claim a unit for ``app_id`` (DES generator -> unit index).

        ``app_id`` doubles as the tenant for fair-share policies;
        ``priority``/``deadline_ns`` feed the priority/EDF policies.
        """
        yield self._units.request(tenant=app_id, priority=priority,
                                  deadline_ns=deadline_ns)
        # A grant guarantees a free unit: grants in flight never exceed
        # the resource capacity, which equals the unit count.
        return self._free.popleft()

    def release(self, unit: int) -> None:
        """Return a unit to the pool."""
        if not 0 <= unit < self.n_units:
            raise ValueError(f"unit {unit} out of range")
        if unit in self._free:
            raise ValueError(f"unit {unit} is already free")
        self._units.release()
        # The next grant's event is processed on a later step, so the
        # unit is back in the pool before any waiter pops it.
        self._free.append(unit)

    @property
    def policy(self):
        return self._units.policy

    @property
    def wait_stats(self):
        """Grant-wait histogram (exact min/mean/max, bucketed p50/p99)."""
        return self._units.wait_stats

    @property
    def grants(self) -> Dict[str, int]:
        """Units granted per application id."""
        return self._units.grants

    @property
    def queue_depth(self) -> int:
        return self._units.queue_depth

    @property
    def units_free(self) -> int:
        return len(self._free)
