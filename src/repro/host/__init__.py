"""Host server models: PCIe/DMA, page buffers, RPC costs, CPU, scheduler.

* :mod:`~repro.host.config` — :class:`HostConfig` timing parameters.
* :mod:`~repro.host.pcie` — asymmetric-bandwidth PCIe link model.
* :mod:`~repro.host.dma` — burst assembly with per-buffer reorder FIFOs.
* :mod:`~repro.host.buffers` — the 128+128 host page buffers.
* :mod:`~repro.host.cpu` — multi-core compute + DRAM bandwidth model.
* :mod:`~repro.host.scheduler` — FIFO accelerator-sharing scheduler.
* :mod:`~repro.host.iface` — :class:`HostInterface`, the full software
  read/write path (syscall -> RPC -> flash -> DMA -> interrupt).
"""

from .buffers import PageBufferPool
from .config import HostConfig
from .cpu import HostCPU
from .dma import BurstAssembler
from .iface import HostInterface
from .pcie import PCIeLink
from .scheduler import AcceleratorScheduler

__all__ = [
    "HostConfig",
    "PCIeLink",
    "BurstAssembler",
    "PageBufferPool",
    "HostCPU",
    "AcceleratorScheduler",
    "HostInterface",
]
