"""Host page buffers (Section 3.3).

"The host interface provides the software with 128 page buffers, each for
reads and writes.  When writing a page, the software will request a free
write buffer, copy data to the write buffer, and send a write request
over RPC ... When reading a page, the software will request a free read
buffer, and send a read request over RPC."

Buffer exhaustion is the host-side in-flight limit: with all 128 read
buffers pending, further reads wait for a completion interrupt to recycle
one.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Store

__all__ = ["PageBufferPool"]


class PageBufferPool:
    """A free-list of numbered page buffers in host DRAM."""

    def __init__(self, sim: Simulator, count: int, name: str = "buffers"):
        if count < 1:
            raise ValueError(f"need at least one buffer, got {count}")
        self.sim = sim
        self.count = count
        self.name = name
        self._free: Store = Store(sim, name=name)
        for index in range(count):
            self._free.items.append(index)

    def acquire(self):
        """Take a free buffer index (DES generator; blocks when empty)."""
        index = yield self._free.get()
        return index

    def release(self, index: int) -> None:
        """Return a buffer to the free list.

        Non-blocking (the free list is unbounded), so it is safe to call
        from ``finally`` blocks; waiting acquirers wake immediately.
        """
        if not 0 <= index < self.count:
            raise ValueError(f"buffer index {index} out of range")
        self._free.put_nowait(index)

    @property
    def available(self) -> int:
        return len(self._free.items)

    @property
    def in_use(self) -> int:
        return self.count - self.available
