"""PCIe link model (Connectal Gen 1 endpoint, Sections 5 and 5.3).

The link is full duplex with asymmetric measured bandwidth: 1.6 GB/s
device-to-host and 1.0 GB/s host-to-device.  Each direction serializes
transfers; multiple DMA engines allow several outstanding requests to
queue without software involvement, but wire time is what bounds
throughput — exactly the ceiling visible in Figure 13's Host-Local bar.
"""

from __future__ import annotations

from ..sim import BandwidthMeter, Resource, Simulator, units
from .config import HostConfig

__all__ = ["PCIeLink"]


class PCIeLink:
    """The host <-> storage-device link."""

    def __init__(self, sim: Simulator, config: HostConfig):
        self.sim = sim
        self.config = config
        self._to_host_wire = Resource(sim, capacity=1, name="pcie-d2h")
        self._to_dev_wire = Resource(sim, capacity=1, name="pcie-h2d")
        self._read_engines = Resource(sim, capacity=config.dma_engines,
                                      name="dma-read-engines")
        self._write_engines = Resource(sim, capacity=config.dma_engines,
                                       name="dma-write-engines")
        self.to_host_meter = BandwidthMeter(sim, "pcie-d2h")
        self.to_dev_meter = BandwidthMeter(sim, "pcie-h2d")

    def device_to_host(self, num_bytes: int):
        """DMA ``num_bytes`` from the device into host DRAM (generator)."""
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        yield self._read_engines.request()
        try:
            yield self._to_host_wire.request()
            try:
                self.to_host_meter.record(0)
                yield self.sim.timeout(units.transfer_ns(
                    num_bytes, self.config.pcie_dev_to_host_gbs))
                self.to_host_meter.record(num_bytes)
            finally:
                self._to_host_wire.release()
            yield self.sim.timeout(self.config.pcie_latency_ns)
        finally:
            self._read_engines.release()

    def host_to_device(self, num_bytes: int):
        """DMA ``num_bytes`` from host DRAM to the device (generator)."""
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        yield self._write_engines.request()
        try:
            yield self._to_dev_wire.request()
            try:
                self.to_dev_meter.record(0)
                yield self.sim.timeout(units.transfer_ns(
                    num_bytes, self.config.pcie_host_to_dev_gbs))
                self.to_dev_meter.record(num_bytes)
            finally:
                self._to_dev_wire.release()
            yield self.sim.timeout(self.config.pcie_latency_ns)
        finally:
            self._write_engines.release()
