"""Host CPU timing model: a 24-core Xeon server (Section 5).

Application software runs as worker processes that claim a core for each
compute slice; the model tracks utilization so Figure 21's CPU columns
can be reproduced.  Host DRAM is modeled as a shared bandwidth pool with
a fixed access latency — enough to express both the "DRAM-resident data
is very fast" and the "DRAM bandwidth eventually bottlenecks many
threads" behaviours of Figures 16-17.
"""

from __future__ import annotations

from ..sim import Resource, Simulator, UtilizationTracker, units
from .config import HostConfig

__all__ = ["HostCPU"]


class HostCPU:
    """Cores + DRAM of one host server."""

    def __init__(self, sim: Simulator, config: HostConfig):
        self.sim = sim
        self.config = config
        self.cores = Resource(sim, capacity=config.n_cores, name="cores")
        self._dram = Resource(sim, capacity=1, name="dram")
        self.tracker = UtilizationTracker(sim, "cpu")

    def compute(self, duration_ns: int):
        """Run ``duration_ns`` of work on one core (DES generator).

        Blocks while all cores are busy — this is what makes software
        baselines compute-bound at high thread counts.
        """
        if duration_ns < 0:
            raise ValueError("negative compute duration")
        yield self.cores.request()
        try:
            yield self.sim.timeout(duration_ns)
            self.tracker.busy(duration_ns)
        finally:
            self.cores.release()

    def dram_read(self, num_bytes: int):
        """Fetch ``num_bytes`` from host DRAM (DES generator).

        Models shared-bandwidth contention: concurrent readers serialize
        on the memory controller.  The fixed latency covers the cache-miss
        path.
        """
        if num_bytes < 0:
            raise ValueError("negative read size")
        yield self._dram.request()
        try:
            yield self.sim.timeout(units.transfer_ns(
                num_bytes, self.config.dram_gbs))
        finally:
            self._dram.release()
        yield self.sim.timeout(self.config.dram_latency_ns)

    @property
    def utilization(self) -> float:
        """Fraction of one core-equivalent busy over the window so far.

        Normalized to the full socket: 1.0 means all cores pegged.
        """
        window = self.sim.now
        if window <= 0:
            return 0.0
        return min(1.0, self.tracker.busy_ns / (window * self.config.n_cores))
