"""Host interface facade: what host *software* pays to touch flash.

Composes the whole Section 3.3 / Figure 7 path for one request:

reads:  syscall+driver -> free read buffer -> RPC -> flash (tagged read)
        -> DMA burst(s) into the buffer -> completion interrupt
writes: syscall+driver -> free write buffer -> data copy + RPC ->
        DMA to device -> flash program -> ack

The in-store processor path skips everything except the flash access —
that difference is the core of Figures 12, 19, and 21.

Requests ride the unified I/O pipeline: when a
:class:`~repro.io.tracer.RequestTracer` is attached (or the caller
passes its own :class:`~repro.io.request.IORequest`), kernel/driver and
RPC time is charged to the ``software`` stage, buffer waits to
``queue``, DMA to ``pcie``, and the completion interrupt to
``interrupt``; the splitter and card charge their own stages below.
"""

from __future__ import annotations

from typing import Optional

from ..flash import PhysAddr, ReadResult
from ..flash.splitter import SplitterPort
from ..io import IOKind, IORequest, RequestTracer, StageSpan
from ..sim import Counter, LatencyStats, Simulator
from .buffers import PageBufferPool
from .config import HostConfig
from .cpu import HostCPU
from .pcie import PCIeLink

__all__ = ["HostInterface"]


class HostInterface:
    """Software's RPC + DMA window onto the local storage device."""

    def __init__(self, sim: Simulator, config: HostConfig, cpu: HostCPU,
                 pcie: PCIeLink, port: SplitterPort, page_size: int,
                 tracer: Optional[RequestTracer] = None,
                 tenant: str = "host"):
        self.sim = sim
        self.config = config
        self.cpu = cpu
        self.pcie = pcie
        self.port = port
        self.page_size = page_size
        self.tracer = tracer
        self.tenant = tenant
        self.read_buffers = PageBufferPool(sim, config.read_buffers,
                                           "read-buffers")
        self.write_buffers = PageBufferPool(sim, config.write_buffers,
                                            "write-buffers")
        self.read_latency = LatencyStats("host-read")
        self.write_latency = LatencyStats("host-write")
        self.reads = Counter("host-reads")
        self.writes = Counter("host-writes")

    def _start(self, kind: IOKind, addr: PhysAddr, size: int,
               request: Optional[IORequest]) -> tuple:
        """Adopt the caller's request or open a traced one of our own.

        Requests this interface creates inherit the QoS identity of the
        splitter port it drives (priority and relative deadline), so the
        host tenant competes under the admission policy as configured.
        """
        if request is not None:
            return request, False
        if self.tracer is None:
            return None, False
        deadline = (None if self.port.deadline_ns is None
                    else self.sim.now + self.port.deadline_ns)
        return self.tracer.start(kind, addr, size, tenant=self.tenant,
                                 priority=self.port.priority,
                                 deadline_ns=deadline), True

    def read_page(self, addr: PhysAddr, software_path: bool = True,
                  request: Optional[IORequest] = None):
        """Read one flash page into host memory (DES generator).

        ``software_path=False`` models a request issued by an already-
        running kernel-bypass loop (no per-request syscall/driver cost) —
        used by baselines that batch requests.
        Returns the corrected page data.
        """
        request, owned = self._start(IOKind.READ, addr, self.page_size,
                                     request)
        start = self.sim.now
        if software_path:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.process(
                    self.cpu.compute(self.config.software_request_ns))
        with StageSpan(self.sim, request, "queue"):
            buffer_index = yield self.sim.process(
                self.read_buffers.acquire())
        try:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.timeout(self.config.rpc_ns)
            result: ReadResult = yield self.sim.process(
                self.port.read_page(addr, request=request))
            with StageSpan(self.sim, request, "pcie"):
                yield self.sim.process(
                    self.pcie.device_to_host(self.page_size))
            with StageSpan(self.sim, request, "interrupt"):
                yield self.sim.timeout(self.config.interrupt_ns)
        finally:
            self.read_buffers.release(buffer_index)
        self.reads.add()
        self.read_latency.record(self.sim.now - start)
        if owned:
            self.tracer.complete(request)
        return result.data

    def write_page(self, addr: PhysAddr, data: bytes,
                   software_path: bool = True,
                   request: Optional[IORequest] = None):
        """Write one page from host memory to flash (DES generator)."""
        request, owned = self._start(IOKind.WRITE, addr, len(data), request)
        start = self.sim.now
        if software_path:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.process(
                    self.cpu.compute(self.config.software_request_ns))
        with StageSpan(self.sim, request, "queue"):
            buffer_index = yield self.sim.process(
                self.write_buffers.acquire())
        try:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.timeout(self.config.rpc_ns)
            with StageSpan(self.sim, request, "pcie"):
                yield self.sim.process(
                    self.pcie.host_to_device(self.page_size))
            yield self.sim.process(
                self.port.write_page(addr, data, request=request))
        finally:
            self.write_buffers.release(buffer_index)
        self.writes.add()
        self.write_latency.record(self.sim.now - start)
        if owned:
            self.tracer.complete(request)

    def erase_block(self, addr: PhysAddr,
                    request: Optional[IORequest] = None):
        """Erase a block (driver-initiated; DES generator)."""
        request, owned = self._start(IOKind.ERASE, addr, 0, request)
        with StageSpan(self.sim, request, "software"):
            yield self.sim.process(
                self.cpu.compute(self.config.software_request_ns))
            yield self.sim.timeout(self.config.rpc_ns)
        yield self.sim.process(
            self.port.erase_block(addr, request=request))
        if owned:
            self.tracer.complete(request)
