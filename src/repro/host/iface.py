"""Host interface facade: what host *software* pays to touch flash.

Composes the whole Section 3.3 / Figure 7 path for one request:

reads:  syscall+driver -> free read buffer -> RPC -> flash (tagged read)
        -> DMA burst(s) into the buffer -> completion interrupt
writes: syscall+driver -> free write buffer -> data copy + RPC ->
        DMA to device -> flash program -> ack

The in-store processor path skips everything except the flash access —
that difference is the core of Figures 12, 19, and 21.
"""

from __future__ import annotations

from typing import Optional

from ..flash import PhysAddr, ReadResult
from ..flash.splitter import SplitterPort
from ..sim import Counter, LatencyStats, Simulator
from .buffers import PageBufferPool
from .config import HostConfig
from .cpu import HostCPU
from .pcie import PCIeLink

__all__ = ["HostInterface"]


class HostInterface:
    """Software's RPC + DMA window onto the local storage device."""

    def __init__(self, sim: Simulator, config: HostConfig, cpu: HostCPU,
                 pcie: PCIeLink, port: SplitterPort, page_size: int):
        self.sim = sim
        self.config = config
        self.cpu = cpu
        self.pcie = pcie
        self.port = port
        self.page_size = page_size
        self.read_buffers = PageBufferPool(sim, config.read_buffers,
                                           "read-buffers")
        self.write_buffers = PageBufferPool(sim, config.write_buffers,
                                            "write-buffers")
        self.read_latency = LatencyStats("host-read")
        self.write_latency = LatencyStats("host-write")
        self.reads = Counter("host-reads")
        self.writes = Counter("host-writes")

    def read_page(self, addr: PhysAddr, software_path: bool = True):
        """Read one flash page into host memory (DES generator).

        ``software_path=False`` models a request issued by an already-
        running kernel-bypass loop (no per-request syscall/driver cost) —
        used by baselines that batch requests.
        Returns the corrected page data.
        """
        start = self.sim.now
        if software_path:
            yield self.sim.process(
                self.cpu.compute(self.config.software_request_ns))
        buffer_index = yield self.sim.process(self.read_buffers.acquire())
        try:
            yield self.sim.timeout(self.config.rpc_ns)
            result: ReadResult = yield self.sim.process(
                self.port.read_page(addr))
            yield self.sim.process(
                self.pcie.device_to_host(self.page_size))
            yield self.sim.timeout(self.config.interrupt_ns)
        finally:
            self.read_buffers.release(buffer_index)
        self.reads.add()
        self.read_latency.record(self.sim.now - start)
        return result.data

    def write_page(self, addr: PhysAddr, data: bytes,
                   software_path: bool = True):
        """Write one page from host memory to flash (DES generator)."""
        start = self.sim.now
        if software_path:
            yield self.sim.process(
                self.cpu.compute(self.config.software_request_ns))
        buffer_index = yield self.sim.process(self.write_buffers.acquire())
        try:
            yield self.sim.timeout(self.config.rpc_ns)
            yield self.sim.process(
                self.pcie.host_to_device(self.page_size))
            yield self.sim.process(self.port.write_page(addr, data))
        finally:
            self.write_buffers.release(buffer_index)
        self.writes.add()
        self.write_latency.record(self.sim.now - start)

    def erase_block(self, addr: PhysAddr):
        """Erase a block (driver-initiated; DES generator)."""
        yield self.sim.process(
            self.cpu.compute(self.config.software_request_ns))
        yield self.sim.timeout(self.config.rpc_ns)
        yield self.sim.process(self.port.erase_block(addr))
