"""Host interface facade: what host *software* pays to touch flash.

Composes the whole Section 3.3 / Figure 7 path for one request:

reads:  syscall+driver -> free read buffer -> RPC -> flash (tagged read)
        -> DMA burst(s) into the buffer -> completion interrupt
writes: syscall+driver -> free write buffer -> data copy + RPC ->
        DMA to device -> flash program -> ack
erases: syscall+driver -> RPC -> flash erase

The in-store processor path skips everything except the flash access —
that difference is the core of Figures 12, 19, and 21.

Two submission disciplines share one per-operation flow:

* the blocking calls (:meth:`HostInterface.read_page` /
  :meth:`~HostInterface.write_page` / :meth:`~HostInterface.erase_block`)
  run the flow inline — queue depth 1, exactly the seed behavior;
* :meth:`HostInterface.submit` is the queue-depth interface: it takes a
  whole batch of operations, returns immediately with a
  :class:`~repro.io.batch.RequestBatch`, and pumps up to ``queue_depth``
  flows concurrently.  Completions are delivered out of order as each
  flow finishes — per-item events plus the batch's ``done`` event —
  which is how the card's deep-queue bandwidth becomes reachable from
  host software.

Requests ride the unified I/O pipeline: when a
:class:`~repro.io.tracer.RequestTracer` is attached (or the caller
passes its own :class:`~repro.io.request.IORequest`), kernel/driver and
RPC time is charged to the ``software`` stage, buffer waits to
``queue``, DMA to ``pcie``, and the completion interrupt to
``interrupt``; the splitter and card charge their own stages below.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..flash import PhysAddr, ReadResult
from ..flash.splitter import SplitterPort
from ..io import IOKind, IORequest, RequestBatch, RequestTracer, StageSpan
from ..sim import Counter, LatencyStats, Simulator
from .buffers import PageBufferPool
from .config import HostConfig
from .cpu import HostCPU
from .pcie import PCIeLink

__all__ = ["HostInterface"]


class HostInterface:
    """Software's RPC + DMA window onto the local storage device.

    ``queue_depth`` is the default in-flight bound :meth:`submit` pumps
    a batch at (overridable per call); the blocking single-request
    calls are always effectively queue depth 1.
    """

    def __init__(self, sim: Simulator, config: HostConfig, cpu: HostCPU,
                 pcie: PCIeLink, port: SplitterPort, page_size: int,
                 tracer: Optional[RequestTracer] = None,
                 tenant: str = "host", queue_depth: int = 8):
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {queue_depth}")
        self.sim = sim
        self.config = config
        self.cpu = cpu
        self.pcie = pcie
        self.port = port
        self.page_size = page_size
        self.tracer = tracer
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.read_buffers = PageBufferPool(sim, config.read_buffers,
                                           "read-buffers")
        self.write_buffers = PageBufferPool(sim, config.write_buffers,
                                            "write-buffers")
        self.read_latency = LatencyStats("host-read")
        self.write_latency = LatencyStats("host-write")
        self.reads = Counter("host-reads")
        self.writes = Counter("host-writes")
        # Interrupt-coalescing state shared across this interface's
        # submitted batches: reads completed since the last interrupt,
        # and reads currently in flight under a coalescing submit (the
        # drain fallback — the last one out always raises the line).
        self._irq_accrued = 0
        self._irq_inflight = 0

    def _start(self, kind: IOKind, addr: PhysAddr, size: int,
               request: Optional[IORequest]) -> tuple:
        """Adopt the caller's request or open a traced one of our own.

        Requests this interface creates inherit the QoS identity of the
        splitter port it drives (priority and relative deadline), so the
        host tenant competes under the admission policy as configured.
        """
        if request is not None:
            return request, False
        if self.tracer is None:
            return None, False
        deadline = (None if self.port.deadline_ns is None
                    else self.sim.now + self.port.deadline_ns)
        return self.tracer.start(kind, addr, size, tenant=self.tenant,
                                 priority=self.port.priority,
                                 deadline_ns=deadline), True

    # -- per-operation flows (shared by blocking calls and submit) ------
    def _read_flow(self, addr: PhysAddr, software_path: bool,
                   request: Optional[IORequest], interrupt: bool = True):
        """The whole host read path for one page (DES generator).

        ``interrupt=False`` skips the per-page completion interrupt —
        the coalesced-interrupt submission path charges one interrupt
        per drained group instead (see :meth:`submit`'s
        ``irq_coalesce``).
        """
        if software_path:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.process(
                    self.cpu.compute(self.config.software_request_ns))
        with StageSpan(self.sim, request, "queue"):
            buffer_index = yield self.sim.process(
                self.read_buffers.acquire())
        try:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.timeout(self.config.rpc_ns)
            result: ReadResult = yield self.sim.process(
                self.port.read_page(addr, request=request))
            with StageSpan(self.sim, request, "pcie"):
                yield self.sim.process(
                    self.pcie.device_to_host(self.page_size))
            if interrupt:
                with StageSpan(self.sim, request, "interrupt"):
                    yield self.sim.timeout(self.config.interrupt_ns)
        finally:
            self.read_buffers.release(buffer_index)
        return result

    def _write_flow(self, addr: PhysAddr, data: bytes,
                    software_path: bool, request: Optional[IORequest]):
        """The whole host write path for one page (DES generator)."""
        if software_path:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.process(
                    self.cpu.compute(self.config.software_request_ns))
        with StageSpan(self.sim, request, "queue"):
            buffer_index = yield self.sim.process(
                self.write_buffers.acquire())
        try:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.timeout(self.config.rpc_ns)
            with StageSpan(self.sim, request, "pcie"):
                yield self.sim.process(
                    self.pcie.host_to_device(self.page_size))
            yield self.sim.process(
                self.port.write_page(addr, data, request=request))
        finally:
            self.write_buffers.release(buffer_index)

    def _erase_flow(self, addr: PhysAddr, software_path: bool,
                    request: Optional[IORequest]):
        """The driver-initiated block erase path (DES generator)."""
        if software_path:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.process(
                    self.cpu.compute(self.config.software_request_ns))
                yield self.sim.timeout(self.config.rpc_ns)
        else:
            with StageSpan(self.sim, request, "software"):
                yield self.sim.timeout(self.config.rpc_ns)
        yield self.sim.process(
            self.port.erase_block(addr, request=request))

    # -- blocking (queue depth 1) calls ---------------------------------
    def read_page(self, addr: PhysAddr, software_path: bool = True,
                  request: Optional[IORequest] = None):
        """Read one flash page into host memory (DES generator).

        ``software_path=False`` models a request issued by an already-
        running kernel-bypass loop (no per-request syscall/driver cost) —
        used by baselines that batch requests.
        Returns the corrected page data.
        """
        request, owned = self._start(IOKind.READ, addr, self.page_size,
                                     request)
        start = self.sim.now
        result = yield from self._read_flow(addr, software_path, request)
        self.reads.add()
        self.read_latency.record(self.sim.now - start)
        if owned:
            self.tracer.complete(request)
        return result.data

    def write_page(self, addr: PhysAddr, data: bytes,
                   software_path: bool = True,
                   request: Optional[IORequest] = None):
        """Write one page from host memory to flash (DES generator)."""
        request, owned = self._start(IOKind.WRITE, addr, len(data), request)
        start = self.sim.now
        yield from self._write_flow(addr, data, software_path, request)
        self.writes.add()
        self.write_latency.record(self.sim.now - start)
        if owned:
            self.tracer.complete(request)

    def erase_block(self, addr: PhysAddr,
                    request: Optional[IORequest] = None):
        """Erase a block (driver-initiated; DES generator)."""
        request, owned = self._start(IOKind.ERASE, addr, 0, request)
        yield from self._erase_flow(addr, True, request)
        if owned:
            self.tracer.complete(request)

    # -- blocking logical (volume) calls --------------------------------
    def read_lpn(self, volume, lpn: int, software_path: bool = True,
                 request: Optional[IORequest] = None):
        """Read one *logical* page of ``volume`` (DES generator).

        The volume resolves the LPN through its FTL map; the physical
        access rides this interface's full read flow.  Returns the page
        data (erased pattern for unmapped LPNs).
        """
        request, owned = self._start(IOKind.READ, lpn, self.page_size,
                                     request)
        start = self.sim.now
        data = yield from volume.read_flow(lpn, self, software_path,
                                           request)
        self.reads.add()
        self.read_latency.record(self.sim.now - start)
        if owned:
            self.tracer.complete(request)
        return data

    def write_lpn(self, volume, lpn: int, data: bytes,
                  software_path: bool = True,
                  request: Optional[IORequest] = None):
        """Write one *logical* page of ``volume`` (DES generator).

        The volume allocates a fresh physical page (out-of-place remap,
        GC as needed, relocation through the volume's GC port); the
        program rides this interface's full write flow.
        """
        request, owned = self._start(IOKind.WRITE, lpn, len(data), request)
        start = self.sim.now
        yield from volume.write_flow(self, lpn, data, software_path,
                                     request, tenant=self.tenant)
        self.writes.add()
        self.write_latency.record(self.sim.now - start)
        if owned:
            self.tracer.complete(request)

    # -- asynchronous batched submission --------------------------------
    def submit(self, ops: Iterable, queue_depth: Optional[int] = None,
               software_path: bool = False, volume=None,
               irq_coalesce: int = 1) -> RequestBatch:
        """Issue a batch of operations asynchronously; returns at once.

        ``ops`` is an iterable of ``(kind, addr)`` or
        ``(kind, addr, data)`` tuples (``kind`` an
        :class:`~repro.io.IOKind` or its string value).  The returned
        :class:`~repro.io.RequestBatch` exposes a per-item completion
        event (``item.event``, firing with the operation's result) and
        a batch-level ``done`` event; completions arrive **out of
        order** — whichever flow finishes first settles first, exactly
        like the tagged interface underneath.

        At most ``queue_depth`` operations (default: the interface's
        :attr:`queue_depth`) are in flight at once; as each completes,
        the pump launches the next, so a deep batch keeps the device's
        queue full without the caller writing a driver loop.

        ``software_path=False`` (the default) models the batched
        kernel-bypass submission loop the paper's bandwidth
        measurements use — no per-request syscall/driver charge; pass
        ``True`` to pay the full per-request software path instead.

        ``volume`` routes the batch through a
        :class:`~repro.volume.LogicalVolume`: each op's address is a
        *logical* page number, reads resolve through the FTL map, and
        writes allocate out-of-place with validity updates and GC.

        ``irq_coalesce=N`` (N > 1) amortizes the completion interrupt:
        instead of one ``interrupt_ns`` charge per page read, the
        interface pays one per N read completions — aggregated across
        every coalescing batch in flight on this interface, with a
        drain fallback (the last outstanding read always pays, so no
        completion waits on an interrupt that never comes).  This is
        Figure 12's ``interrupt`` component amortized at depth.
        Writes complete by ack and are unaffected.
        """
        depth = self.queue_depth if queue_depth is None else queue_depth
        if depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {depth}")
        if irq_coalesce < 1:
            raise ValueError(
                f"irq_coalesce must be >= 1, got {irq_coalesce}")
        batch = RequestBatch(self.sim, tenant=self.tenant)
        for op in ops:
            kind, addr = op[0], op[1]
            data = op[2] if len(op) > 2 else None
            kind = IOKind(kind)
            if kind is IOKind.WRITE and data is None:
                raise ValueError(f"write to {addr} needs data")
            size = (len(data) if data is not None
                    else 0 if kind is IOKind.ERASE else self.page_size)
            request, _ = self._start(kind, addr, size, None)
            batch.add(kind, addr, data=data, request=request)
        batch.seal()
        if batch.items:
            if irq_coalesce > 1:
                self._irq_inflight += sum(
                    1 for item in batch.items
                    if item.kind is IOKind.READ)
            self.sim.process(
                self._pump(batch, depth, software_path, volume,
                           irq_coalesce),
                name=f"{self.tenant}-submit")
        return batch

    def _pump(self, batch: RequestBatch, depth: int, software_path: bool,
              volume, irq_coalesce: int):
        """Keep up to ``depth`` of the batch's flows in flight."""
        waiting = deque(batch.items)
        pending: dict = {}

        def launch():
            while waiting and len(pending) < depth:
                item = waiting.popleft()
                proc = self.sim.process(
                    self._item_flow(batch, item, software_path, volume,
                                    irq_coalesce))
                pending[proc] = item

        launch()
        while pending:
            yield self.sim.any_of(list(pending))
            for proc in [p for p in pending if p.triggered]:
                del pending[proc]
            launch()

    def _item_flow(self, batch: RequestBatch, item, software_path: bool,
                   volume=None, irq_coalesce: int = 1):
        """Run one batch item end to end and settle it.

        Failures are settled into the item (its event fails, carrying
        the exception to any waiter) rather than raised — the pump must
        keep the rest of the batch moving.
        """
        start = self.sim.now
        result = None
        error: Optional[BaseException] = None
        try:
            if item.kind is IOKind.READ:
                inline_irq = irq_coalesce <= 1
                device_io = True
                try:
                    if volume is not None:
                        # Resolved synchronously, exactly as read_flow
                        # is about to (no yield in between): an
                        # unmapped LPN is answered from the map with no
                        # device command — and no interrupt, matching
                        # the uncoalesced path which charges none.
                        device_io = (
                            volume.physical_of(item.addr) is not None)
                        result = yield from volume.read_flow(
                            item.addr, self, software_path, item.request,
                            interrupt=inline_irq)
                    else:
                        page = yield from self._read_flow(
                            item.addr, software_path, item.request,
                            interrupt=inline_irq)
                        result = page.data
                finally:
                    # A failed read still retires from the coalescing
                    # window (and may raise the shared interrupt) —
                    # otherwise the drain fallback would never fire
                    # again and later tails would skip their interrupt.
                    if not inline_irq:
                        yield from self._coalesced_interrupt(
                            item.request, irq_coalesce, device_io)
                self.reads.add()
                self.read_latency.record(self.sim.now - start)
            elif item.kind is IOKind.WRITE:
                if volume is not None:
                    yield from volume.write_flow(
                        self, item.addr, item.data, software_path,
                        item.request, tenant=self.tenant)
                else:
                    yield from self._write_flow(item.addr, item.data,
                                                software_path,
                                                item.request)
                self.writes.add()
                self.write_latency.record(self.sim.now - start)
            else:
                yield from self._erase_flow(item.addr, software_path,
                                            item.request)
        except Exception as exc:
            error = exc
        if self.tracer is not None and error is None:
            self.tracer.complete(item.request)
        batch.item_done(item, result=result, error=error)

    def _coalesced_interrupt(self, request, irq_coalesce: int,
                             device_io: bool = True):
        """Charge one completion interrupt per drained read group.

        Every ``irq_coalesce``-th read completion on this interface
        pays the full ``interrupt_ns``; the others ride the same
        interrupt for free.  The last outstanding coalescing read
        always pays (drain fallback), so no completion ever waits on
        an interrupt that is never raised.

        ``device_io=False`` (a volume read the FTL answered from the
        map) still retires from the window but accrues no interrupt
        debt: reads that issued no device command raise no completion
        interrupt, the same as the uncoalesced path.
        """
        self._irq_inflight -= 1
        if device_io:
            self._irq_accrued += 1
        if self._irq_accrued and (self._irq_accrued >= irq_coalesce
                                  or self._irq_inflight == 0):
            self._irq_accrued = 0
            with StageSpan(self.sim, request, "interrupt"):
                yield self.sim.timeout(self.config.interrupt_ns)
        else:
            yield self.sim.timeout(0)
