"""DMA engine with per-buffer reorder FIFOs (Section 3.3, Figure 7).

Flash reads arrive interleaved: pages from different buses (or different
remote nodes) complete out of order, but "the DMA engine needs to have
enough contiguous data for a DMA burst before issuing a DMA burst".
BlueDBM solves this with "dual-ported buffer in hardware which has the
semantics of a vector of FIFOs, so that data for each request can be
enqueued into its own FIFO until there is enough data for a burst".

:class:`BurstAssembler` reproduces that structure functionally: producers
enqueue (buffer_index, chunk) in any interleaving; each buffer's FIFO
accumulates privately; a burst is emitted to the PCIe link whenever a
FIFO holds at least one burst worth of data.  Per-buffer data order is
preserved even under full interleaving — the property tests assert it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import Counter, Simulator, Store
from .config import HostConfig
from .pcie import PCIeLink

__all__ = ["BurstAssembler"]


class BurstAssembler:
    """Vector-of-FIFOs burst assembly in front of the PCIe DMA engine."""

    def __init__(self, sim: Simulator, config: HostConfig, pcie: PCIeLink):
        self.sim = sim
        self.config = config
        self.pcie = pcie
        self._fifos: Dict[int, bytearray] = {}
        self._chunks: Dict[int, List[bytes]] = {}
        self.bursts_issued = Counter("dma-bursts")

    def enqueue(self, buffer_index: int, chunk: bytes):
        """Feed ``chunk`` into ``buffer_index``'s FIFO (DES generator).

        Emits DMA bursts for every complete burst now available.  The
        burst transfer time is paid on the shared PCIe link; chunks from
        other buffers may interleave freely between calls.
        """
        fifo = self._fifos.setdefault(buffer_index, bytearray())
        self._chunks.setdefault(buffer_index, []).append(bytes(chunk))
        fifo.extend(chunk)
        burst = self.config.dma_burst_bytes
        while len(fifo) >= burst:
            del fifo[:burst]
            self.bursts_issued.add()
            yield self.sim.process(self.pcie.device_to_host(burst))

    def flush(self, buffer_index: int):
        """Push out any sub-burst tail for ``buffer_index`` (generator)."""
        fifo = self._fifos.get(buffer_index)
        if fifo:
            tail = len(fifo)
            del fifo[:]
            self.bursts_issued.add()
            yield self.sim.process(self.pcie.device_to_host(tail))
        else:
            yield self.sim.timeout(0)

    def assembled(self, buffer_index: int) -> bytes:
        """All data ever enqueued for a buffer, in FIFO order.

        This is what lands in the host's page buffer; tests compare it
        against the expected page image to prove interleaving never mixes
        streams.
        """
        return b"".join(self._chunks.get(buffer_index, []))

    def reset(self, buffer_index: int) -> None:
        """Recycle a buffer's FIFO state when its page buffer is freed."""
        self._fifos.pop(buffer_index, None)
        self._chunks.pop(buffer_index, None)
