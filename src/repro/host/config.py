"""Host-side timing parameters.

Defaults reproduce the paper's measured environment:

* Connectal PCIe Gen 1: "1.6GB/s DMA read to host DRAM bandwidth and
  1GB/s of DMA write from host DRAM bandwidth" (Section 5.3) — i.e.
  device-to-host moves at 1.6 GB/s, host-to-device at 1.0 GB/s.
* 128 page buffers each for reads and writes (Section 3.3).
* Four DMA read engines and four write engines (Section 5.3).
* Xeon host: 24 cores, 50 GB DRAM (Section 5).

Software overheads are the kernel/driver costs that the ISP path skips;
their sum (~20 µs per request) is the "Software" component of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import units

__all__ = ["HostConfig"]


@dataclass(frozen=True)
class HostConfig:
    """Timing and sizing for one host server + its storage device link."""

    # PCIe / Connectal link
    pcie_dev_to_host_gbs: float = 1.6    # storage reads land in host DRAM
    pcie_host_to_dev_gbs: float = 1.0    # storage writes leave host DRAM
    pcie_latency_ns: int = 1 * units.US  # portal/DMA round-trip setup
    dma_engines: int = 4                 # per direction
    dma_burst_bytes: int = 128           # burst assembly granularity

    # Page buffers (Section 3.3)
    read_buffers: int = 128
    write_buffers: int = 128

    # RPC + interrupt path
    rpc_ns: int = 1 * units.US           # request portal write
    interrupt_ns: int = 4 * units.US     # completion interrupt + wakeup

    # Kernel/driver software costs per storage request
    syscall_ns: int = 4 * units.US
    driver_ns: int = 10 * units.US

    # Host CPU & memory
    n_cores: int = 24
    dram_gbs: float = 40.0               # aggregate DRAM bandwidth
    dram_latency_ns: int = 100

    def __post_init__(self):
        if self.pcie_dev_to_host_gbs <= 0 or self.pcie_host_to_dev_gbs <= 0:
            raise ValueError("PCIe bandwidths must be positive")
        if self.read_buffers < 1 or self.write_buffers < 1:
            raise ValueError("need at least one page buffer per direction")
        if self.dma_engines < 1:
            raise ValueError("need at least one DMA engine")
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.dram_gbs <= 0:
            raise ValueError("DRAM bandwidth must be positive")

    @property
    def software_request_ns(self) -> int:
        """Per-request kernel-path cost host software pays (ISPs don't)."""
        return self.syscall_ns + self.driver_ns
