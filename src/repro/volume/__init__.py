"""Logical-volume write path: FTL-backed volumes over the host stack.

:class:`LogicalVolume` gives scenario tenants a logical block address
space (the paper's Section 3.1/4 host-side flash management story)
while every physical access still flows through the host interface,
splitter admission, the QoS policies and the read/write coalescers —
so SQL-scan / graph-stream style logical workloads coalesce and get
arbitrated without knowing their blocks are remapped.  Declared in
scenarios via :class:`~repro.api.spec.VolumeSpec` and
``TenantSpec(access="volume")``.
"""

from .volume import LogicalVolume

__all__ = ["LogicalVolume"]
