"""Logical volumes: host-side FTL state driving QoS-arbitrated I/O.

:class:`LogicalVolume` is the write-path subsystem sitting between
:class:`~repro.api.session.Session` tenants and the device: it rides the
shared log-structured substrate (:class:`~repro.ftl.core.FtlCore` — the
L2P :class:`~repro.ftl.mapping.PageMap`, the
:class:`~repro.ftl.allocator.BlockAllocator` (``sequential`` mode by
default, so logically consecutive writes land on stripe-adjacent
physical runs), validity tracking and greedy garbage collection) but,
unlike :class:`~repro.ftl.ftl.BlockDeviceFTL`, it performs **no device
I/O of its own**:

* foreground page reads/writes ride the *caller's*
  :class:`~repro.host.iface.HostInterface` flows (syscall/driver, page
  buffers, RPC, PCIe DMA, splitter admission, card command), so QoS
  policies, bandwidth accounting, request tracing and the read/write
  coalescers all apply without the workload knowing its blocks are
  remapped;
* GC relocation traffic flows through a dedicated low-priority
  splitter port (the PR-3 background-GC port pattern), so victim-tenant
  QoS results compose with everything the qos_gc scenarios measured.

Allocation (and GC, which runs inside the allocation critical section)
is serialized by a one-slot lock; the physical program itself happens
outside the lock, so ``queue_depth`` concurrent writers still fill the
device's queue — and, with sequential allocation, fill it with
stripe-adjacent runs the program coalescer merges.  Programs targeting
the *same block* are additionally gated into allocation order (which is
ascending page order) before they are issued, so QoS arbitration across
ports — foreground tenant ports vs. the low-priority GC port — can
never program a lower page after a higher one inside a block: the NAND
in-block order rule holds across commands, not just within one
multi-page command.  Both invariants live in the shared core, so the
driver FTL and RFS facades inherit them too.

Write amplification is accounted per tenant: each logical write bumps
its issuer's ``user_writes``; each GC relocation bumps the *owning*
tenant's ``gc_moved`` (ownership = the registered LBA window containing
the moved page), so ``write_amplification(tenant)`` reports
``(user + relocated) / user`` — the classic WA definition, per tenant.
"""

from __future__ import annotations

from typing import Optional

from ..flash import (
    BadBlockProgramError,
    PhysAddr,
    ProgramFailedError,
    UncorrectablePageError,
)
from ..ftl import FtlCore
from ..sim import Resource, Simulator

__all__ = ["LogicalVolume"]


class LogicalVolume:
    """FTL-backed logical block volume over one node's storage device.

    A thin shell over :class:`FtlCore`: this class owns the QoS-riding
    I/O (foreground flows through the caller's host interface, GC
    relocation through ``gc_port``, the dedicated :class:`~repro.flash.
    splitter.SplitterPort`) and the logical-capacity policy; the core
    owns every mapping, allocation, ordering and accounting decision.
    """

    #: Verify-after-write retry budget: hash-keyed injected failures
    #: roll fresh odds on every rewrite (different page, block, cycle),
    #: so this bound is unreachable at any sane failure rate — it only
    #: guards against a pathological all-ones fault plan.
    MAX_WRITE_ATTEMPTS = 8

    def __init__(self, sim: Simulator, device, gc_port,
                 overprovision: float = 0.25,
                 allocation: str = "sequential",
                 gc_low_watermark: int = 2,
                 name: str = "volume",
                 wear_leveling: str = "none",
                 wl_spread_threshold: int = 8):
        if not 0.0 <= overprovision < 1.0:
            raise ValueError(
                f"overprovision must be in [0, 1), got {overprovision}")
        self.sim = sim
        self.device = device
        self.geometry = device.geometry
        self.gc_port = gc_port
        self.name = name
        self.overprovision = overprovision
        self.core = FtlCore(sim, device, io=self, mode=allocation,
                            gc_low_watermark=gc_low_watermark, name=name,
                            wear_leveling=wear_leveling,
                            wl_spread_threshold=wl_spread_threshold)
        self.logical_pages = int(
            self.geometry.pages_per_node * (1.0 - overprovision))
        self.page_size = self.geometry.page_size
        self._lock = Resource(sim, capacity=1, name=f"{name}-alloc")
        #: when True, :meth:`stats` adds the reliability counter block
        #: — set by the session for FaultSpec-bearing scenarios (and
        #: here when wear leveling is on) so fault-free runs keep their
        #: exact pre-reliability JSON shape.
        self.reliability_stats_enabled = wear_leveling != "none"

    # -- shared-core state, re-exported ---------------------------------
    @property
    def map(self):
        return self.core.map

    @property
    def allocator(self):
        return self.core.allocator

    @property
    def allocation(self) -> str:
        return self.core.allocation

    @property
    def gc_low_watermark(self) -> int:
        return self.core.gc_low_watermark

    @property
    def user_writes(self) -> dict:
        return self.core.user_writes

    @property
    def gc_moved(self) -> dict:
        return self.core.gc_moved

    @property
    def total_programs(self) -> int:
        return self.core.total_programs

    @property
    def gc_runs(self) -> int:
        return self.core.gc_runs

    @property
    def gc_moved_pages(self) -> int:
        return self.core.gc_moved_pages

    @property
    def gc_stale_moves(self) -> int:
        return self.core.gc_stale_moves

    @property
    def prefilled_pages(self) -> int:
        return self.core.prefilled_pages

    @property
    def _full_blocks(self):
        return self.core._full_blocks

    @property
    def _programmed(self):
        return self.core._programmed

    @property
    def _program_next(self):
        return self.core._program_next

    def _note_program(self, addr: PhysAddr) -> None:
        self.core._note_program(addr)

    def _await_program_turn(self, addr: PhysAddr):
        yield from self.core.await_program_turn(addr)

    def _program_done(self, addr: PhysAddr) -> None:
        self.core.program_done(addr)

    # -- ownership / accounting -----------------------------------------
    def register_owner(self, start: int, size: int, tenant: str) -> None:
        """Claim the LBA window ``[start, start+size)`` for ``tenant``."""
        if start < 0 or size < 1 or start + size > self.logical_pages:
            raise ValueError(
                f"window [{start}, {start + size}) outside the volume's "
                f"{self.logical_pages} logical pages")
        self.core.register_owner(start, start + size, tenant)

    def owner_of(self, lpn: int) -> str:
        """The tenant owning ``lpn``'s window (the volume name if none)."""
        return self.core.owner_of(lpn)

    def write_amplification(self, tenant: Optional[str] = None) -> float:
        """Programs per user write: 1.0 = no GC traffic charged.

        With a ``tenant``, the per-tenant view — that tenant's user
        writes plus the relocations its pages caused; without, the
        volume-wide aggregate.
        """
        return self.core.write_amplification(tenant)

    def stats(self) -> dict:
        """JSON-ready counters for ``RunResult.metrics``."""
        core = self.core
        stats = {
            "logical_pages": self.logical_pages,
            "mapped_pages": core.map.mapped_count,
            "prefilled_pages": core.prefilled_pages,
            "free_blocks": core.allocator.free_blocks,
            "allocation": core.allocation,
            "overprovision": self.overprovision,
            "user_writes": dict(core.user_writes),
            "gc_moved": dict(core.gc_moved),
            "gc_runs": core.gc_runs,
            "gc_moved_pages": core.gc_moved_pages,
            "gc_stale_moves": core.gc_stale_moves,
            "total_programs": core.total_programs,
            "write_amplification": {
                tenant: core.write_amplification(tenant)
                for tenant in core.user_writes},
            "overall_write_amplification": core.write_amplification(),
        }
        if self.reliability_stats_enabled:
            stats["reliability"] = core.reliability_stats()
        return stats

    # -- mapping ---------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"LPN {lpn} out of range (volume has "
                f"{self.logical_pages} logical pages)")

    def physical_of(self, lpn: int) -> Optional[PhysAddr]:
        """Current physical location of a logical page (None=unmapped)."""
        self._check_lpn(lpn)
        return self.core.map.lookup(lpn)

    def prefill(self, start: int, count: int) -> None:
        """Map ``count`` logical pages from ``start``, instantly.

        Functional setup (zero simulated time, no device commands):
        the pages get real physical locations from the allocator —
        stripe-adjacent runs under sequential allocation — and count as
        programmed for GC purposes, but not as user writes, so
        write-amplification measures only the workload.
        """
        if count < 1:
            return
        self._check_lpn(start)
        self._check_lpn(start + count - 1)
        self.core.prefill(start, count)

    # -- foreground flows (DES generators) -------------------------------
    def read_flow(self, lpn: int, iface, software_path: bool,
                  request, interrupt: bool = True) -> bytes:
        """Read one logical page through ``iface``'s host read flow.

        Unmapped pages return the erased pattern without a device
        command (the FTL answers from the map, like a real driver).
        ``interrupt`` threads through to the host read flow for the
        coalesced-interrupt submission path.
        """
        self._check_lpn(lpn)
        addr = self.core.map.lookup(lpn)
        if addr is None:
            yield self.sim.timeout(0)
            return b"\xff" * self.page_size
        # Pin the block against GC's erase for the read's lifetime: the
        # mapping may move meanwhile (we then return the version that
        # was current at resolve time — ordinary out-of-place-FTL
        # semantics), but the physical page must not be erased under us.
        self.core.begin_read(addr)
        try:
            result = yield from iface._read_flow(addr, software_path,
                                                 request,
                                                 interrupt=interrupt)
        except UncorrectablePageError:
            # The only copy is gone (read-disturb / wear-out injection;
            # the card already retired the block).  Record the loss,
            # drop the mapping — unless a concurrent overwrite already
            # moved it, in which case nothing was lost — and hand back
            # the erased pattern so the workload keeps running; the
            # loss is surfaced through the reliability counters.
            if self.core.map.lookup(lpn) == addr:
                self.core.note_read_loss(lpn)
            return b"\xff" * self.page_size
        finally:
            self.core.end_read(addr)
        return result.data

    def write_flow(self, iface, lpn: int, data: bytes,
                   software_path: bool, request,
                   tenant: Optional[str] = None):
        """Write one logical page out-of-place through ``iface``.

        Allocation (and any GC it triggers) happens under the volume
        lock; the physical program runs outside it, so concurrent
        writers keep the device queue full with stripe-adjacent runs.
        The remap — old mapping invalidated, LPN pointed at the fresh
        page — happens only when the program *completes*: reads
        resolving meanwhile still see the previous version (never an
        unprogrammed page), and concurrent writes to one LPN settle
        last-completer-wins, exactly like unordered writes to one LBA
        on a real device.  Accounting follows completion too: a write
        whose program fails charges no user write, and its page is
        retired as programmed-and-invalid so the block still fills and
        stays GC-eligible.
        """
        self._check_lpn(lpn)
        owner = tenant or iface.tenant
        for _attempt in range(self.MAX_WRITE_ATTEMPTS):
            yield self._lock.request()
            try:
                addr = yield from self.core.allocate()
            finally:
                self._lock.release()
            yield from self.core.await_program_turn(addr)
            try:
                yield from iface._write_flow(addr, data, software_path,
                                             request)
            except (ProgramFailedError, BadBlockProgramError):
                # Verify-after-write caught an injected program
                # failure — or the card rejected the program because a
                # read marked the block grown-bad after the page was
                # allocated.  Either way the burned page retires, its
                # block goes suspect (retired at its next erase), and
                # the write recovers by rewriting to a fresh page — the
                # caller never sees the fault, so an acknowledged write
                # is never lost to a program failure.
                self.core.note_program_failure(addr)
                continue
            except BaseException:
                # The page is burned whether or not the program landed:
                # retire it (never mapped, so invalid) instead of
                # leaking it — the block keeps filling toward GC
                # eligibility.
                self.core.retire_page(addr)
                raise
            self.core.commit_write(lpn, addr, owner)
            return
        raise ProgramFailedError(
            f"write to LPN {lpn} failed {self.MAX_WRITE_ATTEMPTS} "
            f"programs in a row")

    def trim(self, lpn: int) -> None:
        """Invalidate a logical page (TRIM); space is reclaimed by GC."""
        self._check_lpn(lpn)
        self.core.trim(lpn)

    # -- garbage collection ----------------------------------------------
    def force_gc(self):
        """Run one GC pass explicitly (DES generator) -> bool reclaimed."""
        yield self._lock.request()
        try:
            reclaimed = yield from self.core.collect_once()
        finally:
            self._lock.release()
        return reclaimed

    # -- chip evacuation ---------------------------------------------------
    def evacuate_chip(self, card: int, bus: int, chip: int):
        """Evacuate a dying chip under QoS (DES generator).

        The chip leaves allocation first (new writes land elsewhere),
        then its blocks are evacuated one at a time — each block's
        relocation runs under the allocation lock like a GC pass, and
        the lock is released between blocks so foreground writers
        interleave with the evacuation instead of stalling behind it.
        Relocation I/O rides the volume's low-priority GC port, so the
        evacuation competes under the configured QoS policy.
        """
        yield self._lock.request()
        try:
            self.core.allocator.retire_chip(card, bus, chip)
        finally:
            self._lock.release()
        for block in range(self.geometry.blocks_per_chip):
            yield self._lock.request()
            try:
                yield from self.core.evacuate_block(card, bus, chip,
                                                    block)
            finally:
                self._lock.release()
        self.core.chips_evacuated += 1

    # -- GC relocation backend (FtlCore ``io``) ---------------------------
    def gc_read(self, addr: PhysAddr):
        result = yield from self.gc_port.read_page(addr)
        return result

    def gc_write(self, addr: PhysAddr, data: bytes):
        yield from self.gc_port.write_page(addr, data)

    def gc_erase(self, addr: PhysAddr):
        yield from self.gc_port.erase_block(addr)
