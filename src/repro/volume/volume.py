"""Logical volumes: host-side FTL state driving QoS-arbitrated I/O.

:class:`LogicalVolume` is the write-path subsystem sitting between
:class:`~repro.api.session.Session` tenants and the device: it owns the
host-side flash-management state of the paper's driver FTL ("a
full-fledged FTL implemented in the device driver, similar to Fusion
IO's driver", Section 4) — an L2P :class:`~repro.ftl.mapping.PageMap`,
a :class:`~repro.ftl.allocator.BlockAllocator` (``sequential`` mode by
default, so logically consecutive writes land on stripe-adjacent
physical runs), validity tracking and greedy garbage collection — but,
unlike :class:`~repro.ftl.ftl.BlockDeviceFTL`, it performs **no device
I/O of its own**:

* foreground page reads/writes ride the *caller's*
  :class:`~repro.host.iface.HostInterface` flows (syscall/driver, page
  buffers, RPC, PCIe DMA, splitter admission, card command), so QoS
  policies, bandwidth accounting, request tracing and the read/write
  coalescers all apply without the workload knowing its blocks are
  remapped;
* GC relocation traffic flows through a dedicated low-priority
  splitter port (the PR-3 background-GC port pattern), so victim-tenant
  QoS results compose with everything the qos_gc scenarios measured.

Allocation (and GC, which runs inside the allocation critical section)
is serialized by a one-slot lock; the physical program itself happens
outside the lock, so ``queue_depth`` concurrent writers still fill the
device's queue — and, with sequential allocation, fill it with
stripe-adjacent runs the program coalescer merges.  Programs targeting
the *same block* are additionally gated into allocation order (which is
ascending page order) before they are issued, so QoS arbitration across
ports — foreground tenant ports vs. the low-priority GC port — can
never program a lower page after a higher one inside a block: the NAND
in-block order rule holds across commands, not just within one
multi-page command.

Write amplification is accounted per tenant: each logical write bumps
its issuer's ``user_writes``; each GC relocation bumps the *owning*
tenant's ``gc_moved`` (ownership = the registered LBA window containing
the moved page), so ``write_amplification(tenant)`` reports
``(user + relocated) / user`` — the classic WA definition, per tenant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..flash import PhysAddr
from ..ftl import ALLOCATION_MODES, BlockAllocator, OutOfSpaceError, PageMap
from ..sim import Event, Resource, Simulator

__all__ = ["LogicalVolume"]

_BlockKey = Tuple[int, int, int, int, int]


class LogicalVolume:
    """FTL-backed logical block volume over one node's storage device.

    ``gc_port`` is the dedicated :class:`~repro.flash.splitter.
    SplitterPort` GC relocation traffic is injected through; foreground
    I/O is driven by whatever host interface the caller hands to
    :meth:`read_flow` / :meth:`write_flow`.
    """

    def __init__(self, sim: Simulator, device, gc_port,
                 overprovision: float = 0.25,
                 allocation: str = "sequential",
                 gc_low_watermark: int = 2,
                 name: str = "volume"):
        if not 0.0 <= overprovision < 1.0:
            raise ValueError(
                f"overprovision must be in [0, 1), got {overprovision}")
        if allocation not in ALLOCATION_MODES:
            raise ValueError(
                f"unknown allocation mode {allocation!r}; expected one "
                f"of {ALLOCATION_MODES}")
        if gc_low_watermark < 1:
            raise ValueError("gc_low_watermark must be >= 1")
        self.sim = sim
        self.device = device
        self.geometry = device.geometry
        self.gc_port = gc_port
        self.name = name
        self.allocation = allocation
        self.overprovision = overprovision
        self.gc_low_watermark = gc_low_watermark
        self.map = PageMap(self.geometry)
        self.allocator = BlockAllocator(self.geometry, device.badblocks,
                                        device.wear, node=device.node,
                                        mode=allocation)
        self.logical_pages = int(
            self.geometry.pages_per_node * (1.0 - overprovision))
        self.page_size = self.geometry.page_size
        self._lock = Resource(sim, capacity=1, name=f"{name}-alloc")
        self._full_blocks: Set[_BlockKey] = set()
        self._programmed: Dict[_BlockKey, int] = {}
        #: block -> next page expected to program; writers (foreground
        #: and GC alike) gate on it so same-block programs reach the
        #: chip in allocation order (the NAND in-block order rule).
        self._program_next: Dict[_BlockKey, int] = {}
        self._program_gates: Dict[_BlockKey, List[Event]] = {}
        #: block -> in-flight foreground reads; GC must not erase a
        #: block out from under one (it would read back erased bytes).
        self._reading: Dict[_BlockKey, int] = {}
        self._read_gates: Dict[_BlockKey, List[Event]] = {}
        #: (start, end, tenant) LBA ownership windows, in registration
        #: order; GC relocation is attributed to the owning tenant.
        self._owners: List[Tuple[int, int, str]] = []
        self.user_writes: Dict[str, int] = {}
        self.gc_moved: Dict[str, int] = {}
        self.total_programs = 0
        self.gc_runs = 0
        self.gc_moved_pages = 0
        #: relocations a foreground write/TRIM overtook mid-flight: the
        #: copy was programmed but discarded (never remapped).
        self.gc_stale_moves = 0
        self.prefilled_pages = 0

    # -- ownership / accounting -----------------------------------------
    def register_owner(self, start: int, size: int, tenant: str) -> None:
        """Claim the LBA window ``[start, start+size)`` for ``tenant``."""
        if start < 0 or size < 1 or start + size > self.logical_pages:
            raise ValueError(
                f"window [{start}, {start + size}) outside the volume's "
                f"{self.logical_pages} logical pages")
        self._owners.append((start, start + size, tenant))
        self.user_writes.setdefault(tenant, 0)
        self.gc_moved.setdefault(tenant, 0)

    def owner_of(self, lpn: int) -> str:
        """The tenant owning ``lpn``'s window (the volume name if none)."""
        for start, end, tenant in self._owners:
            if start <= lpn < end:
                return tenant
        return self.name

    def write_amplification(self, tenant: Optional[str] = None) -> float:
        """Programs per user write: 1.0 = no GC traffic charged.

        With a ``tenant``, the per-tenant view — that tenant's user
        writes plus the relocations its pages caused; without, the
        volume-wide aggregate.
        """
        if tenant is not None:
            user = self.user_writes.get(tenant, 0)
            if user == 0:
                return 1.0
            return (user + self.gc_moved.get(tenant, 0)) / user
        user = sum(self.user_writes.values())
        if user == 0:
            return 1.0
        return (user + self.gc_moved_pages) / user

    def stats(self) -> dict:
        """JSON-ready counters for ``RunResult.metrics``."""
        return {
            "logical_pages": self.logical_pages,
            "mapped_pages": self.map.mapped_count,
            "prefilled_pages": self.prefilled_pages,
            "free_blocks": self.allocator.free_blocks,
            "allocation": self.allocation,
            "overprovision": self.overprovision,
            "user_writes": dict(self.user_writes),
            "gc_moved": dict(self.gc_moved),
            "gc_runs": self.gc_runs,
            "gc_moved_pages": self.gc_moved_pages,
            "gc_stale_moves": self.gc_stale_moves,
            "total_programs": self.total_programs,
            "write_amplification": {
                tenant: self.write_amplification(tenant)
                for tenant in self.user_writes},
            "overall_write_amplification": self.write_amplification(),
        }

    # -- mapping ---------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"LPN {lpn} out of range (volume has "
                f"{self.logical_pages} logical pages)")

    def physical_of(self, lpn: int) -> Optional[PhysAddr]:
        """Current physical location of a logical page (None=unmapped)."""
        self._check_lpn(lpn)
        return self.map.lookup(lpn)

    @staticmethod
    def _key(addr: PhysAddr) -> _BlockKey:
        return (addr.node, addr.card, addr.bus, addr.chip, addr.block)

    def _note_program(self, addr: PhysAddr) -> None:
        """Record one programmed page; track fully-programmed blocks.

        Blocks become GC-eligible only once *every* allocated page has
        actually programmed, so GC never relocates (or erases under) a
        page whose program is still in flight.
        """
        self.map.note_programmed(addr)
        key = self._key(addr)
        count = self._programmed.get(key, 0) + 1
        if count >= self.geometry.pages_per_block:
            self._programmed.pop(key, None)
            self._full_blocks.add(key)
        else:
            self._programmed[key] = count

    def _await_program_turn(self, addr: PhysAddr):
        """Hold a program until every earlier page of its block has
        programmed (DES generator).

        The allocator hands out a block's pages in ascending order, but
        the programs themselves race through independently-arbitrated
        ports (tenant QoS vs. the low-priority GC port).  This gate
        restores allocation order per block before the command is
        issued, so the NAND in-block order rule survives arbitration.
        Same-block pages are a full stripe apart in allocation order,
        so the gate almost never binds at realistic queue depths.
        """
        key = self._key(addr)
        while self._program_next.get(key, 0) < addr.page:
            gate = Event(self.sim)
            self._program_gates.setdefault(key, []).append(gate)
            yield gate

    def _program_done(self, addr: PhysAddr) -> None:
        """Advance the block's program cursor and wake gated writers."""
        key = self._key(addr)
        if addr.page >= self._program_next.get(key, 0):
            self._program_next[key] = addr.page + 1
        for gate in self._program_gates.pop(key, ()):
            if not gate.triggered:
                gate.succeed()

    def prefill(self, start: int, count: int) -> None:
        """Map ``count`` logical pages from ``start``, instantly.

        Functional setup (zero simulated time, no device commands):
        the pages get real physical locations from the allocator —
        stripe-adjacent runs under sequential allocation — and count as
        programmed for GC purposes, but not as user writes, so
        write-amplification measures only the workload.
        """
        for lpn in range(start, start + count):
            self._check_lpn(lpn)
            addr = self.allocator.next_page()
            if addr is None:
                raise OutOfSpaceError(
                    f"prefill exhausted the device at LPN {lpn}")
            self.map.map_page(lpn, addr)
            self._note_program(addr)
            self._program_done(addr)
            self.prefilled_pages += 1

    # -- foreground flows (DES generators) -------------------------------
    def read_flow(self, lpn: int, iface, software_path: bool,
                  request, interrupt: bool = True) -> bytes:
        """Read one logical page through ``iface``'s host read flow.

        Unmapped pages return the erased pattern without a device
        command (the FTL answers from the map, like a real driver).
        ``interrupt`` threads through to the host read flow for the
        coalesced-interrupt submission path.
        """
        self._check_lpn(lpn)
        addr = self.map.lookup(lpn)
        if addr is None:
            yield self.sim.timeout(0)
            return b"\xff" * self.page_size
        # Pin the block against GC's erase for the read's lifetime: the
        # mapping may move meanwhile (we then return the version that
        # was current at resolve time — ordinary out-of-place-FTL
        # semantics), but the physical page must not be erased under us.
        key = self._key(addr)
        self._reading[key] = self._reading.get(key, 0) + 1
        try:
            result = yield from iface._read_flow(addr, software_path,
                                                 request,
                                                 interrupt=interrupt)
        finally:
            remaining = self._reading[key] - 1
            if remaining:
                self._reading[key] = remaining
            else:
                del self._reading[key]
                for gate in self._read_gates.pop(key, ()):
                    if not gate.triggered:
                        gate.succeed()
        return result.data

    def write_flow(self, iface, lpn: int, data: bytes,
                   software_path: bool, request,
                   tenant: Optional[str] = None):
        """Write one logical page out-of-place through ``iface``.

        Allocation (and any GC it triggers) happens under the volume
        lock; the physical program runs outside it, so concurrent
        writers keep the device queue full with stripe-adjacent runs.
        The remap — old mapping invalidated, LPN pointed at the fresh
        page — happens only when the program *completes*: reads
        resolving meanwhile still see the previous version (never an
        unprogrammed page), and concurrent writes to one LPN settle
        last-completer-wins, exactly like unordered writes to one LBA
        on a real device.  Accounting follows completion too: a write
        whose program fails charges no user write, and its page is
        retired as programmed-and-invalid so the block still fills and
        stays GC-eligible.
        """
        self._check_lpn(lpn)
        owner = tenant or iface.tenant
        yield self._lock.request()
        try:
            yield from self._ensure_space()
            addr = self.allocator.next_page()
            if addr is None:
                raise OutOfSpaceError("no free pages after GC")
        finally:
            self._lock.release()
        yield from self._await_program_turn(addr)
        try:
            yield from iface._write_flow(addr, data, software_path,
                                         request)
        except BaseException:
            # The page is burned whether or not the program landed:
            # retire it (never mapped, so invalid) instead of leaking
            # it — the block keeps filling toward GC eligibility.
            self._note_program(addr)
            self._program_done(addr)
            raise
        self.map.map_page(lpn, addr)
        self._note_program(addr)
        self._program_done(addr)
        self.user_writes[owner] = self.user_writes.get(owner, 0) + 1
        self.total_programs += 1

    def trim(self, lpn: int) -> None:
        """Invalidate a logical page (TRIM); space is reclaimed by GC."""
        self._check_lpn(lpn)
        self.map.unmap(lpn)

    # -- garbage collection ----------------------------------------------
    def _ensure_space(self):
        """Collect until the free-block floor holds (lock must be held)."""
        while (self.allocator.free_blocks < self.gc_low_watermark
               and self._full_blocks):
            freed = yield from self._collect_once()
            if not freed:
                break

    def _addr_of(self, key: _BlockKey) -> PhysAddr:
        node, card, bus, chip, block = key
        return PhysAddr(node=node, card=card, bus=bus, chip=chip,
                        block=block, page=0)

    def _collect_once(self):
        """Greedy GC through the dedicated port: relocate the
        fewest-valid full block, erase it.  Returns True if reclaimed.

        Relocation never races foreground completions: the mapping is
        re-checked after the relocation read and again after the
        relocation write, so an LPN a foreground write remapped (or a
        TRIM invalidated) while its copy was in flight keeps the newer
        state — last-completer-wins is decided by the *map*, never by
        GC overwriting it with stale data.
        """
        victim_key = min(
            self._full_blocks,
            key=lambda key: (self.map.block_state(
                self._addr_of(key)).valid_count, key),
            default=None)
        if victim_key is None:
            return False
        victim = self._addr_of(victim_key)
        state = self.map.block_state(victim)
        if state.valid_count >= self.geometry.pages_per_block:
            # Every page still valid: nothing to reclaim anywhere.
            return False
        self._full_blocks.discard(victim_key)
        self.gc_runs += 1
        for page_addr in list(self.map.valid_pages_of(victim)):
            lpn = self.map.reverse(page_addr)
            if lpn is None:
                continue
            result = yield from self.gc_port.read_page(page_addr)
            if self.map.reverse(page_addr) != lpn:
                # A foreground write or TRIM overtook the relocation
                # while the read was in flight: nothing left to move.
                continue
            dest = self.allocator.next_page()
            if dest is None:
                raise OutOfSpaceError("GC found no destination page")
            yield from self._await_program_turn(dest)
            try:
                yield from self.gc_port.write_page(dest, result.data)
            finally:
                self._note_program(dest)
                self._program_done(dest)
            self.total_programs += 1
            if self.map.reverse(page_addr) != lpn:
                # Overtaken during the program: the copy at ``dest`` is
                # stale.  Keep the newer mapping (or the TRIM) — never
                # clobber it with relocated data — and leave ``dest``
                # programmed-and-invalid for a later GC pass.
                self.gc_stale_moves += 1
                continue
            self.map.map_page(lpn, dest)
            owner = self.owner_of(lpn)
            self.gc_moved[owner] = self.gc_moved.get(owner, 0) + 1
            self.gc_moved_pages += 1
        # Erase barrier: foreground reads that resolved a page of this
        # block before the relocation must finish first — erasing under
        # them would hand back erased bytes instead of their data.
        while self._reading.get(victim_key):
            gate = Event(self.sim)
            self._read_gates.setdefault(victim_key, []).append(gate)
            yield gate
        yield from self.gc_port.erase_block(victim)
        self.map.drop_block(victim)
        self._programmed.pop(victim_key, None)
        # The block only became a victim once fully programmed, so no
        # writer can still be gated on it; reset its program cursor for
        # the next time the allocator opens it.
        self._program_next.pop(victim_key, None)
        self.allocator.release_block(victim)
        return True

    def force_gc(self):
        """Run one GC pass explicitly (DES generator) -> bool reclaimed."""
        yield self._lock.request()
        try:
            reclaimed = yield from self._collect_once()
        finally:
            self._lock.release()
        return reclaimed
