"""Reporting: power/FPGA-resource models (Tables 1-3) and formatting.

* :mod:`~repro.reporting.resources` — parametric FPGA resource model.
* :mod:`~repro.reporting.power` — node/cluster power, RAMCloud sizing.
* :mod:`~repro.reporting.tables` — ASCII tables/series for benchmarks.
"""

from .power import NodePower, PowerModel, ramcloud_equivalent
from .resources import (
    ModuleUsage,
    artix7_flash_controller,
    fits_artix7,
    fits_virtex7,
    totals,
    virtex7_host,
)
from .tables import banner, format_series, format_table

__all__ = [
    "NodePower",
    "PowerModel",
    "ramcloud_equivalent",
    "ModuleUsage",
    "artix7_flash_controller",
    "virtex7_host",
    "totals",
    "fits_artix7",
    "fits_virtex7",
    "banner",
    "format_series",
    "format_table",
]
