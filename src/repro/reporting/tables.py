"""ASCII table/series formatting for benchmark output.

Every benchmark prints the same rows or series the paper reports, with
the paper's reference value alongside the simulator's measurement, so a
reader can eyeball the reproduction without opening the PDF.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "banner"]


def banner(title: str) -> str:
    """A section header for benchmark output."""
    bar = "=" * max(60, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    out = []
    if title:
        out.append(banner(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_series(x_label: str, xs: Sequence, series: dict,
                  title: Optional[str] = None) -> str:
    """Render named series against a shared x axis (figure data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _cell(value) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
