"""Power model: Table 3 and the appliance-vs-RAMCloud comparison.

Table 3 sums datasheet power: VC707 board 30 W, the two custom flash
boards 10 W, the Xeon host 200 W — 240 W per node, i.e. "BlueDBM adds
less than 20% of power consumption to the system".

The conclusion's economic claim — "an order of magnitude cheaper and
less power hungry than a cloud based system with enough DRAM to
accommodate 10TB-20TB of data" — is reproduced by
:func:`ramcloud_equivalent`: hosting the same dataset in DRAM requires
~50x more servers (50 GB DRAM each vs 1 TB flash each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PowerModel", "NodePower", "ramcloud_equivalent"]

GB = 1_000_000_000
TB = 1_000 * GB


@dataclass(frozen=True)
class NodePower:
    """Per-node component power in watts (Table 3 defaults)."""

    vc707_w: float = 30.0
    flash_boards_w: float = 10.0   # both custom flash cards
    xeon_server_w: float = 200.0

    @property
    def bluedbm_added_w(self) -> float:
        """What the BlueDBM storage device adds to a plain server."""
        return self.vc707_w + self.flash_boards_w

    @property
    def total_w(self) -> float:
        return self.bluedbm_added_w + self.xeon_server_w

    @property
    def added_fraction(self) -> float:
        """BlueDBM's share of node power (paper: < 20 %)."""
        return self.bluedbm_added_w / self.total_w

    def rows(self) -> Dict[str, float]:
        """Table 3's rows."""
        return {
            "VC707": self.vc707_w,
            "Flash Board x2": self.flash_boards_w,
            "Xeon Server": self.xeon_server_w,
            "Node Total": self.total_w,
        }


class PowerModel:
    """Cluster-level power accounting."""

    def __init__(self, n_nodes: int = 20,
                 node: NodePower = NodePower(),
                 flash_per_node_bytes: int = TB):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.node = node
        self.flash_per_node_bytes = flash_per_node_bytes

    @property
    def cluster_w(self) -> float:
        return self.n_nodes * self.node.total_w

    @property
    def capacity_bytes(self) -> int:
        return self.n_nodes * self.flash_per_node_bytes

    def watts_per_tb(self) -> float:
        return self.cluster_w / (self.capacity_bytes / TB)


def ramcloud_equivalent(dataset_bytes: int,
                        dram_per_server_bytes: int = 50 * GB,
                        server_w: float = 200.0,
                        dram_overhead_w: float = 50.0) -> Dict[str, float]:
    """Size a RAMCloud-style cluster hosting ``dataset_bytes`` in DRAM.

    Returns server count and power, for comparison against a BlueDBM
    rack of the same capacity (the Section 1/8 cost argument: ~100
    servers with 128-256 GB DRAM for 5-20 TB datasets).
    """
    if dataset_bytes < 1:
        raise ValueError("dataset must be non-empty")
    servers = -(-dataset_bytes // dram_per_server_bytes)  # ceil
    return {
        "servers": float(servers),
        "power_w": servers * (server_w + dram_overhead_w),
    }
