"""FPGA resource model: re-derives Tables 1 and 2 from design parameters.

The paper's resource tables are static inventories of the synthesized
design.  We reproduce them as a *parametric model*: per-module base
costs (calibrated to the paper's numbers for the paper's configuration)
scaled by the configuration knobs — buses per card, DMA engines, network
ports, page buffers.  Reconfigure the appliance and the model tells you
whether it still fits the parts, which is the question the tables answer.

Paper reference points (Tables 1-2):

* Artix-7 flash controller: bus controller x8 at 7131 LUTs each (ECC
  decoder x2, scoreboard, PHY, ECC encoder x2 inside), SerDes 3061;
  total 75225 LUTs (56 %), 62801 regs, 181 BRAM (50 %).
* Virtex-7 host: flash interface 1389, network interface 29591, DRAM
  interface 11045, host interface 88376; total 135271 LUTs (45 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..flash import DEFAULT_GEOMETRY, FlashGeometry
from ..host import HostConfig

__all__ = ["ModuleUsage", "artix7_flash_controller", "virtex7_host",
           "ARTIX7_LUTS", "ARTIX7_REGS", "ARTIX7_BRAM",
           "VIRTEX7_LUTS", "VIRTEX7_REGS"]

# Device capacities (XC7A200T and XC7VX485T).
ARTIX7_LUTS = 134_600
ARTIX7_REGS = 269_200
ARTIX7_BRAM = 365
VIRTEX7_LUTS = 303_600
VIRTEX7_REGS = 607_200
VIRTEX7_RAMB36 = 1_030
VIRTEX7_RAMB18 = 2_060


@dataclass(frozen=True)
class ModuleUsage:
    """One row of a resource table.

    ``submodule`` rows are informational breakdowns of a parent row
    (e.g. the ECC decoder inside the bus controller) and are excluded
    from totals.
    """

    name: str
    count: int
    luts: int
    registers: int
    bram: int = 0
    submodule: bool = False

    @property
    def total_luts(self) -> int:
        return self.count * self.luts

    @property
    def total_registers(self) -> int:
        return self.count * self.registers

    @property
    def total_bram(self) -> int:
        return self.count * self.bram


# -- Table 1: flash controller on the Artix-7 -----------------------------
# Per-instance costs from the paper's table.
_ECC_DECODER = ModuleUsage("ECC Decoder", 2, 1790, 1233, 2,
                           submodule=True)
_SCOREBOARD = ModuleUsage("Scoreboard", 1, 1149, 780, 0, submodule=True)
_PHY = ModuleUsage("PHY", 1, 1635, 607, 0, submodule=True)
_ECC_ENCODER = ModuleUsage("ECC Encoder", 2, 565, 222, 0, submodule=True)
_SERDES = ModuleUsage("SerDes", 1, 3061, 3463, 13)

# A bus controller is its submodules plus scheduling/buffer glue; the glue
# constant makes the per-instance total match the paper's 7131 LUTs.
_BUS_GLUE_LUTS = 7131 - (2 * 1790 + 1149 + 1635 + 2 * 565)
_BUS_GLUE_REGS = 4870 - (2 * 1233 + 780 + 607 + 2 * 222)
_BUS_GLUE_BRAM = 21 - (2 * 2)

# Infrastructure (clocking, FMC, config, AXI glue) = paper total minus the
# explicitly listed modules, for the default 8-bus card.
_ARTIX_INFRA_LUTS = 75_225 - (8 * 7131 + 3061)
_ARTIX_INFRA_REGS = 62_801 - (8 * 4870 + 3463)
_ARTIX_INFRA_BRAM = 181 - (8 * 21 + 13)


def artix7_flash_controller(
        geometry: FlashGeometry = DEFAULT_GEOMETRY) -> List[ModuleUsage]:
    """Table 1 rows for a card with ``geometry.buses_per_card`` buses."""
    buses = geometry.buses_per_card
    bus_controller = ModuleUsage(
        "Bus Controller", buses,
        2 * _ECC_DECODER.luts + _SCOREBOARD.luts + _PHY.luts
        + 2 * _ECC_ENCODER.luts + _BUS_GLUE_LUTS,
        2 * _ECC_DECODER.registers + _SCOREBOARD.registers
        + _PHY.registers + 2 * _ECC_ENCODER.registers + _BUS_GLUE_REGS,
        2 * _ECC_DECODER.bram + _BUS_GLUE_BRAM)
    rows = [
        bus_controller,
        _ECC_DECODER,
        _SCOREBOARD,
        _PHY,
        _ECC_ENCODER,
        _SERDES,
        ModuleUsage("Infrastructure", 1, _ARTIX_INFRA_LUTS,
                    _ARTIX_INFRA_REGS, _ARTIX_INFRA_BRAM),
    ]
    return rows


# -- Table 2: host-side design on the Virtex-7 -----------------------------
_FLASH_IF_LUTS_PER_CARD = 1389 // 2       # aurora endpoint per card
_NET_IF_LUTS_PER_PORT = 29_591 // 8       # switch + SerDes per port
_NET_IF_REGS_PER_PORT = 27_509 // 8
_DRAM_IF = ModuleUsage("DRAM Interface", 1, 11_045, 7_937, 0)
# Host interface: Connectal portal + DMA engines + per-buffer FIFOs.
_HOST_BASE_LUTS = 40_000
_HOST_PER_ENGINE_LUTS = (88_376 - _HOST_BASE_LUTS) // 8  # 4 rd + 4 wr
_HOST_BASE_REGS = 20_000
_HOST_PER_ENGINE_REGS = (46_065 - _HOST_BASE_REGS) // 8
_HOST_RAMB36_PER_BUFFER = 169 / 256.0     # 128 read + 128 write buffers
# Clocking/config/AXI infrastructure: the paper's totals (135271 LUTs,
# 135897 regs, 224 RAMB36) exceed the listed modules by this much.
_VIRTEX_INFRA = ModuleUsage(
    "Infrastructure", 1,
    135_271 - (1388 + 29_584 + 11_045 + 88_376),
    135_897 - (2139 + 27_504 + 7_937 + 46_064),
    224 - 169)


def virtex7_host(geometry: FlashGeometry = DEFAULT_GEOMETRY,
                 host: HostConfig = HostConfig(),
                 network_ports: int = 8) -> List[ModuleUsage]:
    """Table 2 rows for the host FPGA design."""
    engines = 2 * host.dma_engines
    buffers = host.read_buffers + host.write_buffers
    rows = [
        ModuleUsage("Flash Interface", 1,
                    _FLASH_IF_LUTS_PER_CARD * geometry.cards_per_node,
                    2139 * geometry.cards_per_node // 2, 0),
        ModuleUsage("Network Interface", 1,
                    _NET_IF_LUTS_PER_PORT * network_ports,
                    _NET_IF_REGS_PER_PORT * network_ports, 0),
        _DRAM_IF,
        ModuleUsage("Host Interface", 1,
                    _HOST_BASE_LUTS + _HOST_PER_ENGINE_LUTS * engines,
                    _HOST_BASE_REGS + _HOST_PER_ENGINE_REGS * engines,
                    int(round(_HOST_RAMB36_PER_BUFFER * buffers))),
        _VIRTEX_INFRA,
    ]
    return rows


def totals(rows: List[ModuleUsage]) -> ModuleUsage:
    """Sum a table's top-level rows into a Total row."""
    top = [r for r in rows if not r.submodule]
    return ModuleUsage(
        "Total", 1,
        sum(r.total_luts for r in top),
        sum(r.total_registers for r in top),
        sum(r.total_bram for r in top))


def fits_artix7(rows: List[ModuleUsage]) -> bool:
    """Does the flash controller design fit its Artix-7?"""
    t = totals(rows)
    return (t.total_luts <= ARTIX7_LUTS
            and t.total_registers <= ARTIX7_REGS
            and t.total_bram <= ARTIX7_BRAM)


def fits_virtex7(rows: List[ModuleUsage]) -> bool:
    """Does the host design leave room for accelerators (<60% LUTs)?"""
    t = totals(rows)
    return t.total_luts <= 0.6 * VIRTEX7_LUTS
