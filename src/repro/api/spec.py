"""Declarative scenario specs: the front door to the whole simulator.

Every table, figure and extension in this repo is some combination of a
*machine* (geometry, timings, host, network, topology, node count) and a
*workload* (who issues which reads, how hard, under which QoS policy).
Before this module existed, each benchmark and example hand-assembled
``Simulator`` + ``BlueDBMCluster`` + ad-hoc closed-loop drivers; now the
combination is data: a frozen :class:`ScenarioSpec` that validates at
construction (not mid-simulation), round-trips through plain dicts /
JSON, and is executed by :class:`~repro.api.session.Session`.

The specs compose the existing frozen config dataclasses —
:class:`~repro.flash.FlashGeometry`, :class:`~repro.flash.FlashTiming`,
:class:`~repro.host.HostConfig`, :class:`~repro.network.NetworkConfig` —
and add the pieces that used to live in benchmark files: topology
choice, tenant mixes, per-tenant QoS parameters and RNG discipline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..dvol.placement import PLACEMENT_MODES
from ..faults import FaultPlan
from ..flash import FlashGeometry, FlashTiming
from ..ftl import ALLOCATION_MODES, WEAR_LEVELING_MODES
from ..host import HostConfig
from ..io import POLICIES
from ..network import (
    NetworkConfig,
    Topology,
    fat_tree,
    fully_connected,
    line,
    mesh2d,
    ring,
    star,
)

__all__ = [
    "BENCH_GEOMETRY",
    "ONE_CARD_GEOMETRY",
    "THROTTLED_TIMING",
    "TopologySpec",
    "TenantSpec",
    "VolumeSpec",
    "DistributedVolumeSpec",
    "FaultSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "SpecError",
]

#: The shared scaled-down-but-faithful experiment geometry: the paper's
#: bus/chip structure (8x8 per card, two cards, 8 KB pages) with fewer
#: blocks so setup stays fast.  Bandwidth and latency are rate-based, so
#: results match the full-size :data:`~repro.flash.DEFAULT_GEOMETRY`.
#: Every benchmark, example and the CLI demo build on this one spec.
BENCH_GEOMETRY = FlashGeometry(buses_per_card=8, chips_per_bus=8,
                               blocks_per_chip=16, pages_per_block=32,
                               page_size=8192, cards_per_node=2)

#: Single flash board (Figure 21's setup): 8 buses -> 1.2 GB/s ceiling.
ONE_CARD_GEOMETRY = dataclasses.replace(BENCH_GEOMETRY, cards_per_node=1)

#: Throttles the node to the commodity SSD's 600 MB/s by capping each
#: card's aurora link at 0.3 GB/s (Section 7.1's "Throttled BlueDBM").
THROTTLED_TIMING = FlashTiming(aurora_bytes_per_ns=0.3)


class SpecError(ValueError):
    """A scenario/workload spec is invalid (raised at construction)."""


# ----------------------------------------------------------------------
# serialization helpers
# ----------------------------------------------------------------------
def _opt_dict(value) -> Optional[dict]:
    return None if value is None else dataclasses.asdict(value)


def _opt_load(cls, value):
    if value is None:
        return None
    if isinstance(value, cls):
        return value
    return cls(**value)


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
#: kind -> the topology builder's extra argument names.
_TOPOLOGY_KINDS = ("auto", "ring", "line", "star", "mesh2d",
                   "fully_connected", "fat_tree", "custom")


@dataclass(frozen=True)
class TopologySpec:
    """How the storage network wires the nodes together.

    ``auto`` keeps the cluster's historical default (a 4-lane ring for
    three or more nodes, a line otherwise).  ``custom`` wires exactly
    the cable list in ``links`` — this is how Figure 13 gives each
    remote node its own parallel serial lanes.
    """

    kind: str = "auto"
    lanes: int = 1
    links: Tuple[Tuple[int, int], ...] = ()
    rows: int = 0
    cols: int = 0
    n_spine: int = 0
    n_leaf: int = 0

    def __post_init__(self):
        if self.kind not in _TOPOLOGY_KINDS:
            raise SpecError(f"unknown topology kind {self.kind!r}; "
                            f"expected one of {_TOPOLOGY_KINDS}")
        if self.lanes < 1:
            raise SpecError(f"lanes must be >= 1, got {self.lanes}")
        if self.kind == "custom" and not self.links:
            raise SpecError("custom topology needs at least one link")
        if self.kind == "mesh2d" and (self.rows < 1 or self.cols < 1):
            raise SpecError("mesh2d topology needs rows and cols >= 1")
        if self.kind == "fat_tree" and (self.n_spine < 1
                                        or self.n_leaf < 1):
            raise SpecError("fat_tree topology needs n_spine/n_leaf >= 1")
        # Parameters that the chosen kind would silently ignore are
        # spec errors: a 4-lane star does not exist, so saying one must
        # not construct a 1-lane star that *looks* 4-lane.
        ignored = []
        if self.lanes != 1 and self.kind not in ("ring", "line"):
            ignored.append("lanes")
        if self.links and self.kind != "custom":
            ignored.append("links")
        if (self.rows or self.cols) and self.kind != "mesh2d":
            ignored.append("rows/cols")
        if (self.n_spine or self.n_leaf) and self.kind != "fat_tree":
            ignored.append("n_spine/n_leaf")
        if ignored:
            raise SpecError(
                f"topology kind {self.kind!r} does not use "
                f"{', '.join(ignored)}")
        # Normalize links (JSON round-trips lists; specs store tuples).
        object.__setattr__(self, "links",
                           tuple((int(a), int(b)) for a, b in self.links))

    def build(self, n_nodes: int) -> Optional[Topology]:
        """Materialize the :class:`~repro.network.Topology` (None=auto)."""
        if self.kind == "auto":
            return None
        if self.kind == "ring":
            topo = ring(n_nodes, lanes=self.lanes)
        elif self.kind == "line":
            topo = line(n_nodes, lanes=self.lanes)
        elif self.kind == "star":
            topo = star(n_nodes)
        elif self.kind == "fully_connected":
            topo = fully_connected(n_nodes)
        elif self.kind == "mesh2d":
            # mesh2d takes (width, height): a row holds ``cols`` nodes.
            topo = mesh2d(self.cols, self.rows)
        elif self.kind == "fat_tree":
            topo = fat_tree(n_spine=self.n_spine, n_leaf=self.n_leaf)
        else:
            topo = Topology(n_nodes)
            for a, b in self.links:
                if not (0 <= a < n_nodes and 0 <= b < n_nodes):
                    raise SpecError(
                        f"link ({a}, {b}) outside 0..{n_nodes - 1}")
                topo.connect(a, b)
        # Sized builders (mesh2d, fat_tree) carry their own node count;
        # it must cover the scenario's, or remote accesses would die
        # mid-simulation on a node with no network attachment.
        if topo.n_nodes != n_nodes:
            raise SpecError(
                f"{self.kind} topology spans {topo.n_nodes} nodes but "
                f"the scenario has {n_nodes}")
        return topo

    def to_dict(self) -> dict:
        return {"kind": self.kind, "lanes": self.lanes,
                "links": [list(l) for l in self.links],
                "rows": self.rows, "cols": self.cols,
                "n_spine": self.n_spine, "n_leaf": self.n_leaf}

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        data = dict(data)
        data["links"] = tuple(tuple(l) for l in data.get("links", ()))
        return cls(**data)


# ----------------------------------------------------------------------
# volume
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VolumeSpec:
    """One FTL-backed :class:`~repro.volume.LogicalVolume` per node.

    Tenants with ``access="volume"`` address *logical* pages; the
    volume's host-side FTL maps them onto physical flash.

    * ``overprovision`` — physical capacity held back as GC spare
      (logical capacity is ``pages_per_node * (1 - overprovision)``);
    * ``allocation`` — ``sequential`` (stripe-adjacent write points,
      the mode that makes logically-sequential I/O coalescible) or
      ``striped`` (the allocator's plain chip rotation);
    * ``fill`` — fraction of each volume tenant's LBA window mapped
      before the workload starts (functional prefill: real physical
      locations, zero simulated time) — the steady-state utilization
      knob the ``gc_steady`` experiment sweeps;
    * ``gc_low_watermark`` — free-block floor below which writes
      trigger greedy GC;
    * ``gc_priority`` / ``gc_weight`` / ``gc_rate_mbps`` /
      ``gc_burst_kb`` — QoS identity of the dedicated splitter port GC
      relocation traffic rides (the PR-3 background-GC port pattern,
      admission label ``volume-gc``).
    """

    overprovision: float = 0.25
    allocation: str = "sequential"
    fill: float = 0.0
    gc_low_watermark: int = 2
    gc_priority: int = 0
    gc_weight: Optional[float] = None
    gc_rate_mbps: Optional[float] = None
    gc_burst_kb: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.overprovision < 1.0:
            raise SpecError(f"volume overprovision must be in [0, 1), "
                            f"got {self.overprovision}")
        if self.allocation not in ALLOCATION_MODES:
            raise SpecError(
                f"unknown volume allocation mode {self.allocation!r}; "
                f"expected one of {ALLOCATION_MODES}")
        if not 0.0 <= self.fill <= 1.0:
            raise SpecError(f"volume fill must be in [0, 1], "
                            f"got {self.fill}")
        if self.gc_low_watermark < 1:
            raise SpecError("volume gc_low_watermark must be >= 1")
        if self.gc_weight is not None and self.gc_weight <= 0:
            raise SpecError(f"volume gc_weight must be > 0, "
                            f"got {self.gc_weight}")
        if self.gc_rate_mbps is not None and self.gc_rate_mbps <= 0:
            raise SpecError(f"volume gc_rate_mbps must be > 0, "
                            f"got {self.gc_rate_mbps}")
        if self.gc_burst_kb is not None:
            if self.gc_burst_kb <= 0:
                raise SpecError(f"volume gc_burst_kb must be > 0, "
                                f"got {self.gc_burst_kb}")
            if self.gc_rate_mbps is None:
                raise SpecError("volume gc_burst_kb without gc_rate_mbps "
                                "has no meaning (a burst caps a rate)")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VolumeSpec":
        return cls(**data)


# ----------------------------------------------------------------------
# distributed volume
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DistributedVolumeSpec:
    """One cluster-wide :class:`~repro.dvol.ShardedVolume`.

    Tenants with ``access="dvol"`` address one logical LPN space that
    the placement planner stripes (or hashes) across ``shards``
    per-node :class:`~repro.volume.LogicalVolume` shards; pages on
    other nodes are reached through the per-node routing tier over the
    storage network.

    * ``shards`` — how many nodes hold a shard (nodes ``0 ..
      shards-1``; must not exceed the scenario's node count);
    * ``placement`` — ``striped`` (round-robin chunk dealing) or
      ``hashed`` (keyed per-round permutation; decorrelates shard load
      for strided access while covering every shard each round);
    * ``stripe_chunk_pages`` — consecutive LPNs kept on one shard; the
      run length both coalescers can merge;
    * ``remote_coalesce`` — stage remote reads in a
      :class:`~repro.dvol.RemoteCoalescer` at the destination's
      network service port, merging same-source stripe-adjacent runs
      into multi-page commands (up to ``remote_coalesce_max_pages``);
    * ``remote_in_flight`` — the service port's slot cap; small values
      make the coalescer's slot pacing bind (arrivals accumulate and
      merge while slots are busy);
    * ``volume`` — the per-shard :class:`VolumeSpec` knobs
      (overprovision, allocation, fill, GC QoS), applied identically
      to every shard.
    """

    shards: int = 2
    placement: str = "striped"
    stripe_chunk_pages: int = 8
    hash_seed: int = 0
    remote_coalesce: bool = False
    remote_coalesce_max_pages: int = 8
    remote_in_flight: int = 8
    volume: VolumeSpec = field(default_factory=VolumeSpec)

    def __post_init__(self):
        if isinstance(self.volume, dict):
            object.__setattr__(self, "volume",
                               VolumeSpec.from_dict(self.volume))
        if self.shards < 1:
            raise SpecError(f"dvol shards must be >= 1, "
                            f"got {self.shards}")
        if self.placement not in PLACEMENT_MODES:
            raise SpecError(
                f"unknown dvol placement {self.placement!r}; expected "
                f"one of {PLACEMENT_MODES}")
        if self.stripe_chunk_pages < 1:
            raise SpecError(f"dvol stripe_chunk_pages must be >= 1, "
                            f"got {self.stripe_chunk_pages}")
        if self.remote_in_flight < 1:
            raise SpecError(f"dvol remote_in_flight must be >= 1, "
                            f"got {self.remote_in_flight}")
        if self.remote_coalesce_max_pages < 1:
            raise SpecError(f"dvol remote_coalesce_max_pages must be "
                            f">= 1, got {self.remote_coalesce_max_pages}")
        if self.remote_coalesce and self.remote_coalesce_max_pages < 2:
            raise SpecError(
                "remote coalescing merges at least two pages per "
                "command; remote_coalesce=True needs "
                "remote_coalesce_max_pages >= 2")

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["volume"] = self.volume.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DistributedVolumeSpec":
        data = dict(data)
        if isinstance(data.get("volume"), dict):
            data["volume"] = VolumeSpec.from_dict(data["volume"])
        return cls(**data)


# ----------------------------------------------------------------------
# faults / reliability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection and the reliability machinery.

    Absent (the default) the scenario runs the ideal-hardware model and
    every result stays byte-identical to a spec without this class.
    Present, each node gets a :class:`~repro.faults.FaultInjector`
    seeded from ``seed``: every fault decision is a pure hash of
    (seed, operation kind, physical identity, per-entity ordinal), so
    the schedule is identical across reruns and worker counts.

    * ``program_fail_rate`` / ``erase_fail_rate`` — per-operation
      failure probabilities, optionally gated to the burst window
      ``[window_start_ns, window_end_ns)``.  Failed programs consume
      the page; the volume write path verifies, rewrites to a fresh
      page and marks the block suspect (retired at its next erase).
    * ``read_disturb_limit`` / ``read_disturb_rate`` — after ``limit``
      reads of a block since its last erase, further reads go
      ECC-uncorrectable with probability ``rate``.
    * ``wear_ber`` / ``wear_ber_onset`` — extra uncorrectable-read
      probability ramping linearly from 0 at ``onset`` (fraction of
      rated endurance consumed) to ``wear_ber`` at end of life.
    * ``fail_chip`` / ``fail_chip_after_ns`` — whole-chip death: from
      the given time the chip refuses programs/erases (reads still
      work — stored charge survives).  Pair with
      :meth:`~repro.volume.LogicalVolume.evacuate_chip`.
    * ``wear_leveling`` / ``wl_spread_threshold`` — the FTL's static
      wear-leveling mode: ``static`` migrates the coldest full block
      through GC whenever the erase-count spread exceeds the threshold.
    * ``endurance`` — overrides the device's rated program/erase
      cycles (default 3000); lifetime experiments shrink it so blocks
      die within simulated reach.
    * ``factory_bad_rate`` — fraction of blocks factory-marked bad.
    """

    seed: int = 0
    program_fail_rate: float = 0.0
    erase_fail_rate: float = 0.0
    window_start_ns: Optional[int] = None
    window_end_ns: Optional[int] = None
    read_disturb_limit: Optional[int] = None
    read_disturb_rate: float = 1.0
    wear_ber: float = 0.0
    wear_ber_onset: float = 0.75
    fail_chip: Optional[Tuple[int, int, int]] = None
    fail_chip_after_ns: int = 0
    wear_leveling: str = "none"
    wl_spread_threshold: int = 8
    endurance: Optional[int] = None
    factory_bad_rate: float = 0.0

    def __post_init__(self):
        for attr in ("program_fail_rate", "erase_fail_rate",
                     "read_disturb_rate", "wear_ber", "factory_bad_rate"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise SpecError(f"fault {attr} must be in [0, 1], "
                                f"got {value}")
        if not 0.0 <= self.wear_ber_onset < 1.0:
            raise SpecError(f"fault wear_ber_onset must be in [0, 1), "
                            f"got {self.wear_ber_onset}")
        if self.read_disturb_limit is not None \
                and self.read_disturb_limit < 1:
            raise SpecError("fault read_disturb_limit must be >= 1")
        if self.window_start_ns is not None and self.window_start_ns < 0:
            raise SpecError("fault window_start_ns must be >= 0")
        if (self.window_start_ns is not None
                and self.window_end_ns is not None
                and self.window_end_ns <= self.window_start_ns):
            raise SpecError("fault window_end_ns must exceed "
                            "window_start_ns")
        if self.fail_chip is not None:
            chip = tuple(int(v) for v in self.fail_chip)
            if len(chip) != 3 or any(v < 0 for v in chip):
                raise SpecError(
                    f"fault fail_chip must be a (card, bus, chip) "
                    f"triple of non-negative ints, got {self.fail_chip}")
            object.__setattr__(self, "fail_chip", chip)
        if self.fail_chip_after_ns < 0:
            raise SpecError("fault fail_chip_after_ns must be >= 0")
        if self.wear_leveling not in WEAR_LEVELING_MODES:
            raise SpecError(
                f"unknown wear_leveling mode {self.wear_leveling!r}; "
                f"expected one of {WEAR_LEVELING_MODES}")
        if self.wl_spread_threshold < 1:
            raise SpecError("fault wl_spread_threshold must be >= 1")
        if self.endurance is not None and self.endurance < 1:
            raise SpecError("fault endurance must be >= 1")

    def build_plan(self, seed_override: Optional[int] = None) -> FaultPlan:
        """The pure :class:`~repro.faults.FaultPlan` these knobs name."""
        return FaultPlan(
            seed=self.seed if seed_override is None else seed_override,
            program_fail_rate=self.program_fail_rate,
            erase_fail_rate=self.erase_fail_rate,
            window_start_ns=self.window_start_ns,
            window_end_ns=self.window_end_ns,
            read_disturb_limit=self.read_disturb_limit,
            read_disturb_rate=self.read_disturb_rate,
            wear_ber=self.wear_ber,
            wear_ber_onset=self.wear_ber_onset,
            fail_chip=self.fail_chip,
            fail_chip_after_ns=self.fail_chip_after_ns,
        )

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        if self.fail_chip is not None:
            data["fail_chip"] = list(self.fail_chip)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        data = dict(data)
        if data.get("fail_chip") is not None:
            data["fail_chip"] = tuple(data["fail_chip"])
        return cls(**data)


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
#: The splitter's fixed ports a tenant can drive locally, the
#: cluster-level remote path (ISP-F over the integrated network),
#: ``volume`` — logical-block I/O through the node's FTL-backed
#: :class:`~repro.volume.LogicalVolume` on a dedicated port —
#: ``dvol`` — logical-block I/O against the cluster-wide
#: :class:`~repro.dvol.ShardedVolume`, remote pages routed over the
#: storage network — and ``gc`` — background GC/wear-leveling traffic
#: injected at the splitter through a dedicated low-priority port.
_ACCESS_KINDS = ("isp", "host", "net", "remote_isp", "volume", "dvol",
                 "gc")
#: Access kinds whose traffic rides the host write path and may
#: therefore carry a write mix (``write_fraction`` > 0).
_WRITE_CAPABLE = ("host", "volume", "dvol")
#: Splitter port names that accept per-tenant QoS parameters.
_QOS_PORTS = ("isp", "host", "net")
_RNG_MODES = ("per_worker", "shared")
_PATTERNS = ("random", "sequential")


@dataclass(frozen=True)
class TenantSpec:
    """One class of closed-loop traffic in a workload mix.

    ``workers`` generators loop page reads until the workload window
    closes.  ``access`` picks the path: the node's three splitter
    ports (``isp`` / ``host`` / ``net``) or ``remote_isp`` — ISP-F reads
    of node ``target``'s flash over the integrated network.

    ``pattern`` chooses the address stream: ``random`` (the default —
    every read draws from the tenant's RNG) or ``sequential`` — each
    worker walks consecutive striped indices from its own offset, the
    access shape that the splitter's coalescing stage merges into
    multi-page commands.

    RNG discipline is part of the spec because it decides reproducibility:
    ``per_worker`` gives worker *i* its own ``Random(seed_base + i)``
    (Figure 13's scheme); ``shared`` draws from one workload-wide stream
    (the QoS scenario's scheme).

    ``priority`` / ``deadline_ns`` / ``max_in_flight`` program the
    splitter port's QoS parameters, interpreted by the scenario's
    ``splitter_policy`` (a :data:`repro.io.POLICIES` discipline).
    ``weight`` feeds weighted-fair-share admission (``wfq``);
    ``rate_mbps`` / ``burst_kb`` feed token-bucket rate limiting
    (``token-bucket``) — a rate without a burst defaults to a 64 KiB
    burst.  Policies that don't use a parameter ignore it, so one
    tenant mix runs unchanged under every discipline.

    ``background=True`` (equivalently ``access="gc"``) marks the tenant
    as *internal* background traffic — GC/wear-leveling — injected at
    its node's splitter through a dedicated port named after the
    tenant: each worker loops reading victim pages and relocating them
    into a private scratch block, erasing scratch blocks as they cycle.
    """

    name: str
    access: Optional[str] = None  # resolved to "host"/"gc" on build
    workers: int = 1
    node: int = 0
    target: Optional[int] = None
    addr_space: Optional[int] = None
    software_path: bool = True
    pattern: str = "random"
    write_fraction: float = 0.0
    rng: str = "per_worker"
    seed_base: int = 0
    max_in_flight: Optional[int] = None
    priority: Optional[int] = None
    deadline_ns: Optional[int] = None
    weight: float = 1.0
    rate_mbps: Optional[float] = None
    burst_kb: Optional[float] = None
    background: bool = False

    def __post_init__(self):
        # ``background`` and ``access="gc"`` are two spellings of the
        # same thing; setting either implies the other, and a background
        # tenant cannot simultaneously claim a foreground access path
        # (an *explicitly* chosen one — the unset default follows
        # ``background``).
        if self.access is None:
            object.__setattr__(self, "access",
                               "gc" if self.background else "host")
        if self.access == "gc":
            object.__setattr__(self, "background", True)
        if self.background and self.access != "gc":
            raise SpecError(
                f"tenant {self.name!r}: background tenants are injected "
                f"at the splitter (access='gc'); access={self.access!r} "
                f"conflicts")
        if self.background and self.name in _QOS_PORTS:
            # The background port is labeled by the tenant's name; a
            # fixed-port name would merge its scheduling/accounting
            # with unrelated foreground traffic on that port.
            raise SpecError(
                f"background tenant cannot take a fixed splitter port "
                f"name {_QOS_PORTS}; got {self.name!r}")
        if not self.name:
            raise SpecError("tenant needs a non-empty name")
        if self.access not in _ACCESS_KINDS:
            raise SpecError(f"unknown access kind {self.access!r}; "
                            f"expected one of {_ACCESS_KINDS}")
        if self.workers < 1:
            raise SpecError(f"tenant {self.name!r}: workers must be >= 1, "
                            f"got {self.workers}")
        if self.node < 0:
            raise SpecError(f"tenant {self.name!r}: negative node")
        if self.rng not in _RNG_MODES:
            raise SpecError(f"tenant {self.name!r}: rng must be one of "
                            f"{_RNG_MODES}, got {self.rng!r}")
        if self.pattern not in _PATTERNS:
            raise SpecError(f"tenant {self.name!r}: pattern must be one "
                            f"of {_PATTERNS}, got {self.pattern!r}")
        if self.pattern == "sequential" and self.background:
            raise SpecError(
                f"tenant {self.name!r}: background GC traffic picks its "
                f"own victims; pattern='sequential' does not apply")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise SpecError(
                f"tenant {self.name!r}: write_fraction must be in "
                f"[0, 1], got {self.write_fraction}")
        if self.write_fraction > 0 and self.access not in _WRITE_CAPABLE:
            raise SpecError(
                f"tenant {self.name!r}: write mixes ride the host write "
                f"path; access must be one of {_WRITE_CAPABLE} "
                f"(got {self.access!r})")
        if self.access in ("volume", "dvol") and self.name in _QOS_PORTS:
            # A volume tenant owns a dedicated splitter port labeled by
            # its name; a fixed-port name would merge its scheduling
            # and accounting with unrelated traffic on that port.
            raise SpecError(
                f"{self.access} tenant cannot take a fixed splitter "
                f"port name {_QOS_PORTS}; got {self.name!r}")
        if self.addr_space is not None and self.addr_space < 1:
            raise SpecError(f"tenant {self.name!r}: addr_space must be "
                            f">= 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise SpecError(f"tenant {self.name!r}: max_in_flight must "
                            f"be >= 1")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise SpecError(f"tenant {self.name!r}: deadline_ns must be "
                            f"positive")
        if self.weight <= 0:
            raise SpecError(f"tenant {self.name!r}: weight must be > 0, "
                            f"got {self.weight}")
        if self.rate_mbps is not None and self.rate_mbps <= 0:
            raise SpecError(f"tenant {self.name!r}: rate_mbps must be "
                            f"> 0, got {self.rate_mbps}")
        if self.burst_kb is not None:
            if self.burst_kb <= 0:
                raise SpecError(f"tenant {self.name!r}: burst_kb must be "
                                f"> 0, got {self.burst_kb}")
            if self.rate_mbps is None:
                raise SpecError(
                    f"tenant {self.name!r}: burst_kb without rate_mbps "
                    f"has no meaning (a burst caps a rate)")
        elif self.rate_mbps is not None:
            object.__setattr__(self, "burst_kb", 64.0)
        if self.access == "remote_isp" and self.target is None:
            raise SpecError(f"tenant {self.name!r}: remote_isp access "
                            f"needs a target node")
        if self.has_qos and not self.background \
                and self.access not in ("volume", "dvol") and (
                self.name not in _QOS_PORTS or self.access != self.name):
            # QoS parameters program the splitter port the tenant's own
            # traffic uses; a name/access mismatch would silently boost
            # an unrelated port.  Background and volume tenants are
            # exempt: they get a dedicated port named after them.
            raise SpecError(
                f"tenant {self.name!r} sets splitter QoS parameters, so "
                f"it must be named after — and access — one of the "
                f"splitter ports {_QOS_PORTS} (access={self.access!r})")
        if self.has_policy_qos and self.access in _QOS_PORTS and (
                self.name not in _QOS_PORTS or self.access != self.name):
            # weight/rate/burst are keyed by the admission-stage tenant
            # label, which for local port traffic is the port name.
            raise SpecError(
                f"tenant {self.name!r} sets weight/rate QoS on a local "
                f"port, so it must be named after — and access — one of "
                f"the splitter ports {_QOS_PORTS} "
                f"(access={self.access!r})")

    @property
    def has_qos(self) -> bool:
        return (self.max_in_flight is not None
                or self.priority is not None
                or self.deadline_ns is not None)

    @property
    def has_policy_qos(self) -> bool:
        """True when the tenant programs admission-policy parameters."""
        return self.weight != 1.0 or self.rate_mbps is not None

    def sched_label(self) -> str:
        """The tenant label this traffic is scheduled/accounted under.

        Local port traffic is labeled by the port (``isp``/``host``/
        ``net``); remote ISP-F reads carry ``isp-n<source>`` end to end;
        background, volume and dvol tenants own a port named after
        themselves (a dvol tenant's label also rides its remote
        requests, so destination splitters schedule them under it).
        """
        if self.access == "remote_isp":
            return f"isp-n{self.node}"
        if self.background or self.access in ("volume", "dvol"):
            return self.name
        return self.access

    def qos_kwargs(self) -> Dict[str, Any]:
        """The ``FlashSplitter.add_port`` keyword overrides this tenant
        programs (only the explicitly-set ones)."""
        out: Dict[str, Any] = {}
        if self.max_in_flight is not None:
            out["max_in_flight"] = self.max_in_flight
        if self.priority is not None:
            out["priority"] = self.priority
        if self.deadline_ns is not None:
            out["deadline_ns"] = self.deadline_ns
        return out

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        return cls(**data)


@dataclass(frozen=True)
class WorkloadSpec:
    """A closed-loop, multi-tenant read workload over a fixed window.

    ``drain=False`` cuts the simulation off exactly at ``duration_ns``
    (bandwidth methodology: completions before the deadline count) —
    Figure 13's scheme.  ``drain=True`` stops *issuing* at the deadline
    but runs every in-flight request to completion — the QoS scenario's
    scheme, where tail latency of the last victims is the point.

    ``queue_depth`` sets how many requests each foreground worker keeps
    in flight.  The default (1) is the seed's synchronous closed loop —
    issue, wait, repeat; deeper queues drive the asynchronous
    submission path (host tenants ride
    :meth:`~repro.host.iface.HostInterface.submit`, the other access
    kinds a windowed process driver), which is what saturates the
    card.  Background (GC) tenants always run synchronously — their
    read/relocate/erase loop is inherently ordered.

    ``arrival`` switches every foreground tenant from the closed loop
    to an *open-loop* arrival process: requests arrive on their own
    clock regardless of completions (the millions-of-users shape — a
    port multiplexing thousands of lightweight sessions, each rarely
    active).  Three processes are supported:

    * ``"poisson"`` — memoryless aggregate arrivals at
      ``arrival_rate_rps`` requests/second (the superposition of
      ``arrival_sessions`` independent thin sessions *is* Poisson, so
      the session count does not change the process).
    * ``"onoff"`` — ``arrival_sessions`` sessions toggle between ON
      (issuing) and OFF (idle) with exponential dwell times
      ``arrival_mean_on_ns`` / ``arrival_mean_off_ns``; the per-session
      ON rate is scaled so the long-run aggregate offered load is
      ``arrival_rate_rps``.  Produces bursts at the session timescale.
    * ``"diurnal"`` — a Poisson process whose rate swings sinusoidally:
      ``rate(t) = arrival_rate_rps * (1 + arrival_amplitude *
      sin(2*pi*t / arrival_period_ns))``, sampled by thinning against
      the peak rate (deterministic given the workload seed).

    Open-loop arrivals are fire-and-forget: with ``drain=False`` the
    run cuts off at ``duration_ns`` (completions before the deadline
    count), with ``drain=True`` every in-flight request finishes.
    """

    duration_ns: int
    tenants: Tuple[TenantSpec, ...]
    seed: int = 1234
    drain: bool = False
    queue_depth: int = 1
    arrival: Optional[str] = None
    arrival_rate_rps: float = 0.0
    arrival_sessions: int = 1000
    arrival_mean_on_ns: int = 1_000_000
    arrival_mean_off_ns: int = 9_000_000
    arrival_period_ns: int = 10_000_000
    arrival_amplitude: float = 0.8

    def __post_init__(self):
        if self.duration_ns <= 0:
            raise SpecError(f"duration_ns must be positive, "
                            f"got {self.duration_ns}")
        if self.queue_depth < 1:
            raise SpecError(f"queue_depth must be >= 1, "
                            f"got {self.queue_depth}")
        if self.arrival is not None:
            if self.arrival not in ("poisson", "onoff", "diurnal"):
                raise SpecError(
                    f"unknown arrival process {self.arrival!r} "
                    f"(expected poisson, onoff or diurnal)")
            if self.arrival_rate_rps <= 0:
                raise SpecError(
                    f"arrival workloads need arrival_rate_rps > 0, "
                    f"got {self.arrival_rate_rps}")
            if self.arrival_sessions < 1:
                raise SpecError(
                    f"arrival_sessions must be >= 1, "
                    f"got {self.arrival_sessions}")
            if self.arrival == "onoff" and (
                    self.arrival_mean_on_ns <= 0
                    or self.arrival_mean_off_ns < 0):
                raise SpecError(
                    f"onoff arrivals need arrival_mean_on_ns > 0 and "
                    f"arrival_mean_off_ns >= 0, got "
                    f"{self.arrival_mean_on_ns}/{self.arrival_mean_off_ns}")
            if self.arrival == "diurnal":
                if self.arrival_period_ns <= 0:
                    raise SpecError(
                        f"diurnal arrivals need arrival_period_ns > 0, "
                        f"got {self.arrival_period_ns}")
                if not 0.0 <= self.arrival_amplitude <= 1.0:
                    raise SpecError(
                        f"arrival_amplitude must be in [0, 1], "
                        f"got {self.arrival_amplitude}")
        tenants = tuple(
            t if isinstance(t, TenantSpec) else TenantSpec(**t)
            for t in self.tenants)
        object.__setattr__(self, "tenants", tenants)
        if not tenants:
            raise SpecError("workload needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate tenant names: {names}")

    def to_dict(self) -> dict:
        data = {"duration_ns": self.duration_ns,
                "tenants": [t.to_dict() for t in self.tenants],
                "seed": self.seed, "drain": self.drain,
                "queue_depth": self.queue_depth}
        if self.arrival is not None:
            data.update({
                "arrival": self.arrival,
                "arrival_rate_rps": self.arrival_rate_rps,
                "arrival_sessions": self.arrival_sessions,
                "arrival_mean_on_ns": self.arrival_mean_on_ns,
                "arrival_mean_off_ns": self.arrival_mean_off_ns,
                "arrival_period_ns": self.arrival_period_ns,
                "arrival_amplitude": self.arrival_amplitude,
            })
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        data = dict(data)
        data["tenants"] = tuple(
            TenantSpec.from_dict(t) if isinstance(t, dict) else t
            for t in data.get("tenants", ()))
        return cls(**data)


# ----------------------------------------------------------------------
# scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, runnable description of machine + workload.

    Hand it to :class:`~repro.api.session.Session` to build the
    simulator, node(s) and network; call :meth:`Session.run` to execute
    the workload and get a :class:`~repro.api.result.RunResult`.

    All validation happens here, at construction: a bad topology name,
    a zero-node cluster or a non-positive tenant weight raises
    :class:`SpecError` immediately, never minutes into a simulation.
    """

    name: str = "scenario"
    n_nodes: int = 1
    geometry: FlashGeometry = BENCH_GEOMETRY
    timing: Optional[FlashTiming] = None
    host: Optional[HostConfig] = None
    network: Optional[NetworkConfig] = None
    topology: TopologySpec = field(default_factory=TopologySpec)
    n_endpoints: int = 4
    app_endpoints: int = 0
    isp_queue_depth: int = 32
    accelerator_units: int = 8
    splitter_policy: Optional[str] = None
    splitter_in_flight: Optional[int] = None
    bandwidth_window_ns: int = 1_000_000
    coalesce: bool = False
    coalesce_max_pages: int = 8
    host_queue_depth: int = 8
    irq_coalesce: int = 1
    trace: bool = True
    trace_sample: int = 1
    volume: Optional[VolumeSpec] = None
    dvol: Optional[DistributedVolumeSpec] = None
    workload: Optional[WorkloadSpec] = None
    fault: Optional[FaultSpec] = None

    def __post_init__(self):
        # Accept plain dicts for every nested field so from_dict and
        # hand-written literal specs both work.
        for attr, cls in (("geometry", FlashGeometry),
                          ("timing", FlashTiming),
                          ("host", HostConfig),
                          ("network", NetworkConfig)):
            value = getattr(self, attr)
            if isinstance(value, dict):
                object.__setattr__(self, attr, cls(**value))
        if isinstance(self.topology, dict):
            object.__setattr__(self, "topology",
                               TopologySpec.from_dict(self.topology))
        if isinstance(self.volume, dict):
            object.__setattr__(self, "volume",
                               VolumeSpec.from_dict(self.volume))
        if isinstance(self.dvol, dict):
            object.__setattr__(
                self, "dvol", DistributedVolumeSpec.from_dict(self.dvol))
        if isinstance(self.workload, dict):
            object.__setattr__(self, "workload",
                               WorkloadSpec.from_dict(self.workload))
        if isinstance(self.fault, dict):
            object.__setattr__(self, "fault",
                               FaultSpec.from_dict(self.fault))

        if not self.name:
            raise SpecError("scenario needs a non-empty name")
        if self.n_nodes < 1:
            raise SpecError(f"need at least one node, got {self.n_nodes}")
        if self.app_endpoints < 0:
            raise SpecError("negative app_endpoints")
        if self.n_nodes > 1 and self.n_endpoints < 2 + self.app_endpoints:
            raise SpecError(
                "need >= 2 endpoints beyond the reserved application "
                "endpoints (requests + responses)")
        if self.isp_queue_depth < 1:
            raise SpecError("isp_queue_depth must be >= 1")
        if self.accelerator_units < 1:
            raise SpecError("accelerator_units must be >= 1")
        if (self.splitter_policy is not None
                and self.splitter_policy not in POLICIES):
            raise SpecError(
                f"unknown splitter policy {self.splitter_policy!r}; "
                f"known: {sorted(POLICIES)}")
        if self.splitter_in_flight is not None \
                and self.splitter_in_flight < 1:
            raise SpecError("splitter_in_flight must be >= 1")
        if self.bandwidth_window_ns < 1:
            raise SpecError("bandwidth_window_ns must be >= 1")
        if self.coalesce_max_pages < 1:
            raise SpecError(f"coalesce_max_pages must be >= 1, "
                            f"got {self.coalesce_max_pages}")
        if self.coalesce and self.coalesce_max_pages < 2:
            raise SpecError(
                "coalescing merges at least two pages per command; "
                "coalesce=True needs coalesce_max_pages >= 2")
        if self.host_queue_depth < 1:
            raise SpecError(f"host_queue_depth must be >= 1, "
                            f"got {self.host_queue_depth}")
        if self.irq_coalesce < 1:
            raise SpecError(f"irq_coalesce must be >= 1, "
                            f"got {self.irq_coalesce}")
        if self.trace_sample < 1:
            raise SpecError(f"trace_sample must be >= 1, "
                            f"got {self.trace_sample}")
        if self.dvol is not None and self.dvol.shards > self.n_nodes:
            raise SpecError(
                f"dvol spans {self.dvol.shards} shards but the cluster "
                f"has {self.n_nodes} node(s)")
        if self.workload is not None:
            policy_labels: Dict[str, str] = {}
            for tenant in self.workload.tenants:
                if tenant.node >= self.n_nodes:
                    raise SpecError(
                        f"tenant {tenant.name!r} issues from node "
                        f"{tenant.node} but the cluster has "
                        f"{self.n_nodes} node(s)")
                target = tenant.target
                if target is not None and not 0 <= target < self.n_nodes:
                    raise SpecError(
                        f"tenant {tenant.name!r} targets node {target} "
                        f"but the cluster has {self.n_nodes} node(s)")
                if tenant.access == "remote_isp" and self.n_nodes < 2:
                    raise SpecError(
                        f"tenant {tenant.name!r} needs remote nodes "
                        f"for remote_isp access")
                if (tenant.has_policy_qos
                        and (tenant.access == "remote_isp"
                             or (tenant.access == "dvol"
                                 and self.n_nodes > 1))
                        and (not self.trace or self.trace_sample > 1)):
                    # A remote tenant's scheduling identity rides on
                    # the traced request; without tracing (or with
                    # 1-in-N sampling leaving most requests untraced)
                    # it collapses into the shared 'net' port label and
                    # the configured weight/rate silently never
                    # applies.
                    raise SpecError(
                        f"tenant {tenant.name!r} programs weight/rate "
                        f"QoS on a remote path, which requires "
                        f"trace=True and trace_sample=1")
                if tenant.has_policy_qos:
                    label = tenant.sched_label()
                    other = policy_labels.get(label)
                    if other is not None:
                        # Two tenants sharing one admission label would
                        # silently overwrite each other's weight/rate.
                        raise SpecError(
                            f"tenants {other!r} and {tenant.name!r} both "
                            f"program weight/rate QoS under the "
                            f"admission label {label!r}")
                    policy_labels[label] = tenant.name
            volume_tenants = [t for t in self.workload.tenants
                              if t.access == "volume"]
            if volume_tenants and self.volume is None:
                names = [t.name for t in volume_tenants]
                raise SpecError(
                    f"tenants {names} use access='volume' but the "
                    f"scenario declares no VolumeSpec")
            if volume_tenants:
                # Raises SpecError if the LBA windows overflow the
                # volume's logical capacity on any node.
                self.volume_windows()
            dvol_tenants = [t for t in self.workload.tenants
                            if t.access == "dvol"]
            if dvol_tenants and self.dvol is None:
                names = [t.name for t in dvol_tenants]
                raise SpecError(
                    f"tenants {names} use access='dvol' but the "
                    f"scenario declares no DistributedVolumeSpec")
            if dvol_tenants:
                # Raises SpecError if the LBA windows overflow the
                # distributed volume's logical capacity.
                self.dvol_windows()
            # Each background (GC) worker claims a private scratch chip.
            gc_workers = sum(t.workers for t in self.workload.tenants
                             if t.background)
            n_units = (self.geometry.cards_per_node
                       * self.geometry.buses_per_card
                       * self.geometry.chips_per_bus)
            if gc_workers > n_units:
                raise SpecError(
                    f"{gc_workers} background GC workers need "
                    f"{gc_workers} private scratch chips but the "
                    f"geometry has {n_units}")

    # -- derived ---------------------------------------------------------
    def volume_windows(self) -> Dict[str, Tuple[int, int]]:
        """Per-tenant ``(start, size)`` LBA windows on the node volumes.

        Volume tenants on one node partition that node's logical
        address space: explicit ``addr_space`` values are honored,
        tenants without one split the remaining capacity evenly.
        Raises :class:`SpecError` when the windows don't fit — at
        construction, never mid-simulation.
        """
        if self.workload is None or self.volume is None:
            return {}
        logical = int(self.geometry.pages_per_node
                      * (1.0 - self.volume.overprovision))
        out: Dict[str, Tuple[int, int]] = {}
        by_node: Dict[int, list] = {}
        for tenant in self.workload.tenants:
            if tenant.access == "volume":
                by_node.setdefault(tenant.node, []).append(tenant)
        for node, tenants in sorted(by_node.items()):
            explicit = sum(t.addr_space for t in tenants
                           if t.addr_space is not None)
            defaults = [t for t in tenants if t.addr_space is None]
            remaining = logical - explicit
            share = remaining // len(defaults) if defaults else 0
            offset = 0
            for tenant in tenants:
                size = (tenant.addr_space if tenant.addr_space is not None
                        else share)
                if size < 1:
                    raise SpecError(
                        f"volume tenant {tenant.name!r} gets an empty "
                        f"LBA window ({size} pages of {logical} logical "
                        f"on node {node})")
                out[tenant.name] = (offset, size)
                offset += size
            if offset > logical:
                raise SpecError(
                    f"volume tenants on node {node} claim {offset} "
                    f"logical pages but the volume has only {logical} "
                    f"(overprovision "
                    f"{self.volume.overprovision})")
        return out

    def dvol_windows(self) -> Dict[str, Tuple[int, int]]:
        """Per-tenant ``(start, size)`` LBA windows on the dvol.

        Distributed-volume tenants partition one *cluster-wide* logical
        address space (the planner only places whole stripe chunks, so
        capacity is chunk-truncated per shard): explicit ``addr_space``
        values are honored, tenants without one split the remaining
        capacity evenly.  Raises :class:`SpecError` when the windows
        don't fit.
        """
        if self.workload is None or self.dvol is None:
            return {}
        per_shard = int(self.geometry.pages_per_node
                        * (1.0 - self.dvol.volume.overprovision))
        chunk = self.dvol.stripe_chunk_pages
        logical = self.dvol.shards * ((per_shard // chunk) * chunk)
        tenants = [t for t in self.workload.tenants
                   if t.access == "dvol"]
        out: Dict[str, Tuple[int, int]] = {}
        if not tenants:
            return out
        explicit = sum(t.addr_space for t in tenants
                       if t.addr_space is not None)
        defaults = [t for t in tenants if t.addr_space is None]
        remaining = logical - explicit
        share = remaining // len(defaults) if defaults else 0
        offset = 0
        for tenant in tenants:
            size = (tenant.addr_space if tenant.addr_space is not None
                    else share)
            if size < 1:
                raise SpecError(
                    f"dvol tenant {tenant.name!r} gets an empty LBA "
                    f"window ({size} pages of {logical} logical)")
            out[tenant.name] = (offset, size)
            offset += size
        if offset > logical:
            raise SpecError(
                f"dvol tenants claim {offset} logical pages but the "
                f"distributed volume has only {logical} "
                f"({self.dvol.shards} shards, chunk {chunk}, "
                f"overprovision {self.dvol.volume.overprovision})")
        return out

    def port_qos(self) -> Dict[str, Dict[str, Any]]:
        """Per-port splitter QoS overrides gathered from the tenants.

        Background tenants are excluded — their QoS parameters program
        the dedicated port the session creates for them, not one of the
        node's three fixed ports.
        """
        if self.workload is None:
            return {}
        return {t.name: t.qos_kwargs()
                for t in self.workload.tenants
                if t.has_qos and not t.background}

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-dict (JSON-ready) rendering; inverse of
        :meth:`from_dict`.

        The ``fault`` key is emitted only when a :class:`FaultSpec` is
        present, so pre-reliability specs (and their JSON artifacts)
        stay byte-identical.
        """
        data = {
            "name": self.name,
            "n_nodes": self.n_nodes,
            "geometry": dataclasses.asdict(self.geometry),
            "timing": _opt_dict(self.timing),
            "host": _opt_dict(self.host),
            "network": _opt_dict(self.network),
            "topology": self.topology.to_dict(),
            "n_endpoints": self.n_endpoints,
            "app_endpoints": self.app_endpoints,
            "isp_queue_depth": self.isp_queue_depth,
            "accelerator_units": self.accelerator_units,
            "splitter_policy": self.splitter_policy,
            "splitter_in_flight": self.splitter_in_flight,
            "bandwidth_window_ns": self.bandwidth_window_ns,
            "coalesce": self.coalesce,
            "coalesce_max_pages": self.coalesce_max_pages,
            "host_queue_depth": self.host_queue_depth,
            "irq_coalesce": self.irq_coalesce,
            "trace": self.trace,
            "trace_sample": self.trace_sample,
            "volume": (None if self.volume is None
                       else self.volume.to_dict()),
            "dvol": (None if self.dvol is None
                     else self.dvol.to_dict()),
            "workload": (None if self.workload is None
                         else self.workload.to_dict()),
        }
        if self.fault is not None:
            data["fault"] = self.fault.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        geometry = _opt_load(FlashGeometry, data.get("geometry"))
        if geometry is None:
            # Omitted geometry falls through to the constructor default
            # (BENCH_GEOMETRY) — the same machine a literal
            # ``ScenarioSpec(...)`` without a geometry gets.
            data.pop("geometry", None)
        else:
            data["geometry"] = geometry
        data["timing"] = _opt_load(FlashTiming, data.get("timing"))
        data["host"] = _opt_load(HostConfig, data.get("host"))
        data["network"] = _opt_load(NetworkConfig, data.get("network"))
        if data.get("topology") is not None:
            data["topology"] = TopologySpec.from_dict(data["topology"])
        else:
            data.pop("topology", None)
        if data.get("volume") is not None:
            data["volume"] = VolumeSpec.from_dict(data["volume"])
        if data.get("dvol") is not None:
            data["dvol"] = DistributedVolumeSpec.from_dict(data["dvol"])
        if data.get("workload") is not None:
            data["workload"] = WorkloadSpec.from_dict(data["workload"])
        if data.get("fault") is not None:
            data["fault"] = FaultSpec.from_dict(data["fault"])
        else:
            data.pop("fault", None)
        return cls(**data)
