"""Machine-readable experiment results.

A :class:`RunResult` is what every experiment and every
:meth:`~repro.api.session.Session.run` returns: named tables (the same
rows the paper prints), named series (figure data), scalar/structured
``metrics`` for assertions, and the unified request tracer's per-stage
and per-tenant statistics.  Everything serializes to JSON, so CI can
archive one ``RunResult`` per figure per commit and track the perf
trajectory over time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..reporting import format_table

__all__ = ["TableResult", "RunResult", "RESULT_SCHEMA_KEYS"]

#: Keys every serialized RunResult carries (the JSON "schema").
RESULT_SCHEMA_KEYS = ("experiment", "title", "tables", "series",
                      "metrics", "tenant_stats", "stage_stats",
                      "elapsed_ns", "spec", "meta")


def _jsonable(value: Any) -> Any:
    """Coerce a result payload into JSON-representable types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "as_dict"):
        return _jsonable(value.as_dict())
    if hasattr(value, "to_dict"):
        return _jsonable(value.to_dict())
    return str(value)


@dataclass
class TableResult:
    """One rendered-table's worth of results (a paper table or figure).

    ``name`` doubles as the results-file stem (``benchmarks/results/
    <name>.txt``), preserving the pre-API layout of saved renderings.
    """

    name: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)

    def render(self) -> str:
        """The fixed-width ASCII rendering benchmarks print and save."""
        return format_table(self.columns, self.rows, title=self.title)

    def to_dict(self) -> dict:
        return {"name": self.name, "title": self.title,
                "columns": list(self.columns),
                "rows": _jsonable(self.rows)}

    @classmethod
    def from_dict(cls, data: dict) -> "TableResult":
        return cls(name=data["name"], title=data.get("title", ""),
                   columns=list(data.get("columns", [])),
                   rows=[list(r) for r in data.get("rows", [])])


@dataclass
class RunResult:
    """The structured outcome of one experiment or workload run.

    * ``tables`` — the paper-shaped tables, ready to render/save;
    * ``series`` — named x/y figure data;
    * ``metrics`` — the measured values benchmarks assert on, with
      native keys (floats, tuples) preserved in-process and stringified
      only at JSON time;
    * ``tenant_stats`` / ``stage_stats`` — the
      :class:`~repro.io.RequestTracer`'s per-tenant completions /
      throughput / p50 / p99 and per-stage latency histograms;
    * ``spec`` — the :class:`~repro.api.spec.ScenarioSpec` dict that
      produced the run (when one did), so a result file is replayable.
    """

    experiment: str
    title: str = ""
    tables: List[TableResult] = field(default_factory=list)
    series: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    tenant_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stage_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    elapsed_ns: int = 0
    spec: Optional[dict] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- access ----------------------------------------------------------
    def table(self, name: str) -> TableResult:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(f"no table {name!r} in result "
                       f"{self.experiment!r}; have "
                       f"{[t.name for t in self.tables]}")

    def add_table(self, name: str, title: str, columns: List[str],
                  rows: List[List[Any]]) -> TableResult:
        table = TableResult(name=name, title=title, columns=columns,
                            rows=rows)
        self.tables.append(table)
        return table

    def render(self) -> str:
        """All tables rendered, in order (what ``repro run`` prints)."""
        return "\n".join(t.render() for t in self.tables)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "tables": [t.to_dict() for t in self.tables],
            "series": _jsonable(self.series),
            "metrics": _jsonable(self.metrics),
            "tenant_stats": _jsonable(self.tenant_stats),
            "stage_stats": _jsonable(self.stage_stats),
            "elapsed_ns": self.elapsed_ns,
            "spec": _jsonable(self.spec),
            "meta": _jsonable(self.meta),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path) -> None:
        """Write the JSON rendering to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            experiment=data["experiment"],
            title=data.get("title", ""),
            tables=[TableResult.from_dict(t)
                    for t in data.get("tables", [])],
            series=dict(data.get("series", {})),
            metrics=dict(data.get("metrics", {})),
            tenant_stats=dict(data.get("tenant_stats", {})),
            stage_stats=dict(data.get("stage_stats", {})),
            elapsed_ns=data.get("elapsed_ns", 0),
            spec=data.get("spec"),
            meta=dict(data.get("meta", {})),
        )
