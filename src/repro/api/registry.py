"""The experiment registry: every reproduced table/figure, as code.

``repro.__main__.EXPERIMENTS`` used to be a hand-maintained tuple table
that could silently drift from the benchmarks.  Now each experiment
*registers itself* with the :func:`experiment` decorator next to the
code that actually runs it (in :mod:`repro.experiments`), and the CLI
(``repro list`` / ``repro run <id> [--json PATH]``), the benchmark
suite, and the registry tests all read the same registry.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..parallel import current_pool, parallel_map
from .result import RunResult

__all__ = ["Experiment", "experiment", "get_experiment",
           "all_experiments", "run_experiment", "discover"]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    ``exp_id`` is the CLI handle (``repro run <exp_id>``); ``label`` is
    the paper's name for it ("Figure 13"); ``produces`` is the benchmark
    file that asserts its shape; ``runner`` performs the measurement and
    returns a :class:`~repro.api.result.RunResult`.
    """

    exp_id: str
    title: str
    produces: str
    label: str
    runner: Callable[[], RunResult] = field(repr=False)


_REGISTRY: Dict[str, Experiment] = {}
_discovered = False


def experiment(exp_id: str, *, title: str, produces: str,
               label: Optional[str] = None):
    """Register the decorated callable as an experiment.

    The callable must return a :class:`RunResult` when invoked with no
    arguments; it may optionally accept a ``jobs=N`` keyword (detected
    by signature) to fan sweep points across worker processes.
    Registration order is preserved — it is the order ``repro list``
    prints.
    """
    def decorator(fn: Callable[[], RunResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = Experiment(
            exp_id=exp_id, title=title, produces=produces,
            label=label or exp_id, runner=fn)
        return fn
    return decorator


def discover() -> None:
    """Import :mod:`repro.experiments` so every decorator has run."""
    global _discovered
    if not _discovered:
        importlib.import_module("repro.experiments")
        _discovered = True


def all_experiments() -> List[Experiment]:
    """Every registered experiment, in registration order."""
    discover()
    return list(_REGISTRY.values())


def get_experiment(exp_id: str) -> Experiment:
    discover()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {known}") from None


def _runner_point(exp_id: str) -> RunResult:
    """Top-level point function: run one whole experiment serially.

    Used to offload an entire experiment into a pool worker when the
    runner itself has no ``jobs`` knob (``repro bench --jobs N``
    overlaps such experiments wholesale instead of point-by-point).
    """
    return get_experiment(exp_id).runner()


def _accepts_jobs(runner: Callable[..., RunResult]) -> bool:
    try:
        return "jobs" in inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False


def run_experiment(exp_id: str, jobs: int = 1) -> RunResult:
    """Run one experiment and return its :class:`RunResult`.

    ``jobs`` fans the experiment's sweep points across worker processes
    when the runner supports it (its signature has a ``jobs``
    parameter); results are byte-identical to ``jobs=1``.  Runners
    without the knob run serially — unless an ambient
    :class:`~repro.parallel.WorkerPool` is active, in which case the
    whole experiment is offloaded to a worker so independent
    experiments can overlap.

    Stamps the result with the registry's id/title so a saved JSON file
    is self-describing regardless of how the runner labelled it.
    """
    exp = get_experiment(exp_id)
    if _accepts_jobs(exp.runner):
        result = exp.runner(jobs=jobs)
    elif current_pool() is not None:
        result = parallel_map(_runner_point, [exp_id], jobs=jobs)[0]
    else:
        result = exp.runner()
    result.experiment = exp.exp_id
    if not result.title:
        result.title = exp.title
    result.meta.setdefault("label", exp.label)
    result.meta.setdefault("produces", exp.produces)
    return result
