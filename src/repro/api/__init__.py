"""Declarative scenario API: the front door to the whole appliance model.

One import gives everything a benchmark, example, or user script needs:

* **Specs** (:mod:`repro.api.spec`) — frozen, validated, dict/JSON
  round-trippable descriptions of machine + workload:
  :class:`ScenarioSpec`, :class:`WorkloadSpec`, :class:`TenantSpec`,
  :class:`TopologySpec`, plus the shared experiment geometries
  (:data:`BENCH_GEOMETRY`, :data:`ONE_CARD_GEOMETRY`,
  :data:`THROTTLED_TIMING`).
* **Session** (:mod:`repro.api.session`) — builds simulator, node(s),
  network and tracer from a spec; runs closed-loop workloads; returns
  structured results.
* **RunResult** (:mod:`repro.api.result`) — named tables, series,
  metrics and tracer statistics, all JSON-serializable.
* **Registry** (:mod:`repro.api.registry`) — the :func:`experiment`
  decorator and ``repro list`` / ``repro run`` machinery; experiment
  implementations live in :mod:`repro.experiments`.

Quick taste::

    from repro.api import ScenarioSpec, Session, run_experiment

    session = Session(ScenarioSpec(name="one-node"))
    node = session.node               # a full BlueDBMNode, ready to sim

    result = run_experiment("fig13")  # any registered table/figure
    result.save("fig13.json")         # machine-readable perf snapshot
"""

from .registry import (
    Experiment,
    all_experiments,
    discover,
    experiment,
    get_experiment,
    run_experiment,
)
from .result import RESULT_SCHEMA_KEYS, RunResult, TableResult
from .session import Session, drive_pipelined
from .spec import (
    BENCH_GEOMETRY,
    ONE_CARD_GEOMETRY,
    THROTTLED_TIMING,
    DistributedVolumeSpec,
    FaultSpec,
    ScenarioSpec,
    SpecError,
    TenantSpec,
    TopologySpec,
    VolumeSpec,
    WorkloadSpec,
)

__all__ = [
    "BENCH_GEOMETRY",
    "ONE_CARD_GEOMETRY",
    "THROTTLED_TIMING",
    "ScenarioSpec",
    "WorkloadSpec",
    "TenantSpec",
    "TopologySpec",
    "VolumeSpec",
    "DistributedVolumeSpec",
    "FaultSpec",
    "SpecError",
    "Session",
    "drive_pipelined",
    "RunResult",
    "TableResult",
    "RESULT_SCHEMA_KEYS",
    "Experiment",
    "experiment",
    "get_experiment",
    "all_experiments",
    "run_experiment",
    "discover",
]
