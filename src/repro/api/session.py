"""The run session facade: spec in, simulator out, results back.

A :class:`Session` owns everything one scenario needs — the
discrete-event :class:`~repro.sim.Simulator`, an attached
:class:`~repro.io.RequestTracer`, and the machine built from the
:class:`~repro.api.spec.ScenarioSpec` (a bare
:class:`~repro.core.BlueDBMNode` for single-node scenarios, a
:class:`~repro.core.BlueDBMCluster` otherwise).  It also owns the
closed-loop workload driver that used to be copy-pasted across the
Figure 13 benchmark, the nearest-neighbour builders and the QoS
scenario: :meth:`run` executes the spec's
:class:`~repro.api.spec.WorkloadSpec` and returns a structured
:class:`~repro.api.result.RunResult`.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, Dict, List, Optional

from ..core import BlueDBMCluster, BlueDBMNode
from ..dvol import (
    DvolRouter,
    PlacementPlanner,
    RemoteCoalescer,
    ShardServiceIface,
    ShardedVolume,
)
from ..faults import fault_seed_override
from ..flash import PhysAddr
from ..host import HostInterface
from ..io import RequestTracer
from ..sim import Simulator
from ..volume import LogicalVolume
from .result import RunResult
from .spec import ScenarioSpec, SpecError, TenantSpec

__all__ = ["Session", "drive_pipelined"]


class Session:
    """Builds and drives one scenario end to end.

    Attributes
    ----------
    sim : the session's simulator (fresh, time starts at zero).
    tracer : the unified request tracer (None when ``spec.trace`` off).
    nodes : every :class:`BlueDBMNode`, indexed by node id.
    cluster : the :class:`BlueDBMCluster`, or None for 1-node scenarios.
    node : shorthand for ``nodes[0]``.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.sim = Simulator()
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(self.sim, sample=spec.trace_sample)
            if spec.trace else None)
        node_kwargs = dict(
            geometry=spec.geometry,
            flash_timing=spec.timing,
            host_config=spec.host,
            isp_queue_depth=spec.isp_queue_depth,
            accelerator_units=spec.accelerator_units,
            splitter_policy=spec.splitter_policy,
            splitter_in_flight=spec.splitter_in_flight,
            tracer=self.tracer,
            port_qos=spec.port_qos(),
            bandwidth_window_ns=spec.bandwidth_window_ns,
            coalesce=spec.coalesce,
            coalesce_max_pages=spec.coalesce_max_pages,
            host_queue_depth=spec.host_queue_depth,
        )
        if spec.fault is not None:
            # Each node builds its own FaultInjector from the shared
            # pure plan, so per-node read-disturb/failure state stays
            # private while the schedule is one seeded function.  A CLI
            # ``--fault-seed`` override reseeds the plan, nothing else.
            node_kwargs.update(
                endurance=(3000 if spec.fault.endurance is None
                           else spec.fault.endurance),
                factory_bad_rate=spec.fault.factory_bad_rate,
                fault_plan=spec.fault.build_plan(fault_seed_override()),
            )
        # An active distributed volume claims three endpoints of its
        # own right after the application block (requests + two response
        # lanes), leaving the cluster's request/response protocol — and
        # any app endpoints the spec reserved — untouched.
        dvol_eps = 3 if (spec.dvol is not None and spec.n_nodes > 1) else 0
        if spec.n_nodes == 1:
            self.cluster: Optional[BlueDBMCluster] = None
            self.nodes: List[BlueDBMNode] = [
                BlueDBMNode(self.sim, **node_kwargs)]
        else:
            self.cluster = BlueDBMCluster(
                self.sim, spec.n_nodes,
                topology=spec.topology.build(spec.n_nodes),
                network_config=spec.network,
                n_endpoints=spec.n_endpoints + dvol_eps,
                app_endpoints=spec.app_endpoints + dvol_eps,
                node_kwargs=node_kwargs,
                tracer=self.tracer)
            self.nodes = self.cluster.nodes
        self._gc_ports: Dict[str, object] = {}
        self._gc_units = itertools.count()
        #: node id -> its FTL-backed logical volume (built on demand).
        self.volumes: Dict[int, LogicalVolume] = {}
        #: volume tenant name -> its dedicated HostInterface.
        self._volume_ifaces: Dict[str, HostInterface] = {}
        #: volume tenant name -> (LBA window start, size).
        self._volume_windows: Dict[str, tuple] = {}
        #: the cluster-wide sharded volume (built when dvol tenants run).
        self.dvol: Optional[ShardedVolume] = None
        #: dvol tenant name -> its dedicated HostInterface.
        self._dvol_ifaces: Dict[str, HostInterface] = {}
        #: dvol tenant name -> (LBA window start, size).
        self._dvol_windows: Dict[str, tuple] = {}
        self._page_fill = bytes(spec.geometry.page_size)
        #: tenant name -> physical indices its raw writers have
        #: programmed (NAND no-reprogram bookkeeping for write mixes).
        self._written: Dict[str, set] = {}
        if spec.workload is not None:
            self._configure_qos()
            self._build_volumes()
            self._build_dvol()

    def _build_volumes(self) -> None:
        """Attach logical volumes and per-tenant host interfaces.

        Each node with volume tenants gets one
        :class:`~repro.volume.LogicalVolume` whose GC relocation
        traffic rides a dedicated low-priority splitter port (admission
        label ``volume-gc``, QoS from the
        :class:`~repro.api.spec.VolumeSpec`).  Each volume *tenant*
        gets its own splitter port — named and scheduled after the
        tenant, exactly like background GC tenants — driven through a
        private :class:`~repro.host.HostInterface`, so volume traffic
        pays the full host software/PCIe path and is arbitrated and
        traced under the tenant's identity.
        """
        spec = self.spec
        if spec.volume is None:
            return
        windows = spec.volume_windows()
        self._volume_windows = windows
        volume_tenants = [t for t in spec.workload.tenants
                          if t.access == "volume"]
        for tenant in volume_tenants:
            node = self.nodes[tenant.node]
            volume = self.volumes.get(tenant.node)
            if volume is None:
                gc_port = node.splitter.add_port(
                    tenant="volume-gc", priority=spec.volume.gc_priority)
                node.splitter.configure_tenant(
                    "volume-gc", weight=spec.volume.gc_weight,
                    rate_mbps=spec.volume.gc_rate_mbps,
                    burst_kb=spec.volume.gc_burst_kb)
                volume = LogicalVolume(
                    self.sim, node.device, gc_port,
                    overprovision=spec.volume.overprovision,
                    allocation=spec.volume.allocation,
                    gc_low_watermark=spec.volume.gc_low_watermark,
                    name=f"volume-n{tenant.node}",
                    **self._volume_fault_kwargs())
                if spec.fault is not None:
                    volume.reliability_stats_enabled = True
                self.volumes[tenant.node] = volume
            port = node.splitter.add_port(tenant=tenant.name,
                                          **tenant.qos_kwargs())
            self._volume_ifaces[tenant.name] = HostInterface(
                self.sim, node.host_config, node.cpu, node.pcie, port,
                spec.geometry.page_size, tracer=self.tracer,
                tenant=tenant.name, queue_depth=spec.host_queue_depth)
            start, size = windows[tenant.name]
            volume.register_owner(start, size, tenant.name)
            prefill = int(spec.volume.fill * size)
            if prefill:
                volume.prefill(start, prefill)

    def _build_dvol(self) -> None:
        """Build the cluster-wide sharded volume and its routing tier.

        Nodes ``0 .. shards-1`` each get a shard
        :class:`~repro.volume.LogicalVolume` (GC on a dedicated
        low-priority port labeled ``dvol-gc``) plus a network *service
        port* — deliberately slot-capped at ``remote_in_flight`` — that
        remote operations are admitted through, optionally behind a
        :class:`~repro.dvol.RemoteCoalescer`.  Every node gets a
        :class:`~repro.dvol.DvolRouter` on the volume's private
        endpoint block, so any node can source remote operations.  Each
        dvol *tenant* gets its own splitter port and
        :class:`~repro.host.HostInterface` on its home node (the full
        host software/PCIe path), and its LBA window is ownership-
        registered and functionally prefilled through the placement
        planner's run splitting.
        """
        spec = self.spec
        if spec.dvol is None:
            return
        dvol_tenants = [t for t in spec.workload.tenants
                        if t.access == "dvol"]
        if not dvol_tenants:
            return
        d = spec.dvol
        geometry = spec.geometry
        per_shard = int(geometry.pages_per_node
                        * (1.0 - d.volume.overprovision))
        planner = PlacementPlanner(
            d.shards, per_shard, placement=d.placement,
            stripe_chunk_pages=d.stripe_chunk_pages,
            hash_seed=d.hash_seed)
        self.dvol = ShardedVolume(self.sim, planner, geometry.page_size)
        for shard in range(d.shards):
            node = self.nodes[shard]
            gc_port = node.splitter.add_port(
                tenant="dvol-gc", priority=d.volume.gc_priority)
            node.splitter.configure_tenant(
                "dvol-gc", weight=d.volume.gc_weight,
                rate_mbps=d.volume.gc_rate_mbps,
                burst_kb=d.volume.gc_burst_kb)
            volume = LogicalVolume(
                self.sim, node.device, gc_port,
                overprovision=d.volume.overprovision,
                allocation=d.volume.allocation,
                gc_low_watermark=d.volume.gc_low_watermark,
                name=f"dvol-n{shard}",
                **self._volume_fault_kwargs())
            if spec.fault is not None:
                volume.reliability_stats_enabled = True
            service_port = node.splitter.add_port(
                max_in_flight=d.remote_in_flight, tenant="dvol")
            coalescer = (
                RemoteCoalescer(service_port, d.remote_coalesce_max_pages)
                if d.remote_coalesce else None)
            service = ShardServiceIface(
                self.sim, service_port, geometry.page_size,
                coalescer=coalescer)
            self.dvol.add_shard(shard, volume, service)
        if self.cluster is not None:
            request_ep = 1 + spec.app_endpoints
            response_eps = (request_ep + 1, request_ep + 2)
            for node_id in range(spec.n_nodes):
                router = DvolRouter(
                    self.sim, self.cluster.network, node_id, request_ep,
                    response_eps, geometry.page_size)
                self.dvol.add_router(node_id, router)
        windows = spec.dvol_windows()
        self._dvol_windows = windows
        for tenant in dvol_tenants:
            node = self.nodes[tenant.node]
            port = node.splitter.add_port(tenant=tenant.name,
                                          **tenant.qos_kwargs())
            self._dvol_ifaces[tenant.name] = HostInterface(
                self.sim, node.host_config, node.cpu, node.pcie, port,
                geometry.page_size, tracer=self.tracer,
                tenant=tenant.name, queue_depth=spec.host_queue_depth)
            start, size = windows[tenant.name]
            self.dvol.register_owner(start, size, tenant.name)
            prefill = int(d.volume.fill * size)
            if prefill:
                self.dvol.prefill(start, prefill)

    def _volume_fault_kwargs(self) -> dict:
        """Reliability kwargs every session-built volume shares.

        Empty when the spec has no :class:`~repro.api.spec.FaultSpec`,
        so the ideal-hardware construction path — and its results —
        stay byte-identical.
        """
        fault = self.spec.fault
        if fault is None:
            return {}
        return {"wear_leveling": fault.wear_leveling,
                "wl_spread_threshold": fault.wl_spread_threshold}

    def _configure_qos(self) -> None:
        """Program per-tenant admission QoS; attach background ports.

        Weight/rate/burst parameters land on the splitter that actually
        arbitrates the tenant's traffic — the *target* node's for
        remote tenants — keyed by the same label the tenant's requests
        carry through the admission stage.  Background (GC) tenants get
        a dedicated splitter port named after them, programmed with
        their port-level QoS (priority / deadline / in-flight cap).
        """
        for tenant in self.spec.workload.tenants:
            if tenant.access == "dvol":
                # A dvol tenant's traffic is admitted wherever its
                # pages land — its home node locally, every shard node
                # remotely (the label rides the request) — so its
                # weight/rate must be programmed on all of them.
                if tenant.has_policy_qos:
                    nodes = sorted(
                        set(range(self.spec.dvol.shards)) | {tenant.node})
                    for node_id in nodes:
                        self.nodes[node_id].splitter.configure_tenant(
                            tenant.sched_label(), weight=tenant.weight,
                            rate_mbps=tenant.rate_mbps,
                            burst_kb=tenant.burst_kb)
                continue
            contended = (tenant.target if tenant.access == "remote_isp"
                         else tenant.node)
            splitter = self.nodes[contended].splitter
            if tenant.background:
                self._gc_ports[tenant.name] = splitter.add_port(
                    tenant=tenant.name, **tenant.qos_kwargs())
            if tenant.has_policy_qos:
                splitter.configure_tenant(
                    tenant.sched_label(), weight=tenant.weight,
                    rate_mbps=tenant.rate_mbps, burst_kb=tenant.burst_kb)

    @property
    def node(self) -> BlueDBMNode:
        return self.nodes[0]

    # ------------------------------------------------------------------
    # workload execution
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the spec's workload; return the structured result.

        Spawns every tenant's closed-loop workers (in spec order — the
        order is part of deterministic reproducibility), runs the
        simulation to the workload window (or to full drain), and
        returns completions, per-tenant bandwidth, and the tracer's
        per-tenant / per-stage statistics.
        """
        workload = self.spec.workload
        if workload is None:
            raise SpecError(
                f"scenario {self.spec.name!r} has no workload to run")
        counters = {t.name: 0 for t in workload.tenants}
        issued = {t.name: 0 for t in workload.tenants}
        shared_rng = random.Random(workload.seed)
        depth = workload.queue_depth
        open_loop = workload.arrival is not None
        for tenant in workload.tenants:
            issue = None if tenant.background else self._issuer(tenant)
            for wid in range(tenant.workers):
                rng = (shared_rng if tenant.rng == "shared"
                       else random.Random(tenant.seed_base + wid))
                if tenant.background:
                    worker = self._gc_worker(tenant, rng,
                                             workload.duration_ns, counters)
                elif open_loop:
                    worker = self._open_loop_dispatcher(
                        tenant, rng, wid, issue, workload, counters, issued)
                elif depth > 1:
                    worker = self._async_worker(tenant, rng, wid, issue,
                                                workload.duration_ns,
                                                counters, depth)
                else:
                    worker = self._worker(tenant, rng, wid, issue,
                                          workload.duration_ns, counters)
                self.sim.process(worker, name=f"{tenant.name}-worker")
        if workload.drain:
            self.sim.run()
        else:
            self.sim.run(until=workload.duration_ns)
        return self._workload_result(
            counters, issued if open_loop else None)

    def _addr_space(self, tenant: TenantSpec) -> int:
        geometry = self.spec.geometry
        return (geometry.pages_per_node if tenant.addr_space is None
                else min(tenant.addr_space, geometry.pages_per_node))

    def _window(self, tenant: TenantSpec) -> tuple:
        """The tenant's (start, size) address window.

        Volume tenants own a slice of their node volume's logical
        address space, dvol tenants a slice of the cluster-wide sharded
        space; everything else addresses the physical striped space
        from zero.
        """
        if tenant.access == "volume":
            return self._volume_windows[tenant.name]
        if tenant.access == "dvol":
            return self._dvol_windows[tenant.name]
        return (0, self._addr_space(tenant))

    @staticmethod
    def _indices(tenant: TenantSpec, rng: random.Random, wid: int,
                 addr_space: int):
        """The worker's endless page-index stream (pattern-dependent).

        ``random`` draws from the worker's RNG exactly as the seed's
        inline ``randrange`` did; ``sequential`` walks consecutive
        indices from a per-worker offset — stripe-adjacent runs, the
        shape the coalescing stage merges.
        """
        if tenant.pattern == "sequential":
            span = max(1, addr_space // tenant.workers)
            index = (wid * span) % addr_space
            while True:
                yield index
                index = (index + 1) % addr_space
        else:
            while True:
                yield rng.randrange(addr_space)

    def _op_stream(self, tenant: TenantSpec, rng: random.Random,
                   wid: int, start: int, size: int):
        """The worker's endless ``(kind, address)`` operation stream.

        Pure read tenants (``write_fraction=0``) draw exactly the
        index sequence the read-only workers always drew — no extra
        RNG consumption, so existing scenarios replay bit-identically.
        Mixed tenants draw one extra uniform variate per op to pick
        read vs write.  *Raw* (non-volume) writers program physical
        pages in place, and NAND forbids reprogramming without an
        erase — so every written index is tracked: random writers
        redraw collisions, and once the window is exhausted (or a
        sequential walk reaches a written page) the stream raises a
        clear error instead of livelocking on redraws or dying later
        inside a chip with an opaque ``ProgramError``.  Volume writers
        never collide — the FTL remaps every write out of place.
        """
        indices = self._indices(tenant, rng, wid, size)
        if tenant.write_fraction <= 0.0:
            for index in indices:
                yield ("read", start + index)
            return
        raw = tenant.access != "volume"
        # Shared across the tenant's workers: raw-write collisions are
        # physical, not per-worker.
        written = self._written.setdefault(tenant.name, set())
        for index in indices:
            write = rng.random() < tenant.write_fraction
            if write and raw:
                if len(written) >= size:
                    raise SpecError(
                        f"tenant {tenant.name!r} wrote all {size} "
                        f"pages of its address space; raw writes "
                        f"cannot reprogram without an erase — shorten "
                        f"the window, widen addr_space, or use "
                        f"access='volume'")
                if tenant.pattern == "random":
                    while index in written:
                        index = rng.randrange(size)
                elif index in written:
                    raise SpecError(
                        f"tenant {tenant.name!r}: sequential raw write "
                        f"walk reached already-written page {index} "
                        f"(window wrap or worker overlap); raw writes "
                        f"cannot reprogram without an erase")
                written.add(index)
            yield ("write" if write else "read", start + index)

    def _worker(self, tenant: TenantSpec, rng: random.Random, wid: int,
                issue: Callable, deadline: int, counters: dict):
        """One synchronous closed-loop worker (queue depth 1): issue a
        page operation, wait for it, repeat until the window closes."""
        sim = self.sim
        start, size = self._window(tenant)
        ops = self._op_stream(tenant, rng, wid, start, size)
        while sim.now < deadline:
            kind, index = next(ops)
            yield from issue(kind, index)
            counters[tenant.name] += 1

    def _async_worker(self, tenant: TenantSpec, rng: random.Random,
                      wid: int, issue: Callable, deadline: int,
                      counters: dict, depth: int):
        """One asynchronous closed-loop reader: keep ``depth`` requests
        in flight, issuing replacements as completions arrive.

        Host tenants ride the queue-depth interface itself
        (:meth:`HostInterface.submit`): an initial ``depth``-wide batch,
        then a refill batch per completion wave, so the window stays
        full instead of draining to a barrier between rounds.  Every
        other access kind uses a windowed process driver over the same
        ``issue`` generator the synchronous worker uses.  Completions
        are counted from the completion events themselves, so requests
        still in flight when the window closes are counted if a
        draining run lets them finish — matching the tracer's view.
        """
        sim = self.sim
        name = tenant.name
        start, size = self._window(tenant)
        ops_stream = self._op_stream(tenant, rng, wid, start, size)

        def counted(event) -> None:
            counters[name] += 1

        if tenant.access in ("host", "volume"):
            node = self.nodes[tenant.node]
            geometry = self.spec.geometry
            if tenant.access == "volume":
                iface = self._volume_ifaces[tenant.name]
                volume = self.volumes[tenant.node]
            else:
                iface, volume = node.host, None
            irq_coalesce = self.spec.irq_coalesce

            def refill(count: int) -> List:
                ops = []
                for _ in range(count):
                    kind, index = next(ops_stream)
                    addr = (index if volume is not None
                            else geometry.striped(index,
                                                  node=tenant.node))
                    if kind == "write":
                        ops.append(("write", addr, self._page_fill))
                    else:
                        ops.append(("read", addr))
                batch = iface.submit(
                    ops, queue_depth=count,
                    software_path=tenant.software_path,
                    volume=volume, irq_coalesce=irq_coalesce)
                for item in batch.items:
                    item.event.callbacks.append(counted)
                return list(batch.items)

            # Volume tenants refill in coalescible chunks: the PCIe link
            # spaces their completions out one page at a time, so
            # refilling per completion would feed the coalescer
            # unmergeable singletons.  Waiting for a command's worth of
            # drained window keeps replacement runs stripe-adjacent.
            # (The floor is driver policy, deliberately independent of
            # spec.coalesce, so on/off comparisons share one driver.)
            refill_floor = (min(depth, self.spec.coalesce_max_pages)
                            if volume is not None else 1)
            pending_items = refill(depth)
            while sim.now < deadline:
                yield sim.any_of([item.event for item in pending_items])
                pending_items = [item for item in pending_items
                                 if not item.completed]
                drained = depth - len(pending_items)
                if sim.now < deadline and (drained >= refill_floor
                                           or not pending_items):
                    pending_items.extend(refill(drained))
            return
        pending: List = []
        while sim.now < deadline:
            while len(pending) < depth:
                kind, index = next(ops_stream)
                proc = sim.process(issue(kind, index))
                proc.callbacks.append(counted)
                pending.append(proc)
            round_start = sim.now
            yield sim.any_of(pending)
            pending = [p for p in pending if not p.triggered]
            if sim.now == round_start and not pending:
                # Every op in the wave completed in zero simulated
                # time (e.g. map-answered volume reads of an unfilled
                # window): force minimal progress so the measurement
                # window cannot livelock at one timestep.
                yield sim.timeout(1)

    def _arrival_gaps(self, rng: random.Random, rate_rps: float):
        """Endless inter-arrival gaps (ns) for the workload's process.

        ``rate_rps`` is this dispatcher's share of the offered load.
        All randomness comes from ``rng``, so a rerun of the same spec
        replays the identical arrival sequence.
        """
        workload = self.spec.workload
        rate = rate_rps / 1e9  # requests per nanosecond
        expovariate = rng.expovariate
        if workload.arrival == "poisson":
            while True:
                yield int(expovariate(rate))
        elif workload.arrival == "onoff":
            sessions = workload.arrival_sessions
            mean_on = float(workload.arrival_mean_on_ns)
            mean_off = float(workload.arrival_mean_off_ns)
            duty = (mean_on / (mean_on + mean_off)
                    if mean_off > 0 else 1.0)
            # Per-session rate while ON, scaled so the long-run
            # aggregate is rate_rps.
            per_on = rate / (sessions * duty)
            n_on = max(1, round(sessions * duty))
            random_ = rng.random
            elapsed = 0.0
            # Competing exponentials over the CTMC: next event is an
            # arrival (rate n_on*per_on), a session turning OFF
            # (n_on/mean_on) or one turning ON ((S-n_on)/mean_off).
            while True:
                off_to_on = ((sessions - n_on) / mean_off
                             if mean_off > 0 else 0.0)
                on_to_off = n_on / mean_on
                arrivals = n_on * per_on
                total = arrivals + off_to_on + on_to_off
                elapsed += expovariate(total)
                pick = random_() * total
                if pick < arrivals:
                    yield int(elapsed)
                    elapsed = 0.0
                elif pick < arrivals + off_to_on:
                    n_on += 1
                else:
                    n_on -= 1
        else:  # diurnal
            period = workload.arrival_period_ns
            amplitude = workload.arrival_amplitude
            peak = rate * (1.0 + amplitude)
            two_pi = 2.0 * math.pi
            random_ = rng.random
            clock = 0.0
            elapsed = 0.0
            # Thinning against the peak rate: candidate arrivals at
            # rate ``peak``, each kept with probability rate(t)/peak.
            while True:
                gap = expovariate(peak)
                clock += gap
                elapsed += gap
                current = rate * (
                    1.0 + amplitude * math.sin(two_pi * clock / period))
                if random_() * peak < current:
                    yield int(elapsed)
                    elapsed = 0.0

    def _open_loop_dispatcher(self, tenant: TenantSpec, rng: random.Random,
                              wid: int, issue: Callable,
                              workload, counters: dict, issued: dict):
        """One open-loop dispatcher: requests arrive on the workload's
        arrival process and are issued fire-and-forget, regardless of
        completions — the offered load does not throttle when the
        device falls behind (that *is* the experiment).

        The dispatcher stands in for thousands of thin sessions
        multiplexed onto the tenant's port: the arrival process models
        their aggregate behaviour (exactly, for Poisson; at the
        session-population level for on/off), so one process per
        tenant-worker drives any session count without per-session
        bookkeeping.  A tenant's ``workers`` dispatchers split the
        offered load evenly.
        """
        sim = self.sim
        name = tenant.name
        start, size = self._window(tenant)
        ops = self._op_stream(tenant, rng, wid, start, size)
        deadline = workload.duration_ns
        gaps = self._arrival_gaps(
            rng, workload.arrival_rate_rps / tenant.workers)

        def counted(event) -> None:
            counters[name] += 1

        process = sim.process
        timeout = sim.timeout
        while True:
            gap = next(gaps)
            if sim.now + gap >= deadline:
                return
            yield timeout(gap)
            kind, index = next(ops)
            issued[name] += 1
            proc = process(issue(kind, index))
            proc.callbacks.append(counted)

    def _gc_worker(self, tenant: TenantSpec, rng: random.Random,
                   deadline: int, counters: dict):
        """One GC/wear-leveling loop: read a victim page, relocate it
        into a private scratch block, erase scratch blocks as they
        cycle.  All traffic flows through the tenant's dedicated
        splitter port, so the admission policy arbitrates it against
        foreground tenants.

        Each worker claims one (card, bus, chip) unit from the top of
        the geometry and the top blocks of that chip as scratch, so GC
        programs/erases never collide across workers and stay clear of
        the low blocks that striped foreground address spaces use
        first.
        """
        sim = self.sim
        geometry = self.spec.geometry
        port = self._gc_ports[tenant.name]
        n_units = (geometry.cards_per_node * geometry.buses_per_card
                   * geometry.chips_per_bus)
        slot = next(self._gc_units)
        if slot >= n_units:
            raise SpecError(
                f"scenario {self.spec.name!r} spawns more GC workers "
                f"than the geometry has chips ({n_units}); each worker "
                f"needs a private scratch chip")
        unit = n_units - 1 - slot
        bus = unit % geometry.buses_per_card
        rest = unit // geometry.buses_per_card
        card = rest % geometry.cards_per_node
        chip = rest // geometry.cards_per_node
        scratch = [geometry.blocks_per_chip - 1 - i
                   for i in range(min(2, geometry.blocks_per_chip))]
        blocks = itertools.cycle(scratch)
        addr_space = (geometry.pages_per_node if tenant.addr_space is None
                      else min(tenant.addr_space, geometry.pages_per_node))

        def scratch_addr(block: int, page: int) -> PhysAddr:
            return PhysAddr(node=tenant.node, card=card, bus=bus,
                            chip=chip, block=block, page=page)

        block = next(blocks)
        page = 0
        yield from port.erase_block(scratch_addr(block, 0))
        while sim.now < deadline:
            victim = geometry.striped(rng.randrange(addr_space),
                                      node=tenant.node)
            result = yield from port.read_page(victim)
            if page == geometry.pages_per_block:
                block = next(blocks)
                page = 0
                yield from port.erase_block(scratch_addr(block, 0))
            yield from port.write_page(scratch_addr(block, page),
                                       result.data)
            page += 1
            counters[tenant.name] += 1

    def _issuer(self, tenant: TenantSpec) -> Callable:
        """The access-path generator for one tenant's operations.

        Issuers take ``(kind, index)`` — ``kind`` is ``"read"`` or
        ``"write"`` (only the host and volume paths carry write mixes;
        spec validation enforces it), ``index`` a striped physical
        index or, for volume tenants, a logical page number.
        """
        sim = self.sim
        geometry = self.spec.geometry
        node = self.nodes[tenant.node]
        software_path = tenant.software_path
        if tenant.access == "remote_isp":
            cluster, src, target = self.cluster, tenant.node, tenant.target

            def issue(kind, index):
                addr = geometry.striped(index, node=target)
                yield from cluster.isp_remote_flash(src, addr)
        elif tenant.access == "host":
            page_fill = self._page_fill

            def issue(kind, index):
                addr = geometry.striped(index, node=tenant.node)
                if kind == "write":
                    yield sim.process(node.host.write_page(
                        addr, page_fill, software_path=software_path))
                else:
                    yield sim.process(
                        node.host_read(addr, software_path=software_path))
        elif tenant.access == "volume":
            iface = self._volume_ifaces[tenant.name]
            volume = self.volumes[tenant.node]
            page_fill = self._page_fill

            def issue(kind, index):
                if kind == "write":
                    yield sim.process(iface.write_lpn(
                        volume, index, page_fill,
                        software_path=software_path))
                else:
                    yield sim.process(iface.read_lpn(
                        volume, index, software_path=software_path))
        elif tenant.access == "dvol":
            iface = self._dvol_ifaces[tenant.name]
            dvol = self.dvol
            src = tenant.node
            page_fill = self._page_fill

            def issue(kind, index):
                if kind == "write":
                    yield sim.process(dvol.write_lpn(
                        src, iface, index, page_fill,
                        software_path=software_path))
                else:
                    yield sim.process(dvol.read_lpn(
                        src, iface, index,
                        software_path=software_path))
        else:
            read = node.isp_read if tenant.access == "isp" \
                else node.net_read

            def issue(kind, index):
                addr = geometry.striped(index, node=tenant.node)
                yield sim.process(read(addr))
        return issue

    def _workload_result(self, counters: dict,
                         issued: Optional[dict] = None) -> RunResult:
        workload = self.spec.workload
        window = self.sim.now if workload.drain else workload.duration_ns
        page = self.spec.geometry.page_size
        bandwidth = {name: count * page / window if window else 0.0
                     for name, count in counters.items()}
        total = sum(counters.values())
        result = self.result()
        result.tenant_stats = self._relabel_tenant_stats(
            result.tenant_stats)
        result.elapsed_ns = self.sim.now
        result.metrics.update({
            "completions": dict(counters),
            "bandwidth_gbs": bandwidth,
            "total_bandwidth_gbs": (total * page / window if window
                                    else 0.0),
            "window_ns": window,
            "splitter_bandwidth": self._splitter_bandwidth(window),
        })
        if issued is not None:
            result.metrics["issued"] = dict(issued)
        if self.spec.coalesce:
            result.metrics["coalescing"] = {
                node.node_id: node.splitter.coalescing_stats()
                for node in self.nodes}
            result.metrics["write_coalescing"] = {
                node.node_id: node.splitter.write_coalescing_stats()
                for node in self.nodes}
        if self.volumes:
            result.metrics["volume"] = {
                node_id: volume.stats()
                for node_id, volume in sorted(self.volumes.items())}
            result.metrics["write_amplification"] = {
                tenant.name: self.volumes[tenant.node]
                .write_amplification(tenant.name)
                for tenant in self.spec.workload.tenants
                if tenant.access == "volume"}
        if self.dvol is not None:
            result.metrics["dvol"] = self.dvol.stats()
        if self.spec.fault is not None:
            result.metrics["faults"] = self.fault_metrics()
        return result

    def fault_metrics(self) -> dict:
        """Per-node injector and device reliability counters.

        Only reported when the spec carries a
        :class:`~repro.api.spec.FaultSpec` — absent faults, the metrics
        dict stays byte-identical to pre-reliability runs.
        """
        out: dict = {}
        for node in self.nodes:
            stats = (dict(node.faults.stats())
                     if node.faults is not None else {})
            stats["device_program_failures"] = node.device.program_failures
            stats["device_uncorrectable_reads"] = (
                node.device.uncorrectable_reads)
            stats["wear_spread"] = node.device.wear.spread()
            stats["wear_max"] = node.device.wear.max_erase_count
            stats["grown_bad_blocks"] = node.device.badblocks.grown_bad_count
            out[node.node_id] = stats
        return out

    def _splitter_bandwidth(self, window: int) -> dict:
        """Per-node, per-tenant bytes serviced at each splitter.

        The admission-stage bandwidth accounting: total bytes, busiest
        single accounting window, and rate over the run — keyed by the
        scheduling tenant labels (relabeled to spec tenant names where
        the mapping is one-to-one, mirroring ``tenant_stats``).
        """
        out: dict = {}
        for node in self.nodes:
            summary = node.splitter.bandwidth.summary(window)
            if summary:
                out[node.node_id] = self._relabel_tenant_stats(summary)
        return out

    def _relabel_tenant_stats(self, stats: dict) -> dict:
        """Key tracer tenant stats by spec tenant names where possible.

        The tracer labels requests by the splitter port they used
        (``isp``/``host``/``net``) or the cluster path (``isp-n<src>``
        for remote ISP reads); the workload's tenants are named by the
        spec.  When exactly one spec tenant maps to a label, report its
        stats under the spec name — what callers index by.  Labels
        shared by several tenants (e.g. two remote tenants issuing from
        one node) keep the port label, since their latencies are
        physically merged at that port.
        """
        owners: dict = {}
        for tenant in self.spec.workload.tenants:
            owners.setdefault(tenant.sched_label(), []).append(tenant.name)
        relabeled = {
            (owners[label][0]
             if len(owners.get(label, ())) == 1 else label): summary
            for label, summary in stats.items()
        }
        # A pathological mix (a tenant named after a port it doesn't
        # use) could collide keys; keep the unambiguous raw labels then.
        return relabeled if len(relabeled) == len(stats) else stats

    # ------------------------------------------------------------------
    # custom driving (for experiments that are not pure tenant mixes)
    # ------------------------------------------------------------------
    def closed_loop(self, fetch_factory: Callable, n_workers: int,
                    window_ns: int, counter: Optional[list] = None,
                    seed_base: int = 0) -> None:
        """Spawn workers that loop ``fetch_factory(rng)`` fetches until
        the window closes (the Figure 13 driver, now shared).

        ``fetch_factory`` is called with worker *i*'s private
        ``Random(seed_base + i)`` and must return a generator that
        performs one fetch.  ``counter`` (a one-element list) counts
        completed fetches across all workers.
        """
        sim = self.sim

        def worker(wid):
            rng = random.Random(seed_base + wid)
            while sim.now < window_ns:
                yield from fetch_factory(rng)
                if counter is not None:
                    counter[0] += 1

        for wid in range(n_workers):
            sim.process(worker(wid))

    def run_until(self, deadline_ns: Optional[int] = None) -> None:
        """Advance the simulation (to ``deadline_ns``, or to drain)."""
        self.sim.run(until=deadline_ns)

    def result(self, experiment: Optional[str] = None) -> RunResult:
        """Snapshot the session's tracer into a fresh RunResult."""
        result = RunResult(experiment=experiment or self.spec.name,
                           elapsed_ns=self.sim.now,
                           spec=self.spec.to_dict())
        if self.tracer is not None:
            workload = self.spec.workload
            window = (self.sim.now if workload is None or workload.drain
                      else workload.duration_ns)
            result.tenant_stats = self.tracer.tenant_summary(window)
            result.stage_stats = self.tracer.stage_summary()
        return result


def drive_pipelined(sim: Simulator, op_factory: Callable, n_ops: int,
                    outstanding: int) -> None:
    """Issue ``n_ops`` operations keeping ``outstanding`` in flight.

    The kernel-bypass-style async driver shared by the pipelined-host
    nearest-neighbour experiment and the tag-depth ablation:
    ``op_factory(i)`` returns the generator for operation *i*; the
    driver admits a new one whenever the window has room and drains the
    tail.  Runs the simulation to completion.
    """
    def driver(sim):
        pending = []
        for i in range(n_ops):
            pending.append(sim.process(op_factory(i)))
            if len(pending) >= outstanding:
                yield pending.pop(0)
        for proc in pending:
            yield proc

    sim.run_process(driver(sim))
