"""Deterministic per-endpoint routing (Section 3.2.3).

"All packets originating from the same logical endpoint that are directed
to the same destination node follow the same route across the network,
while packets from a different endpoint directed to the same destination
node may follow a different path."  This spreads traffic over parallel
links *without* per-packet reordering, so no completion buffers are
needed at the receiver.

Routes are computed offline from the topology (there is no discovery
protocol): for every (node, destination, endpoint) we enumerate the
shortest paths — including the parallel-cable multiplicity of each hop —
and pick one deterministically by endpoint index.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from .topology import Topology

__all__ = ["RoutingTable", "build_routing_tables", "shortest_hop_counts"]


class RoutingTable:
    """Per-node map: (destination, endpoint) -> output port."""

    def __init__(self, node: int):
        self.node = node
        self._table: Dict[Tuple[int, int], int] = {}

    def install(self, dst: int, endpoint: int, port: int) -> None:
        self._table[(dst, endpoint)] = port

    def next_port(self, dst: int, endpoint: int) -> int:
        key = (dst, endpoint)
        if key not in self._table:
            raise KeyError(
                f"node {self.node}: no route to {dst} for endpoint "
                f"{endpoint}")
        return self._table[key]

    def __len__(self) -> int:
        return len(self._table)


def shortest_hop_counts(topo: Topology, src: int) -> Dict[int, int]:
    """BFS hop distance from ``src`` to every reachable node."""
    dist = {src: 0}
    frontier = deque([src])
    adj = topo.adjacency()
    while frontier:
        node = frontier.popleft()
        for _, peer in adj[node]:
            if peer not in dist:
                dist[peer] = dist[node] + 1
                frontier.append(peer)
    return dist


def _min_hop_ports(topo: Topology, dst: int) -> Dict[int, List[int]]:
    """For each node, the sorted output ports that lie on *some* shortest
    path toward ``dst`` (parallel cables appear as distinct ports)."""
    dist = shortest_hop_counts(topo, dst)  # distances *to* dst (undirected)
    options: Dict[int, List[int]] = {}
    for node in range(topo.n_nodes):
        if node == dst or node not in dist:
            continue
        ports = [port for port, peer, _ in topo.neighbors(node)
                 if peer in dist and dist[peer] == dist[node] - 1]
        options[node] = sorted(ports)
    return options


def build_routing_tables(topo: Topology,
                         n_endpoints: int) -> List[RoutingTable]:
    """Compute every node's routing table for ``n_endpoints`` endpoints.

    Endpoint ``e`` takes the ``e mod k``-th of the ``k`` shortest-path
    ports at each node, which both spreads endpoints over parallel links
    and keeps each endpoint's route fixed — the paper's determinism
    invariant (Figure 6).
    """
    if n_endpoints < 1:
        raise ValueError(f"need >= 1 endpoint, got {n_endpoints}")
    if not topo.is_connected():
        raise ValueError("topology is not connected; cannot route")
    tables = [RoutingTable(node) for node in range(topo.n_nodes)]
    for dst in range(topo.n_nodes):
        options = _min_hop_ports(topo, dst)
        for node, ports in options.items():
            for endpoint in range(n_endpoints):
                tables[node].install(dst, endpoint,
                                     ports[endpoint % len(ports)])
    return tables
