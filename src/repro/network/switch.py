"""Per-node switching (Section 3.2, Figure 4).

Each storage device routes packets itself; there is no separate switch or
router box.  The *external switch* moves packets between physical ports,
relaying traffic toward its next hop; the *internal switch* delivers
packets addressed to this node into the right logical endpoint's receive
buffer, and injects locally-originated packets toward an output port.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Counter, Simulator, Store
from .link import SerialLink
from .packet import NetworkConfig, Packet
from .routing import RoutingTable

__all__ = ["NodeSwitch"]


class NodeSwitch:
    """The internal + external switch of one storage device."""

    def __init__(self, sim: Simulator, node: int, config: NetworkConfig,
                 table: RoutingTable):
        self.sim = sim
        self.node = node
        self.config = config
        self.table = table
        self.out_links: Dict[int, SerialLink] = {}
        self.in_links: Dict[int, SerialLink] = {}
        # Receive buffers, one bounded FIFO per logical endpoint.
        self.endpoint_queues: Dict[int, Store] = {}
        self.forwarded = Counter(f"node{node}-forwarded")
        self.forwarded_bytes = Counter(f"node{node}-forwarded-bytes")
        self.delivered = Counter(f"node{node}-delivered")

    # -- wiring (done by StorageNetwork at build time) ---------------------
    def attach_out(self, port: int, link: SerialLink) -> None:
        if port in self.out_links:
            raise ValueError(f"node {self.node} port {port} already wired")
        self.out_links[port] = link

    def attach_in(self, port: int, link: SerialLink) -> None:
        if port in self.in_links:
            raise ValueError(f"node {self.node} port {port} already wired")
        self.in_links[port] = link
        self.sim.process(self._forward_loop(link),
                         name=f"fwd-n{self.node}p{port}")

    def register_endpoint(self, endpoint_id: int) -> Store:
        if endpoint_id in self.endpoint_queues:
            raise ValueError(
                f"endpoint {endpoint_id} already registered on node "
                f"{self.node}")
        queue = Store(self.sim, capacity=self.config.endpoint_capacity,
                      name=f"n{self.node}-ep{endpoint_id}")
        self.endpoint_queues[endpoint_id] = queue
        return queue

    # -- data path ----------------------------------------------------------
    def inject(self, packet: Packet):
        """Send a locally-originated packet (DES generator).

        Local destinations cross only the internal switch; remote ones are
        handed to the external switch's output port for this packet's
        deterministic route.
        """
        if packet.dst == self.node:
            yield self.sim.timeout(self.config.hop_latency_ns // 4)
            yield self._deliver(packet)
        else:
            port = self.table.next_port(packet.dst, packet.endpoint)
            yield self.sim.process(self.out_links[port].transmit(packet))

    def _deliver(self, packet: Packet):
        queue = self.endpoint_queues.get(packet.endpoint)
        if queue is None:
            raise KeyError(
                f"node {self.node}: packet for unregistered endpoint "
                f"{packet.endpoint}")
        self.delivered.add()
        return queue.put(packet)

    def _forward_loop(self, link: SerialLink):
        """External switch port engine: relay inbound packets forever."""
        while True:
            packet = yield self.sim.process(link.receive())
            if packet.dst == self.node:
                yield self._deliver(packet)
            else:
                port = self.table.next_port(packet.dst, packet.endpoint)
                self.forwarded.add()
                self.forwarded_bytes.add(packet.payload_bytes)
                yield self.sim.process(
                    self.out_links[port].transmit(packet))
