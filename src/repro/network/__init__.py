"""Integrated storage network (Section 3.2).

* :mod:`~repro.network.packet` — packets and link/protocol parameters.
* :mod:`~repro.network.link` — serial links with token flow control.
* :mod:`~repro.network.topology` — ring/line/star/mesh/fat-tree builders
  with the 8-ports-per-node constraint and config-file I/O.
* :mod:`~repro.network.routing` — deterministic per-endpoint routing.
* :mod:`~repro.network.switch` — per-node internal/external switches.
* :mod:`~repro.network.endpoint` — logical endpoints with cluster-wide
  FIFO semantics and optional end-to-end flow control.
* :mod:`~repro.network.fabric` — :class:`StorageNetwork`, the assembled
  rack fabric.
* :mod:`~repro.network.ethernet` — conventional host-network baseline.
"""

from .endpoint import Endpoint, Message
from .ethernet import EthernetFabric
from .fabric import StorageNetwork
from .link import SerialLink
from .packet import NetworkConfig, Packet
from .routing import RoutingTable, build_routing_tables, shortest_hop_counts
from .switch import NodeSwitch
from .topology import (
    Cable,
    Topology,
    fat_tree,
    fully_connected,
    line,
    mesh2d,
    ring,
    star,
)

__all__ = [
    "NetworkConfig",
    "Packet",
    "SerialLink",
    "NodeSwitch",
    "Endpoint",
    "Message",
    "StorageNetwork",
    "EthernetFabric",
    "RoutingTable",
    "build_routing_tables",
    "shortest_hop_counts",
    "Cable",
    "Topology",
    "ring",
    "line",
    "star",
    "mesh2d",
    "fully_connected",
    "fat_tree",
]
