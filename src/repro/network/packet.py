"""Packets and network configuration for the integrated storage network.

The physical unit on the wire is a 128-bit (16-byte) flit; each flit
carries routing/virtual-channel overhead, which is why the paper sustains
8.2 Gbps of payload on a 10 Gbps link ("protocol overhead is under 18%",
Section 6.3).  We account that overhead analytically per packet instead of
simulating every flit: a packet of N payload bytes occupies
``N * (flit + overhead) / flit`` byte-times on the wire.

Large transfers are chunked into packets of ``max_packet_payload`` bytes
so multi-hop transfers pipeline across links without exploding the event
count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..sim import units

__all__ = ["NetworkConfig", "Packet"]

_seq = itertools.count()


@dataclass(frozen=True)
class NetworkConfig:
    """Link and protocol parameters (paper values by default)."""

    link_gbps: float = 10.0            # physical serial link rate
    hop_latency_ns: int = 480          # 0.48 us per hop (Section 6.3)
    flit_bytes: int = 16               # 128-bit data beats
    flit_overhead_bytes: float = 3.5   # routing/VC overhead per flit (~18%)
    max_packet_payload: int = 512      # chunking granularity for big sends
    link_credits: int = 16             # token flow-control credits per link
    endpoint_capacity: int = 16        # receive buffer slots per endpoint

    def __post_init__(self):
        if self.link_gbps <= 0:
            raise ValueError("link_gbps must be positive")
        if self.flit_bytes < 1 or self.flit_overhead_bytes < 0:
            raise ValueError("bad flit parameters")
        if self.max_packet_payload < self.flit_bytes:
            raise ValueError("max_packet_payload smaller than one flit")
        if self.link_credits < 1 or self.endpoint_capacity < 1:
            raise ValueError("credits/capacity must be >= 1")

    @property
    def bytes_per_ns(self) -> float:
        """Raw wire rate in bytes/ns (10 Gbps -> 1.25)."""
        return units.gbps_to_bytes_per_ns(self.link_gbps)

    @property
    def protocol_efficiency(self) -> float:
        """Payload fraction of wire time (paper: ~0.82)."""
        return self.flit_bytes / (self.flit_bytes + self.flit_overhead_bytes)

    @property
    def payload_gbps(self) -> float:
        """Sustainable payload rate of one link in Gbps."""
        return self.link_gbps * self.protocol_efficiency

    def wire_bytes(self, payload_bytes: int) -> float:
        """Wire occupancy (bytes, incl. flit overhead) for a payload."""
        if payload_bytes < 0:
            raise ValueError("negative payload")
        import math
        flits = max(1, math.ceil(payload_bytes / self.flit_bytes))
        return flits * (self.flit_bytes + self.flit_overhead_bytes)

    def serialize_ns(self, payload_bytes: int) -> int:
        """Time to clock one packet's flits onto the wire."""
        return units.transfer_ns(
            int(round(self.wire_bytes(payload_bytes))), self.bytes_per_ns)


@dataclass
class Packet:
    """One network packet: a chunk of a message on a logical endpoint.

    ``payload`` may be real bytes (applications) or any object
    (control/synthetic traffic); ``payload_bytes`` is what timing uses.
    ``seq`` is globally unique and monotone per send order, which the
    FIFO-ordering property tests rely on.
    """

    src: int
    dst: int
    endpoint: int
    payload: Any
    payload_bytes: int
    last: bool = True            # final chunk of its message?
    message_id: int = 0
    seq: int = field(default_factory=lambda: next(_seq))

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError("negative payload_bytes")
        if self.src < 0 or self.dst < 0 or self.endpoint < 0:
            raise ValueError("negative packet identifiers")
