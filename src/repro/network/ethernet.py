"""Host-side Ethernet baseline (what BlueDBM's integrated network avoids).

The paper: "we could have also measured the accesses to remote servers via
Ethernet, but that latency is at least 100x of the integrated network"
(Section 6.4).  The baseline configurations (H-RH-F, RAMCloud-style
DRAM+miss experiments) route requests through remote *host software* over
a conventional NIC and kernel stack; this model captures that cost:

* fixed per-message software/NIC/kernel latency (default 50 µs one way —
  a fast kernel TCP stack of the era; ~100x the 0.48 µs hop),
* 10 GbE serialization,
* FIFO per (src, dst) ordering.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..sim import Counter, Resource, Simulator, Store, units
from .endpoint import Message

__all__ = ["EthernetFabric"]


class EthernetFabric:
    """A conventional datacenter network between host servers."""

    def __init__(self, sim: Simulator, n_nodes: int,
                 rpc_latency_ns: int = 45 * units.US,
                 link_gbps: float = 10.0):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if rpc_latency_ns < 0:
            raise ValueError("negative rpc latency")
        self.sim = sim
        self.n_nodes = n_nodes
        self.rpc_latency_ns = rpc_latency_ns
        self.bytes_per_ns = units.gbps_to_bytes_per_ns(link_gbps)
        # One NIC per node serializes its outbound traffic.
        self._nics = [Resource(sim, capacity=1, name=f"nic-{n}")
                      for n in range(n_nodes)]
        self._queues: Dict[int, Store] = {
            n: Store(sim, name=f"eth-q{n}") for n in range(n_nodes)}
        self.messages = Counter("eth-messages")

    def send(self, src: int, dst: int, payload: Any, payload_bytes: int):
        """Send a message host-to-host (DES generator).

        Completes when the message is on the wire; delivery happens after
        the software + propagation latency.
        """
        self._check(src)
        self._check(dst)
        nic = self._nics[src]
        yield nic.request()
        try:
            yield self.sim.timeout(
                units.transfer_ns(payload_bytes, self.bytes_per_ns))
        finally:
            nic.release()
        self.sim.process(self._deliver(src, dst, payload, payload_bytes),
                         name="eth-deliver")
        self.messages.add()

    def _deliver(self, src: int, dst: int, payload: Any,
                 payload_bytes: int):
        yield self.sim.timeout(self.rpc_latency_ns)
        yield self._queues[dst].put(Message(src, payload, payload_bytes))

    def receive(self, node: int):
        """Receive the next message addressed to ``node`` (generator)."""
        self._check(node)
        message = yield self._queues[node].get()
        return message

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
