"""Serial links with token-based flow control (link layer, Section 3.2.2).

A link is unidirectional: the transmit side serializes one packet at a
time at the wire rate; the receive side holds packets in a bounded buffer.
Before transmitting, the sender must take a *token* (credit); the credit
is returned only when the receiver drains the packet from the buffer.
This "ensures that packets will not drop if the data rate is higher than
what the network can manage, or if the data cannot be received by the
destination node which is running slowly" — i.e. lossless backpressure
that propagates hop by hop.
"""

from __future__ import annotations

from typing import Optional

from ..sim import BandwidthMeter, Counter, CreditPool, Resource, Simulator, Store
from .packet import NetworkConfig, Packet

__all__ = ["SerialLink"]


class SerialLink:
    """One direction of a physical cable between two storage devices."""

    def __init__(self, sim: Simulator, config: NetworkConfig,
                 name: str = ""):
        self.sim = sim
        self.config = config
        self.name = name
        self._tx = Resource(sim, capacity=1, name=f"{name}-tx")
        self._credits = CreditPool(sim, initial=config.link_credits,
                                   name=f"{name}-credits")
        self._rx_buffer = Store(sim, name=f"{name}-rx")
        self.packets_sent = Counter(f"{name}-pkts")
        # Payload bytes serialized onto this wire — every hop charges
        # its own link, so an h-hop message shows up here h times while
        # the endpoint counters see it exactly once at each end.
        self.payload_bytes = Counter(f"{name}-payload-bytes")
        self.meter = BandwidthMeter(sim, name=f"{name}-bw")

    def transmit(self, packet: Packet):
        """Send one packet (DES generator).

        Completes once the packet has been fully *serialized*; propagation
        to the far-side buffer continues in the background so back-to-back
        packets stream at the full wire rate (the 0.48 µs hop latency is
        pipelined, not added per packet).  Blocks first on flow-control
        credits (tokens = free far-side buffer slots), then on the
        transmitter being free.
        """
        yield self._credits.take(1)
        yield self._tx.request()
        try:
            self.meter.record(0)
            yield self.sim.timeout(self.config.serialize_ns(
                packet.payload_bytes))
            self.meter.record(packet.payload_bytes)
        finally:
            self._tx.release()
        self.sim.process(self._propagate(packet), name="link-prop")
        self.packets_sent.add()
        self.payload_bytes.add(packet.payload_bytes)

    def _propagate(self, packet: Packet):
        """Propagation/SerDes latency, then occupy a far-side buffer slot.

        FIFO order holds because serialization is serialized by the tx
        resource and the propagation delay is constant.
        """
        yield self.sim.timeout(self.config.hop_latency_ns)
        yield self._rx_buffer.put(packet)

    def receive(self):
        """Take the next packet off the receive buffer (DES generator).

        Returning the flow-control token here models the token-based
        scheme: tokens track free buffer slots on the receiving side.
        """
        packet = yield self._rx_buffer.get()
        self._credits.give(1)
        return packet

    @property
    def buffered(self) -> int:
        """Packets currently waiting in the receive buffer."""
        return len(self._rx_buffer)

    @property
    def credits_available(self) -> int:
        return self._credits.credits
