"""Cluster topologies: "any network topology is possible as long as it
requires less than 8 network ports per node" (Figure 5).

A :class:`Topology` is a set of bidirectional cables between (node, port)
pairs.  Builders cover the paper's examples — ring (the deployed 20-node
configuration, Section 6.3), line, distributed star, 2-D mesh, fat tree —
plus fully-connected for small testbeds.  Rewiring means building a new
topology; route programming is done in software from a configuration
(Section 3.2.3: no discovery protocol, a network configuration file
populates the routing tables), reproduced here by
:func:`Topology.to_config` / :func:`Topology.from_config`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Cable", "Topology", "ring", "line", "star", "mesh2d",
           "fully_connected", "fat_tree"]

MAX_PORTS = 8


@dataclass(frozen=True)
class Cable:
    """A bidirectional physical cable between two node ports."""

    node_a: int
    port_a: int
    node_b: int
    port_b: int

    def __post_init__(self):
        if self.node_a == self.node_b:
            raise ValueError("cable loops back to the same node")
        for v in (self.node_a, self.port_a, self.node_b, self.port_b):
            if v < 0:
                raise ValueError("negative cable field")


class Topology:
    """Wiring of the storage network: nodes and the cables between them."""

    def __init__(self, n_nodes: int, max_ports: int = MAX_PORTS):
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        if max_ports < 1:
            raise ValueError(f"max_ports must be >= 1, got {max_ports}")
        self.n_nodes = n_nodes
        self.max_ports = max_ports
        self.cables: List[Cable] = []
        self._next_port = [0] * n_nodes

    def ports_used(self, node: int) -> int:
        return self._next_port[node]

    def connect(self, node_a: int, node_b: int) -> Cable:
        """Run a new cable between two nodes on their next free ports."""
        for node in (node_a, node_b):
            if not 0 <= node < self.n_nodes:
                raise ValueError(f"node {node} out of range")
            if self._next_port[node] >= self.max_ports:
                raise ValueError(
                    f"node {node} is out of ports "
                    f"(max {self.max_ports}, Figure 5 constraint)")
        cable = Cable(node_a, self._next_port[node_a],
                      node_b, self._next_port[node_b])
        self._next_port[node_a] += 1
        self._next_port[node_b] += 1
        self.cables.append(cable)
        return cable

    def neighbors(self, node: int) -> List[Tuple[int, int, int]]:
        """Outgoing connectivity of ``node`` as (port, peer, peer_port)."""
        result = []
        for cable in self.cables:
            if cable.node_a == node:
                result.append((cable.port_a, cable.node_b, cable.port_b))
            elif cable.node_b == node:
                result.append((cable.port_b, cable.node_a, cable.port_a))
        return sorted(result)

    def adjacency(self) -> Dict[int, List[Tuple[int, int]]]:
        """node -> sorted list of (port, neighbor)."""
        return {node: [(port, peer) for port, peer, _ in
                       self.neighbors(node)]
                for node in range(self.n_nodes)}

    def is_connected(self) -> bool:
        """True if every node can reach every other node."""
        if self.n_nodes == 1:
            return True
        seen = {0}
        frontier = [0]
        adj = self.adjacency()
        while frontier:
            node = frontier.pop()
            for _, peer in adj[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n_nodes

    # -- configuration file I/O (Section 3.2.3) ---------------------------
    def to_config(self) -> str:
        """Serialize to the JSON network configuration format."""
        return json.dumps({
            "n_nodes": self.n_nodes,
            "max_ports": self.max_ports,
            "cables": [[c.node_a, c.port_a, c.node_b, c.port_b]
                       for c in self.cables],
        }, indent=2)

    @classmethod
    def from_config(cls, text: str) -> "Topology":
        """Parse a configuration produced by :meth:`to_config`."""
        raw = json.loads(text)
        topo = cls(raw["n_nodes"], raw.get("max_ports", MAX_PORTS))
        for node_a, port_a, node_b, port_b in raw["cables"]:
            cable = Cable(node_a, port_a, node_b, port_b)
            for node, port in ((node_a, port_a), (node_b, port_b)):
                if port >= topo.max_ports:
                    raise ValueError(f"port {port} exceeds max_ports")
                topo._next_port[node] = max(topo._next_port[node], port + 1)
            topo.cables.append(cable)
        return topo


def line(n_nodes: int, lanes: int = 1) -> Topology:
    """A chain: node i wired to node i+1 with ``lanes`` parallel cables."""
    topo = Topology(n_nodes)
    for i in range(n_nodes - 1):
        for _ in range(lanes):
            topo.connect(i, i + 1)
    return topo


def ring(n_nodes: int, lanes: int = 1) -> Topology:
    """The deployed configuration: a ring with ``lanes`` cables per side.

    The paper's 20-node ring uses 4 lanes to each neighbor (Section 6.3),
    consuming exactly 8 ports per node.
    """
    if n_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    topo = line(n_nodes, lanes)
    for _ in range(lanes):
        topo.connect(n_nodes - 1, 0)
    return topo


def star(n_nodes: int, hub: int = 0) -> Topology:
    """Distributed star (Figure 5a): every node cabled to a hub node."""
    topo = Topology(n_nodes)
    for node in range(n_nodes):
        if node != hub:
            topo.connect(hub, node)
    return topo


def mesh2d(width: int, height: int) -> Topology:
    """2-D mesh (Figure 5b): node (x, y) = y*width + x."""
    topo = Topology(width * height)
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                topo.connect(node, node + 1)
            if y + 1 < height:
                topo.connect(node, node + width)
    return topo


def fully_connected(n_nodes: int) -> Topology:
    """Every pair cabled directly (small testbeds only: n <= 9)."""
    topo = Topology(n_nodes)
    for a in range(n_nodes):
        for b in range(a + 1, n_nodes):
            topo.connect(a, b)
    return topo


def fat_tree(n_spine: int, n_leaf: int) -> Topology:
    """Fat tree (Figure 5c): leaves each cabled to every spine node.

    Nodes 0..n_spine-1 are spines, the rest are leaves; all of them are
    ordinary storage nodes (BlueDBM has no dedicated switches).
    """
    topo = Topology(n_spine + n_leaf)
    for leaf in range(n_spine, n_spine + n_leaf):
        for spine in range(n_spine):
            topo.connect(spine, leaf)
    return topo
