"""The assembled storage network fabric.

Builds, from a :class:`~repro.network.topology.Topology` and a
:class:`~repro.network.packet.NetworkConfig`:

* two :class:`SerialLink` instances per cable (one per direction),
* one :class:`NodeSwitch` per node with routing tables computed by
  :func:`~repro.network.routing.build_routing_tables`,
* ``n_endpoints`` logical :class:`Endpoint` instances per node, all
  sharing the physical network (virtual channels).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..sim import Simulator
from .endpoint import Endpoint
from .link import SerialLink
from .packet import NetworkConfig
from .routing import build_routing_tables, shortest_hop_counts
from .switch import NodeSwitch
from .topology import Topology

__all__ = ["StorageNetwork"]


class StorageNetwork:
    """The rack-wide integrated storage network."""

    def __init__(self, sim: Simulator, topology: Topology,
                 config: Optional[NetworkConfig] = None,
                 n_endpoints: int = 4,
                 e2e_endpoints: Optional[Set[int]] = None):
        """Create the fabric.

        ``e2e_endpoints`` lists the endpoint ids that use end-to-end flow
        control (Section 3.2.3's per-endpoint choice); the rest rely on
        link-level backpressure only.
        """
        if n_endpoints < 1:
            raise ValueError(f"n_endpoints must be >= 1, got {n_endpoints}")
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.n_endpoints = n_endpoints
        self.e2e_endpoints = e2e_endpoints or set()

        tables = build_routing_tables(topology, n_endpoints)
        self.switches: List[NodeSwitch] = [
            NodeSwitch(sim, node, self.config, tables[node])
            for node in range(topology.n_nodes)
        ]
        self.links: List[SerialLink] = []
        for cable in topology.cables:
            a2b = SerialLink(sim, self.config,
                             name=f"{cable.node_a}:{cable.port_a}->"
                                  f"{cable.node_b}:{cable.port_b}")
            b2a = SerialLink(sim, self.config,
                             name=f"{cable.node_b}:{cable.port_b}->"
                                  f"{cable.node_a}:{cable.port_a}")
            self.switches[cable.node_a].attach_out(cable.port_a, a2b)
            self.switches[cable.node_b].attach_in(cable.port_b, a2b)
            self.switches[cable.node_b].attach_out(cable.port_b, b2a)
            self.switches[cable.node_a].attach_in(cable.port_a, b2a)
            self.links.extend([a2b, b2a])

        self._endpoints: Dict[Tuple[int, int], Endpoint] = {}
        for node in range(topology.n_nodes):
            for ep in range(n_endpoints):
                self._endpoints[(node, ep)] = Endpoint(
                    sim, self, node, ep, self.switches[node],
                    end_to_end_fc=ep in self.e2e_endpoints)

        self._hops: Dict[int, Dict[int, int]] = {
            node: shortest_hop_counts(topology, node)
            for node in range(topology.n_nodes)
        }

    def endpoint(self, node: int, endpoint_id: int) -> Endpoint:
        """The ``endpoint_id`` endpoint instance on ``node``."""
        key = (node, endpoint_id)
        if key not in self._endpoints:
            raise KeyError(f"no endpoint {endpoint_id} on node {node}")
        return self._endpoints[key]

    def hop_count(self, src: int, dst: int) -> int:
        """Shortest-path hop distance between two nodes."""
        return self._hops[src][dst]

    def average_hop_count(self) -> float:
        """Mean hops over all ordered node pairs (ring analytics, §6.3)."""
        n = self.topology.n_nodes
        if n < 2:
            return 0.0
        total = sum(self._hops[s][d]
                    for s in range(n) for d in range(n) if s != d)
        return total / (n * (n - 1))

    def total_payload_gbps_capacity(self) -> float:
        """Aggregate one-directional payload capacity of all links."""
        return len(self.links) / 2 * self.config.payload_gbps

    def byte_ledger(self) -> dict:
        """Fabric-wide payload-byte reconciliation.

        Endpoint counters charge each message's payload exactly once at
        the source (``sent``) and once at the destination
        (``received``); the wire charges every *hop*, so an h-hop
        message contributes h times its payload to
        ``link_payload_bytes``, of which h-1 shares are relays
        (``forwarded_bytes``).  After the network drains::

            endpoint_sent_bytes == endpoint_received_bytes
            link_payload_bytes - forwarded_bytes == endpoint_sent_bytes

        (the second identity counts only traffic that crossed a wire —
        node-local sends never leave the internal switch and appear in
        the endpoint counters alone).
        """
        return {
            "endpoint_sent_bytes": sum(
                ep.sent_bytes.value for ep in self._endpoints.values()),
            "endpoint_received_bytes": sum(
                ep.received_bytes.value
                for ep in self._endpoints.values()),
            "link_payload_bytes": sum(
                link.payload_bytes.value for link in self.links),
            "forwarded_bytes": sum(
                switch.forwarded_bytes.value
                for switch in self.switches),
        }
