"""Logical endpoints: cluster-wide FIFO send/receive (Section 3.2.1).

"Each endpoint exposes two interfaces, send and receive.  An in-store
processor can send data to a remote node by calling send with a pair of
data and destination node index, or receive data from remote nodes by
calling receive, which returns a pair of data and source node index.
These interfaces provide back pressure, so that each endpoint can be
treated like a FIFO interface across the whole cluster."

End-to-end flow control is optional per endpoint (Section 3.2.3): with it
on, a sender only transmits when the destination endpoint has buffer
space, at the price of credit-return latency; with it off, latency is
minimal but a non-draining receiver eventually blocks the network through
link-level backpressure.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from ..sim import Counter, CreditPool, Simulator, Store
from .packet import NetworkConfig, Packet
from .switch import NodeSwitch

__all__ = ["Endpoint", "Message"]


class Message:
    """A received message: payload plus its source node."""

    __slots__ = ("src", "payload", "payload_bytes")

    def __init__(self, src: int, payload: Any, payload_bytes: int):
        self.src = src
        self.payload = payload
        self.payload_bytes = payload_bytes


class Endpoint:
    """One logical endpoint instance on one node.

    The same ``endpoint_id`` on every node forms one virtual channel; its
    routes are deterministic, so messages between any (src, dst) pair on
    one endpoint arrive in send order.
    """

    def __init__(self, sim: Simulator, network: "StorageNetwork",
                 node: int, endpoint_id: int, switch: NodeSwitch,
                 end_to_end_fc: bool = False):
        self.sim = sim
        self.network = network
        self.node = node
        self.endpoint_id = endpoint_id
        self.switch = switch
        self.end_to_end_fc = end_to_end_fc
        self._queue = switch.register_endpoint(endpoint_id)
        config = network.config
        self._e2e_credits: Optional[CreditPool] = (
            CreditPool(sim, initial=config.endpoint_capacity,
                       name=f"e2e-n{node}ep{endpoint_id}")
            if end_to_end_fc else None)
        self._message_ids = itertools.count()
        self._partial: Dict[Tuple[int, int], int] = {}
        self.sent = Counter("sent")
        self.received = Counter("received")
        # Payload-byte counters: what end-to-end bandwidth accounting
        # (e.g. remote-tenant QoS) reconciles against.
        self.sent_bytes = Counter("sent-bytes")
        self.received_bytes = Counter("received-bytes")

    # -- send ---------------------------------------------------------------
    def send(self, dst: int, payload: Any, payload_bytes: int):
        """Send one message to node ``dst`` (DES generator).

        Large payloads are chunked into packets that pipeline across the
        network; the payload object itself rides the last chunk.
        Completes when the final chunk has been injected (serialized onto
        the first link), i.e. with FIFO backpressure semantics.
        """
        if payload_bytes < 0:
            raise ValueError("negative payload_bytes")
        config = self.network.config
        remote = self.network.endpoint(dst, self.endpoint_id)
        message_id = next(self._message_ids)
        chunk = config.max_packet_payload
        offsets = list(range(0, max(payload_bytes, 1), chunk))
        for i, offset in enumerate(offsets):
            is_last = i == len(offsets) - 1
            size = (min(chunk, payload_bytes - offset)
                    if payload_bytes else 0)
            packet = Packet(
                src=self.node, dst=dst, endpoint=self.endpoint_id,
                payload=payload if is_last else None,
                payload_bytes=size, last=is_last, message_id=message_id)
            if remote._e2e_credits is not None:
                yield remote._e2e_credits.take(1)
            yield self.sim.process(self.switch.inject(packet))
        self.sent.add()
        self.sent_bytes.add(payload_bytes)

    # -- receive --------------------------------------------------------------
    def receive(self):
        """Receive the next complete message (DES generator).

        Reassembles chunked messages; chunks from different sources may
        interleave (different routes), but chunks of one (src, message)
        arrive in order on this endpoint's deterministic route.
        Returns a :class:`Message`.
        """
        while True:
            packet = yield self._queue.get()
            if self._e2e_credits is not None:
                self.sim.process(self._return_credit(packet.src),
                                 name="e2e-credit")
            key = (packet.src, packet.message_id)
            accumulated = self._partial.get(key, 0) + packet.payload_bytes
            if not packet.last:
                self._partial[key] = accumulated
                continue
            self._partial.pop(key, None)
            self.received.add()
            self.received_bytes.add(accumulated)
            return Message(packet.src, packet.payload, accumulated)

    def _return_credit(self, src: int):
        """Model the credit-return flow-control packet's flight time."""
        hops = self.network.hop_count(self.node, src)
        yield self.sim.timeout(hops * self.network.config.hop_latency_ns)
        self._e2e_credits.give(1)

    @property
    def pending(self) -> int:
        """Packets waiting in this endpoint's receive buffer."""
        return len(self._queue)
