"""``repro.faults`` — deterministic fault injection and reliability.

:class:`FaultPlan` is a pure seeded fault schedule (every decision a
BLAKE2s hash of the seed and the operation's identity);
:class:`FaultInjector` is its per-node runtime face, installed on the
chip model by the session layer when a scenario carries a
``FaultSpec``.  :func:`set_fault_seed_override` backs the
``repro run --fault-seed N`` CLI flag: when set, the session replaces
the seed of any FaultSpec-bearing scenario it builds.
"""

from __future__ import annotations

from typing import Optional

from .plan import FaultInjector, FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "set_fault_seed_override",
           "fault_seed_override"]

_seed_override: Optional[int] = None


def set_fault_seed_override(seed: Optional[int]) -> None:
    """Set (or clear, with ``None``) the process-wide fault-seed
    override applied to every FaultSpec-bearing scenario the session
    layer builds — the CLI's ``--fault-seed N``."""
    global _seed_override
    _seed_override = seed


def fault_seed_override() -> Optional[int]:
    """The currently active fault-seed override, or ``None``."""
    return _seed_override
