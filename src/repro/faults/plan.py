"""Deterministic fault schedules: the flash learns to lie, repeatably.

The paper's array only works because firmware hides NAND's limited
endurance and "frequent errors" (Section 3.1).  This module supplies
the lying half: a :class:`FaultPlan` is a *pure* seeded schedule — every
decision (does this program fail?  does this read come back
uncorrectable?) is a function of the seed and the operation's identity
(block key, page, per-block ordinal), hashed through BLAKE2s.  Nothing
depends on wall-clock interleaving, process order, or RNG draw order,
so the same seed produces the same fault schedule across reruns, across
facades, and across ``--jobs N`` worker processes.

A :class:`FaultInjector` wraps one plan with the small amount of
runtime state the chip model needs (per-block read counts since the
last erase, injection counters) and applies the time gates (burst
window, chip-failure onset).  The chip consults it only when installed
— ``chip.faults is None`` is the default and costs nothing, keeping
every pre-existing run byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..flash.geometry import PhysAddr

__all__ = ["FaultPlan", "FaultInjector"]

_BlockKey = Tuple[int, int, int, int, int]


def _block_key(addr: PhysAddr) -> _BlockKey:
    return (addr.node, addr.card, addr.bus, addr.chip, addr.block)


@dataclass(frozen=True)
class FaultPlan:
    """A pure, seeded fault schedule.

    ``program_fail_rate`` / ``erase_fail_rate`` are per-operation
    probabilities, active only inside the burst window
    ``[window_start_ns, window_end_ns)`` (an unbounded window when both
    are ``None``).  ``read_disturb_limit`` arms read-disturb: after that
    many reads of a block since its last erase, each further read is
    uncorrectable with probability ``read_disturb_rate``.  ``wear_ber``
    arms wear-out: once a block's wear fraction passes
    ``wear_ber_onset``, reads are uncorrectable with a probability that
    ramps linearly from 0 to ``wear_ber`` at 100 % wear (and saturates
    beyond).  ``fail_chip`` kills one chip — all programs and erases on
    ``(card, bus, chip)`` fail after ``fail_chip_after_ns``; reads keep
    working (the stored charge is intact), which is what makes
    evacuation possible.
    """

    seed: int = 0
    program_fail_rate: float = 0.0
    erase_fail_rate: float = 0.0
    window_start_ns: Optional[int] = None
    window_end_ns: Optional[int] = None
    read_disturb_limit: Optional[int] = None
    read_disturb_rate: float = 1.0
    wear_ber: float = 0.0
    wear_ber_onset: float = 0.75
    fail_chip: Optional[Tuple[int, int, int]] = None
    fail_chip_after_ns: int = 0

    def __post_init__(self):
        for name in ("program_fail_rate", "erase_fail_rate",
                     "read_disturb_rate", "wear_ber"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.wear_ber_onset < 1.0:
            raise ValueError(
                f"wear_ber_onset must be in [0, 1), got {self.wear_ber_onset}")
        if self.read_disturb_limit is not None \
                and self.read_disturb_limit < 1:
            raise ValueError("read_disturb_limit must be >= 1")

    # -- the hash that replaces an RNG --------------------------------------
    def _unit(self, kind: str, *key: int) -> float:
        """A uniform fraction in [0, 1) keyed by (seed, kind, identity).

        Deterministic by construction: no draw order, no shared stream.
        """
        token = f"{self.seed}:{kind}:" + ":".join(str(k) for k in key)
        digest = hashlib.blake2s(token.encode()).digest()
        return int.from_bytes(digest[:8], "big") / (1 << 64)

    # -- pure decisions ------------------------------------------------------
    def in_window(self, now: int) -> bool:
        """Is the program/erase burst active at simulated time ``now``?"""
        if self.window_start_ns is not None and now < self.window_start_ns:
            return False
        if self.window_end_ns is not None and now >= self.window_end_ns:
            return False
        return True

    def chip_dead(self, addr: PhysAddr, now: int) -> bool:
        """Has ``addr``'s chip been declared dying at time ``now``?"""
        if self.fail_chip is None:
            return False
        return ((addr.card, addr.bus, addr.chip) == self.fail_chip
                and now >= self.fail_chip_after_ns)

    def fails_program(self, key: _BlockKey, page: int, cycle: int) -> bool:
        """Does programming ``page`` of ``key`` on erase-cycle ``cycle``
        fail?  Keyed per (block, page, cycle): a rewrite after recovery
        lands on a different page and rolls fresh odds."""
        if self.program_fail_rate <= 0.0:
            return False
        return self._unit("prog", *key, page, cycle) < self.program_fail_rate

    def fails_erase(self, key: _BlockKey, cycle: int) -> bool:
        """Does the ``cycle``-th erase of block ``key`` fail?"""
        if self.erase_fail_rate <= 0.0:
            return False
        return self._unit("erase", *key, cycle) < self.erase_fail_rate

    def read_uncorrectable(self, key: _BlockKey, read_index: int,
                           wear_fraction: float) -> bool:
        """Does the ``read_index``-th read of ``key`` since its last
        erase come back ECC-uncorrectable?"""
        if self.read_disturb_limit is not None \
                and read_index >= self.read_disturb_limit \
                and self._unit("disturb", *key, read_index) \
                < self.read_disturb_rate:
            return True
        if self.wear_ber > 0.0 and wear_fraction >= self.wear_ber_onset:
            span = 1.0 - self.wear_ber_onset
            ramp = min(1.0, (wear_fraction - self.wear_ber_onset) / span)
            if self._unit("wear", *key, read_index) < self.wear_ber * ramp:
                return True
        return False


class FaultInjector:
    """Runtime face of one :class:`FaultPlan` for one node's chips.

    Holds the only mutable state fault injection needs — per-block read
    counts since the last erase (read-disturb's clock) and the injection
    counters the metrics layer surfaces.  All *decisions* delegate to
    the pure plan, so two runs that issue the same operations see the
    same faults regardless of interleaving.
    """

    def __init__(self, plan: FaultPlan, node: int = 0):
        self.plan = plan
        self.node = node
        self._reads_since_erase: Dict[_BlockKey, int] = {}
        self.program_failures = 0
        self.erase_failures = 0
        self.read_uncorrectables = 0
        self.chip_refusals = 0

    # -- chip-model hooks ----------------------------------------------------
    def program_fails(self, addr: PhysAddr, cycle: int, now: int) -> bool:
        """Consulted by :meth:`FlashChip.program` after the program time
        has been billed; ``cycle`` is the block's current erase count."""
        if self.plan.chip_dead(addr, now):
            self.chip_refusals += 1
            return True
        if self.plan.in_window(now) \
                and self.plan.fails_program(_block_key(addr), addr.page,
                                            cycle):
            self.program_failures += 1
            return True
        return False

    def erase_fails(self, addr: PhysAddr, cycle: int, now: int) -> bool:
        """Consulted by :meth:`FlashChip.erase`; ``cycle`` is the count
        *including* the erase being attempted."""
        if self.plan.chip_dead(addr, now):
            self.chip_refusals += 1
            return True
        if self.plan.in_window(now) \
                and self.plan.fails_erase(_block_key(addr), cycle):
            self.erase_failures += 1
            return True
        return False

    def read_flips(self, addr: PhysAddr, wear_fraction: float,
                   natural: int) -> int:
        """Consulted by :meth:`FlashChip.read` after the natural error
        model ran; may elevate the flip count to 2 (uncorrectable for
        SECDED).  Reads on a dead chip still return data — stored
        charge survives controller death, which is what evacuation
        relies on."""
        key = _block_key(addr)
        index = self._reads_since_erase.get(key, 0)
        self._reads_since_erase[key] = index + 1
        if natural >= 2:
            return natural
        if self.plan.read_uncorrectable(key, index, wear_fraction):
            self.read_uncorrectables += 1
            return 2
        return natural

    def note_erase(self, addr: PhysAddr) -> None:
        """A successful erase resets the block's read-disturb clock."""
        self._reads_since_erase.pop(_block_key(addr), None)

    def stats(self) -> Dict[str, int]:
        return {
            "program_failures": self.program_failures,
            "erase_failures": self.erase_failures,
            "read_uncorrectables": self.read_uncorrectables,
            "chip_refusals": self.chip_refusals,
        }
