"""Batched/async submission experiments: queue-depth sweep + coalescing.

Two registered extensions probe the asynchronous request path this
repo grew on top of the paper's card:

* ``qd_sweep`` — one closed-loop host worker drives
  :meth:`~repro.host.iface.HostInterface.submit` at queue depths 1→64.
  Single-command latency is ~50 µs, so bandwidth at depth 1 is a small
  fraction of the card's; it must rise monotonically with depth until
  the PCIe/flash ceiling saturates — the paper's "multiple commands
  must be in flight to saturate the device" in one figure.
* ``batching`` — splitter-admission coalescing on/off under a
  sequential and a random tenant at queue depth 16 with an 8-slot port
  cap.  Sequential windows merge into ~8-page commands (one slot, one
  admission grant, one command setup per run), multiplying the pages in
  flight past the slot cap; random traffic almost never merges and
  must stay bit-identical to the coalescing-off path.

Both sweeps run their points through
:func:`~repro.parallel.parallel_map`: each point is a top-level pure
function building its own :class:`~repro.api.Session` from primitives,
so ``jobs=N`` fans the sweep across worker processes with results
byte-identical to the serial run.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..api import (
    BENCH_GEOMETRY,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    WorkloadSpec,
    experiment,
)
from ..parallel import parallel_map
from ..sim import units

# -- qd_sweep ----------------------------------------------------------
QD_VALUES = (1, 2, 4, 8, 16, 32, 64)
QD_WINDOW_NS = 2_500_000


def qd_sweep_spec(queue_depth: int,
                  duration_ns: int = QD_WINDOW_NS) -> ScenarioSpec:
    """One kernel-bypass host worker at the given queue depth."""
    return ScenarioSpec(
        name=f"qd-sweep-{queue_depth}", geometry=BENCH_GEOMETRY,
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=queue_depth,
            tenants=(TenantSpec("host", access="host", workers=1,
                                software_path=False, seed_base=7),)))


def qd_sweep_point(args: Tuple[int, int]) -> RunResult:
    """One sweep point: ``(queue_depth, duration_ns)`` -> session run."""
    queue_depth, duration_ns = args
    return Session(qd_sweep_spec(queue_depth, duration_ns)).run()


@experiment("qd_sweep", title="bandwidth vs host queue depth (1..64)",
            produces="benchmarks/test_qd_sweep.py", label="QD-sweep")
def run_qd_sweep(jobs: int = 1,
                 depths: Sequence[int] = QD_VALUES,
                 window_ns: int = QD_WINDOW_NS) -> RunResult:
    result = RunResult("qd_sweep")
    page = BENCH_GEOMETRY.page_size
    runs = parallel_map(qd_sweep_point,
                        [(depth, window_ns) for depth in depths],
                        jobs=jobs)
    depths_out, bandwidths, iops, means = [], [], [], []
    measured: Dict[int, dict] = {}
    rows = []
    for depth, run in zip(depths, runs):
        stats = run.tenant_stats["host"]
        bandwidth = stats["completed"] * page / window_ns
        depths_out.append(depth)
        bandwidths.append(bandwidth)
        iops.append(stats["iops"])
        means.append(stats["mean_ns"])
        measured[depth] = dict(stats, bandwidth_gbs=bandwidth)
        rows.append([depth, f"{stats['completed']:.0f}",
                     f"{stats['iops'] / 1000:.1f}",
                     f"{bandwidth:.2f}",
                     f"{units.to_us(stats['mean_ns']):.0f}",
                     f"{units.to_us(stats['p99_ns']):.0f}"])
    result.series["queue_depth"] = depths_out
    result.series["bandwidth_gbs"] = bandwidths
    result.series["iops"] = iops
    result.series["mean_ns"] = means
    result.metrics["by_depth"] = measured
    result.metrics["window_ns"] = window_ns
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "qd_sweep",
        "Queue-depth sweep: one closed-loop host worker, async batched "
        "submission (bandwidth rises with depth until PCIe/flash "
        "saturates; depth 1 is the seed's synchronous loop)",
        ["QD", "Done", "kIOPS", "GB/s", "mean(us)", "p99(us)"],
        rows)
    return result


# -- batching ----------------------------------------------------------
BATCHING_WINDOW_NS = 2_500_000
BATCHING_QD = 16
BATCHING_WORKERS = 4
BATCHING_SLOTS = 8
BATCHING_MAX_PAGES = 8


def batching_spec(pattern: str, coalesce: bool,
                  duration_ns: int = BATCHING_WINDOW_NS) -> ScenarioSpec:
    """Four ISP readers at qd 16 behind an 8-slot port cap."""
    return ScenarioSpec(
        name=f"batching-{pattern}-{'on' if coalesce else 'off'}",
        geometry=BENCH_GEOMETRY, coalesce=coalesce,
        coalesce_max_pages=BATCHING_MAX_PAGES,
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=BATCHING_QD,
            tenants=(TenantSpec("isp", access="isp",
                                workers=BATCHING_WORKERS,
                                max_in_flight=BATCHING_SLOTS,
                                pattern=pattern, seed_base=3),)))


def batching_point(args: Tuple[str, bool, int]) -> RunResult:
    """One point: ``(pattern, coalesce, duration_ns)`` -> session run."""
    pattern, coalesce, duration_ns = args
    return Session(batching_spec(pattern, coalesce, duration_ns)).run()


@experiment("batching",
            title="splitter coalescing: sequential vs random tenants",
            produces="benchmarks/test_batching.py", label="Batching")
def run_batching(jobs: int = 1,
                 window_ns: int = BATCHING_WINDOW_NS) -> RunResult:
    result = RunResult("batching")
    page = BENCH_GEOMETRY.page_size
    points = [(pattern, coalesce, window_ns)
              for pattern in ("sequential", "random")
              for coalesce in (False, True)]
    runs = parallel_map(batching_point, points, jobs=jobs)
    measured: Dict[str, dict] = {}
    rows = []
    for (pattern, coalesce, _), run in zip(points, runs):
        stats = run.tenant_stats["isp"]
        bandwidth = stats["completed"] * page / window_ns
        co = (run.metrics.get("coalescing", {})
              .get(0, {}).get("isp", {}))
        key = f"{pattern}-{'on' if coalesce else 'off'}"
        measured[key] = {
            "tenant": dict(stats), "bandwidth_gbs": bandwidth,
            "coalescing": co,
        }
        rows.append([
            pattern, "on" if coalesce else "off",
            f"{stats['completed']:.0f}",
            f"{bandwidth:.2f}",
            f"{units.to_us(stats['mean_ns']):.0f}",
            f"{units.to_us(stats['p99_ns']):.0f}",
            f"{co['pages_per_command']:.1f}" if co else "-",
        ])
    result.metrics["scenarios"] = measured
    result.metrics["window_ns"] = window_ns
    result.metrics["queue_depth"] = BATCHING_QD
    result.metrics["max_pages"] = BATCHING_MAX_PAGES
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "batching",
        "Admission coalescing: 4 ISP readers, qd 16, 8-slot port cap "
        "(sequential windows merge into ~8-page commands — lower "
        "per-page latency, higher bandwidth; random traffic is "
        "untouched)",
        ["Pattern", "Coalesce", "Done", "GB/s", "mean(us)", "p99(us)",
         "pages/cmd"],
        rows)
    return result
