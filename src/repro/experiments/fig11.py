"""Figure 11: integrated network bandwidth/latency, and the Section 6.3
ring analytics.

The per-hop table now carries per-message delivery mean and p99 next to
the single-probe latency (the ROADMAP "p99 columns next to the means"
item): every streamed message's send→receive time feeds a
:class:`~repro.sim.LatencyHistogram`, so queueing inside the stream —
not just the cold first flit — is visible.
"""

from __future__ import annotations

from ..api import RunResult, experiment
from ..network import StorageNetwork, line, ring
from ..sim import LatencyHistogram, Simulator, units

MAX_HOPS = 5
STREAM_MESSAGES = 60
MESSAGE_BYTES = 512


def measure_hops(hops: int):
    """One stream over ``hops`` hops ->
    (payload_gbps, latency_us, per-message LatencyHistogram)."""
    sim = Simulator()
    net = StorageNetwork(sim, line(hops + 1), n_endpoints=1)
    done = {}
    sent = []
    stream = LatencyHistogram(f"stream-{hops}hops")

    def sender(sim):
        # Latency probe: one small (single-flit) message first.
        yield sim.process(net.endpoint(0, 0).send(hops, "probe", 16))
        for i in range(STREAM_MESSAGES):
            sent.append(sim.now)
            yield sim.process(
                net.endpoint(0, 0).send(hops, i, MESSAGE_BYTES))

    def receiver(sim):
        yield sim.process(net.endpoint(hops, 0).receive())
        done["latency"] = sim.now
        t0 = sim.now
        for i in range(STREAM_MESSAGES):
            yield sim.process(net.endpoint(hops, 0).receive())
            stream.record(sim.now - sent[i])
        done["stream_ns"] = sim.now - t0

    sim.process(sender(sim))
    sim.process(receiver(sim))
    sim.run()
    gbps = units.bandwidth_gbps(
        STREAM_MESSAGES * MESSAGE_BYTES, done["stream_ns"])
    return gbps, units.to_us(done["latency"]), stream


@experiment("fig11", title="network bandwidth/latency vs hops",
            produces="benchmarks/test_fig11_network.py",
            label="Figure 11")
def run_fig11() -> RunResult:
    hops = list(range(1, MAX_HOPS + 1))
    measured = [measure_hops(h) for h in hops]
    gbps = [m[0] for m in measured]
    latency = [m[1] for m in measured]
    mean_us = [units.to_us(m[2].mean) for m in measured]
    p99_us = [units.to_us(m[2].percentile(99)) for m in measured]

    result = RunResult("fig11")
    result.series = {"hops": hops,
                     "bandwidth_gbps": gbps,
                     "latency_us": latency,
                     "stream_mean_us": mean_us,
                     "stream_p99_us": p99_us}
    result.add_table(
        "fig11_network",
        "Figure 11: integrated network performance "
        "(probe = cold single-flit latency; mean/p99 = per-message "
        f"delivery over the {STREAM_MESSAGES}-message stream)",
        ["hops", "bandwidth (Gb/s, paper 8.2)",
         "latency (us, paper 0.48/hop)", "mean (us)", "p99 (us)"],
        [[h, round(g, 2), round(l, 2), round(m, 2), round(p, 2)]
         for h, g, l, m, p in zip(hops, gbps, latency, mean_us, p99_us)])
    result.metrics = {"gbps": gbps, "latency_us": latency,
                      "stream_mean_us": mean_us,
                      "stream_p99_us": p99_us}
    return result


@experiment("fig11_ring", title="20-node 4-lane ring analytics",
            produces="benchmarks/test_fig11_network.py",
            label="Figure 11")
def run_fig11_ring() -> RunResult:
    sim = Simulator()
    net = StorageNetwork(sim, ring(20, lanes=4), n_endpoints=4)
    avg_hops = net.average_hop_count()
    avg_latency_us = avg_hops * units.to_us(net.config.hop_latency_ns)
    ring_gbps = 4 * net.config.payload_gbps  # 4 lanes across the cut

    result = RunResult("fig11_ring")
    result.add_table(
        "fig11_ring_analytics",
        "Section 6.3: 20-node 4-lane ring analytics",
        ["Metric", "Measured", "Paper"],
        [["average hops to remote node", f"{avg_hops:.2f}", "5"],
         ["average latency (us)", f"{avg_latency_us:.2f}", "2.5"],
         ["ring throughput (Gb/s)", f"{ring_gbps:.1f}", "32.8"]])
    result.metrics = {"avg_hops": avg_hops,
                      "avg_latency_us": avg_latency_us,
                      "ring_gbps": ring_gbps}
    return result
