"""Tables 1-3: FPGA resource usage and node power."""

from __future__ import annotations

from ..api import RunResult, experiment
from ..flash import DEFAULT_GEOMETRY
from ..host import HostConfig
from ..reporting import (
    NodePower,
    PowerModel,
    artix7_flash_controller,
    fits_virtex7,
    ramcloud_equivalent,
    totals,
    virtex7_host,
)
from ..reporting.resources import (
    ARTIX7_BRAM,
    ARTIX7_LUTS,
    ARTIX7_REGS,
    VIRTEX7_LUTS,
    VIRTEX7_REGS,
)


@experiment("table1", title="Artix-7 flash controller resources",
            produces="benchmarks/test_table1_flash_resources.py",
            label="Table 1")
def run_table1() -> RunResult:
    rows = artix7_flash_controller(DEFAULT_GEOMETRY)
    total = totals(rows)

    result = RunResult("table1")
    table_rows = [[r.name, r.count, r.luts, r.registers, r.bram]
                  for r in rows]
    table_rows.append([
        f"Artix-7 Total ({total.total_luts / ARTIX7_LUTS:.0%} LUTs, "
        f"{total.total_registers / ARTIX7_REGS:.0%} regs, "
        f"{total.total_bram / ARTIX7_BRAM:.0%} BRAM)",
        "", total.total_luts, total.total_registers, total.total_bram,
    ])
    result.add_table(
        "table1_flash_resources",
        "Table 1: Flash controller on Artix-7 resource usage "
        "(paper total: 75225 LUTs / 56%)",
        ["Module Name", "#", "LUTs", "Registers", "BRAM"], table_rows)
    result.metrics["modules"] = {
        r.name: {"count": r.count, "luts": r.luts,
                 "registers": r.registers, "bram": r.bram}
        for r in rows}
    result.metrics["total"] = {
        "luts": total.total_luts, "registers": total.total_registers,
        "bram": total.total_bram,
        "lut_fraction": total.total_luts / ARTIX7_LUTS,
        "bram_fraction": total.total_bram / ARTIX7_BRAM,
    }
    return result


@experiment("table2", title="Virtex-7 host resources",
            produces="benchmarks/test_table2_host_resources.py",
            label="Table 2")
def run_table2() -> RunResult:
    rows = virtex7_host(host=HostConfig())
    total = totals(rows)

    result = RunResult("table2")
    table_rows = [[r.name, r.count, r.total_luts, r.total_registers,
                   r.total_bram] for r in rows]
    table_rows.append([
        f"Virtex-7 Total ({total.total_luts / VIRTEX7_LUTS:.0%} LUTs, "
        f"{total.total_registers / VIRTEX7_REGS:.0%} regs)",
        "", total.total_luts, total.total_registers, total.total_bram,
    ])
    result.add_table(
        "table2_host_resources",
        "Table 2: Host Virtex-7 resource usage "
        "(paper total: 135271 LUTs / 45%)",
        ["Module Name", "#", "LUTs", "Registers", "RAMB36"], table_rows)
    result.metrics["modules"] = {
        r.name: {"count": r.count, "luts": r.total_luts,
                 "registers": r.total_registers, "bram": r.total_bram}
        for r in rows}
    result.metrics["total"] = {
        "luts": total.total_luts, "registers": total.total_registers,
        "bram": total.total_bram,
        "lut_fraction": total.total_luts / VIRTEX7_LUTS,
    }
    result.metrics["fits_virtex7"] = fits_virtex7(rows)
    return result


@experiment("table3", title="node power (240 W, <20% added)",
            produces="benchmarks/test_table3_power.py",
            label="Table 3")
def run_table3() -> RunResult:
    node = NodePower()
    rack = PowerModel(n_nodes=20)
    cloud = ramcloud_equivalent(rack.capacity_bytes)

    result = RunResult("table3")
    result.add_table(
        "table3_power",
        "Table 3: BlueDBM estimated power consumption "
        "(paper: 240 W/node, <20% added)",
        ["Component", "Power (Watts)"],
        [[name, watts] for name, watts in node.rows().items()])
    result.add_table(
        "table3_power_comparison",
        "Appliance vs DRAM cloud at equal capacity",
        ["System", "Servers", "Power (W)"],
        [["BlueDBM rack (20 TB flash)", rack.n_nodes, rack.cluster_w],
         ["RAMCloud-style (20 TB DRAM)", int(cloud["servers"]),
          cloud["power_w"]]])
    result.metrics["node_rows"] = dict(node.rows())
    result.metrics["added_fraction"] = node.added_fraction
    result.metrics["rack_w"] = rack.cluster_w
    result.metrics["cloud_w"] = cloud["power_w"]
    return result
