"""Figure 20: distributed graph traversal throughput.

Dependent page-chain lookups across a 3-node cluster under the six
access configurations; every configuration must visit the identical
(oracle-verified) vertex sequence.  Each configuration's table row now
carries the unified request tracer's per-lookup mean and p99 next to
the rate (the ROADMAP "p99 columns next to the means" item) — the
traced flash/network accesses behind the lookups, where the
configuration performs any.
"""

from __future__ import annotations

from ..api import BENCH_GEOMETRY, RunResult, ScenarioSpec, Session, \
    experiment
from ..apps import DistributedGraph, GraphTraversal
from ..sim import units

CONFIGS = ["isp-f", "h-f", "h-rh-f", "dram-50f", "dram-30f", "h-dram"]
LABELS = {"isp-f": "ISP-F", "h-f": "H-F", "h-rh-f": "H-RH-F",
          "dram-50f": "50%F", "dram-30f": "30%F", "h-dram": "H-DRAM"}
N_VERTICES = 600
STEPS = 120


def measure(config: str) -> tuple:
    session = Session(ScenarioSpec(name=f"fig20-{config}", n_nodes=3,
                                   geometry=BENCH_GEOMETRY))
    sim = session.sim
    graph = DistributedGraph(session.cluster, N_VERTICES, avg_degree=6,
                             seed=13)
    traversal = GraphTraversal(graph, home_node=0, seed=13)

    def proc(sim):
        rate, paths = yield from traversal.run(config, 1, STEPS)
        return rate, paths

    rate, paths = sim.run_process(proc(sim))
    assert paths[0] == graph.reference_walk(1, STEPS), config
    overall = session.tracer.overall_latency()
    return rate, overall


@experiment("fig20", title="distributed graph traversal",
            produces="benchmarks/test_fig20_graph.py",
            label="Figure 20")
def run_fig20() -> RunResult:
    measured = {config: measure(config) for config in CONFIGS}
    rates = {config: rate for config, (rate, _) in measured.items()}

    result = RunResult("fig20")
    result.metrics["rates"] = rates
    result.metrics["traced"] = {
        config: {"count": overall.count,
                 "mean_ns": overall.mean,
                 "p99_ns": overall.percentile(99)}
        for config, (_, overall) in measured.items()}
    rows = []
    for config in CONFIGS:
        rate, overall = measured[config]
        traced = overall.count > 0
        rows.append([
            LABELS[config], round(rate),
            f"{units.to_us(overall.mean):.0f}" if traced else "-",
            f"{units.to_us(overall.percentile(99)):.0f}" if traced
            else "-",
        ])
    result.add_table(
        "fig20_graph",
        "Figure 20: graph traversal performance "
        "(paper shape: ISP-F ~3x H-RH-F, ISP-F > 50%F, "
        "H-DRAM best software config; mean/p99 = traced flash/network "
        "accesses, '-' = configuration traces none)",
        ["Access Type", "Lookups/s", "mean (us)", "p99 (us)"],
        rows)
    return result
