"""Experiment implementations behind the registry.

Each module measures one (or a family of) the paper's tables/figures —
or one of this repo's extensions — and registers itself with
:func:`repro.api.experiment`.  Importing this package (which
:func:`repro.api.discover` does lazily) is what populates the registry
that ``repro list`` / ``repro run`` and the benchmark suite share.

The *measurements* live here; the ``benchmarks/test_*`` files shrink to
spec + shape assertions over the returned
:class:`~repro.api.RunResult`.
"""

# Import order is registration order — the order ``repro list`` prints,
# kept aligned with the paper's own table/figure numbering.
from . import tables  # noqa: F401,E402
from . import fig11  # noqa: F401,E402
from . import fig12  # noqa: F401,E402
from . import fig13  # noqa: F401,E402
from . import nn  # noqa: F401,E402
from . import fig20  # noqa: F401,E402
from . import fig21  # noqa: F401,E402
from . import ablations  # noqa: F401,E402
from . import ext  # noqa: F401,E402
from . import qos  # noqa: F401,E402
from . import pipeline  # noqa: F401,E402
from . import volume  # noqa: F401,E402
from . import open_loop  # noqa: F401,E402
from . import dvol  # noqa: F401,E402
from . import faults  # noqa: F401,E402
