"""Extensions: bandwidth scaling vs node count, and SQL filter offload.

Neither is a paper figure; both answer the questions the paper's
Section 8 plans raise, using the declarative scenario API.
"""

from __future__ import annotations

from ..analysis import sweep
from ..api import (
    BENCH_GEOMETRY,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
    experiment,
)
from ..apps.sql import FlashTable, TableScan, make_orders_table
from ..isp.filter import col
from ..network import NetworkConfig

# ----------------------------------------------------------------------
# Extension: aggregate ISP bandwidth vs remote node count
# ----------------------------------------------------------------------
EXT_WINDOW_NS = 2_000_000
EXT_NET = NetworkConfig(max_packet_payload=1024)
EXT_LANES = 2


def scaling_spec(n_remotes: int) -> ScenarioSpec:
    """One reader node + ``n_remotes`` remotes over two lanes each."""
    tenants = [TenantSpec("local", access="isp", workers=128)]
    for remote in range(1, n_remotes + 1):
        tenants.append(TenantSpec(
            f"remote-{remote}", access="remote_isp",
            workers=48 * EXT_LANES, target=remote,
            seed_base=1000 * remote))
    links = tuple((0, remote)
                  for remote in range(1, n_remotes + 1)
                  for _ in range(EXT_LANES))
    topology = (TopologySpec(kind="custom", links=links) if links
                else TopologySpec())
    return ScenarioSpec(
        name=f"ext-scaling-{n_remotes}", n_nodes=1 + n_remotes,
        geometry=BENCH_GEOMETRY, network=EXT_NET, topology=topology,
        n_endpoints=1 + 2 * EXT_LANES,
        workload=WorkloadSpec(duration_ns=EXT_WINDOW_NS,
                              tenants=tuple(tenants)))


def aggregate_gbs(n_remotes: int) -> float:
    run = Session(scaling_spec(n_remotes)).run()
    return run.metrics["total_bandwidth_gbs"]


@experiment("ext_scaling", title="aggregate bandwidth vs node count",
            produces="benchmarks/test_ext_scaling.py",
            label="Extension")
def run_ext_scaling() -> RunResult:
    swept = sweep("remote nodes", [0, 1, 2, 3], aggregate_gbs)

    result = RunResult("ext_scaling")
    result.series = {"remote_nodes": swept.values,
                     "aggregate_gbs": swept.results}
    result.metrics["aggregate_gbs"] = swept.as_dict()
    result.metrics["monotone"] = swept.is_monotone_increasing()
    result.add_table(
        "ext_scaling",
        "Extension: ISP bandwidth vs remote node count "
        "(Figure 13 extended)",
        ["Remote nodes", "Aggregate (GB/s)", "Configuration"],
        [[n, f"{gbs:.2f}",
          "local flash only" if n == 0
          else f"+{EXT_LANES} serial lanes x {n} remotes"]
         for n, gbs in zip(swept.values, swept.results)])
    return result


# ----------------------------------------------------------------------
# Extension: SQL filter offload vs selectivity
# ----------------------------------------------------------------------
N_SQL_ROWS = 4000
# amount > threshold: thresholds chosen for ~1% / ~10% / ~50%
# selectivity.
SQL_THRESHOLDS = [(9900, "1%"), (9000, "10%"), (5000, "50%")]


def sql_pair(threshold: int):
    predicate = col("amount") > threshold
    results = {}
    for path in ("offloaded", "host_scan"):
        session = Session(ScenarioSpec(name=f"ext-sql-{path}",
                                       geometry=BENCH_GEOMETRY,
                                       isp_queue_depth=4))
        sim = session.sim
        schema, rows = make_orders_table(N_SQL_ROWS, seed=2)
        table = FlashTable(session.node, "orders", schema)
        sim.run_process(table.load(rows))
        scan = TableScan(table, n_engines=8)

        def proc(sim, scan=scan, path=path):
            return (yield from getattr(scan, path)(predicate))

        result, stats = sim.run_process(proc(sim))
        results[path] = (result, stats)
    # Both paths must agree exactly.
    assert results["offloaded"][0] == results["host_scan"][0]
    return results


@experiment("ext_sql_offload", title="SQL offload vs selectivity",
            produces="benchmarks/test_ext_sql_offload.py",
            label="Extension")
def run_ext_sql_offload() -> RunResult:
    measured = {label: sql_pair(threshold)
                for threshold, label in SQL_THRESHOLDS}

    result = RunResult("ext_sql_offload")
    result.metrics["stats"] = {
        label: {path: dict(stats) for path, (_, stats) in pair.items()}
        for label, pair in measured.items()}
    rows = []
    for _, label in SQL_THRESHOLDS:
        offl_stats = measured[label]["offloaded"][1]
        host_stats = measured[label]["host_scan"][1]
        saved = (host_stats["result_wire_bytes"]
                 / max(1, offl_stats["result_wire_bytes"]))
        rows.append([
            label,
            offl_stats["rows_returned"],
            offl_stats["result_wire_bytes"],
            host_stats["result_wire_bytes"],
            f"{saved:.0f}x",
        ])
    result.add_table(
        "ext_sql_offload",
        "Extension: in-store SQL filtering vs selectivity "
        "(result bytes over PCIe)",
        ["Selectivity", "Rows", "Offload wire B", "Host wire B",
         "Movement saved"],
        rows)
    return result
