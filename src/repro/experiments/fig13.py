"""Figure 13: storage access bandwidth under four scenarios.

Each scenario is now pure data — a :class:`~repro.api.ScenarioSpec`
with a closed-loop :class:`~repro.api.WorkloadSpec` — executed by the
shared :class:`~repro.api.Session` driver.  Worker counts, RNG seeding
(``Random(worker_id)``) and spawn order are spec'd exactly as the
original hand-rolled benchmark drivers had them, so measured bandwidths
are bit-identical to the pre-API values.

Paper values (random 8 KB reads): Host-Local 1.6 GB/s (PCIe-capped),
ISP-Local 2.4 GB/s, ISP-2Nodes ~3.4 GB/s, ISP-3Nodes ~6.5 GB/s.
"""

from __future__ import annotations

from typing import Dict

from ..api import (
    BENCH_GEOMETRY,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
    experiment,
)
from ..network import NetworkConfig
from ..parallel import parallel_map

WINDOW_NS = 2_500_000  # 2.5 ms of simulated time
NET_CONFIG = NetworkConfig(max_packet_payload=1024)

PAPER_GBS = {"Host-Local": 1.6, "ISP-Local": 2.4, "ISP-2Nodes": 3.4,
             "ISP-3Nodes": 6.5}


def host_local_spec() -> ScenarioSpec:
    """Host software reads its own node's flash over PCIe (no syscall
    path: kernel-bypass reads, PCIe is the limiter)."""
    return ScenarioSpec(
        name="fig13-host-local", n_nodes=2, geometry=BENCH_GEOMETRY,
        network=NET_CONFIG,
        workload=WorkloadSpec(duration_ns=WINDOW_NS, tenants=(
            TenantSpec("host-local", access="host", workers=64,
                       software_path=False),)))


def isp_local_spec() -> ScenarioSpec:
    """Local in-store processors read the node's flash directly."""
    return ScenarioSpec(
        name="fig13-isp-local", n_nodes=2, geometry=BENCH_GEOMETRY,
        network=NET_CONFIG,
        workload=WorkloadSpec(duration_ns=WINDOW_NS, tenants=(
            TenantSpec("isp-local", access="isp", workers=128),)))


def isp_multi_spec(n_remotes: int, lanes_per_remote: int) -> ScenarioSpec:
    """Local ISP reads + remote ISP-F reads from ``n_remotes`` nodes,
    each wired with ``lanes_per_remote`` parallel serial lanes.

    1 request endpoint + 4 response endpoints: responses spread evenly
    over the parallel lanes (deterministic per-endpoint routing).
    """
    links = tuple((0, remote)
                  for remote in range(1, n_remotes + 1)
                  for _ in range(lanes_per_remote))
    tenants = [TenantSpec("local", access="isp", workers=128)]
    for remote in range(1, n_remotes + 1):
        tenants.append(TenantSpec(
            f"remote-{remote}", access="remote_isp",
            workers=48 * lanes_per_remote, target=remote))
    return ScenarioSpec(
        name=f"fig13-isp-{1 + n_remotes}nodes", n_nodes=1 + n_remotes,
        geometry=BENCH_GEOMETRY, network=NET_CONFIG,
        topology=TopologySpec(kind="custom", links=links),
        n_endpoints=5,
        workload=WorkloadSpec(duration_ns=WINDOW_NS,
                              tenants=tuple(tenants)))


def scenario_specs() -> Dict[str, ScenarioSpec]:
    return {
        "Host-Local": host_local_spec(),
        "ISP-Local": isp_local_spec(),
        "ISP-2Nodes": isp_multi_spec(1, 1),
        "ISP-3Nodes": isp_multi_spec(2, 2),
    }


def fig13_point(name: str) -> dict:
    """One point: a scenario name -> bandwidth + simulated time."""
    run = Session(scenario_specs()[name]).run()
    return {"bandwidth_gbs": run.metrics["total_bandwidth_gbs"],
            "elapsed_ns": run.elapsed_ns}


@experiment("fig13", title="storage bandwidth (4 scenarios)",
            produces="benchmarks/test_fig13_bandwidth.py",
            label="Figure 13")
def run_fig13(jobs: int = 1) -> RunResult:
    result = RunResult("fig13")
    measured: Dict[str, float] = {}
    specs = scenario_specs()
    runs = parallel_map(fig13_point, list(specs), jobs=jobs)
    for (name, spec), run in zip(specs.items(), runs):
        measured[name] = run["bandwidth_gbs"]
        result.meta.setdefault("specs", {})[name] = spec.to_dict()
    result.elapsed_ns = sum(run["elapsed_ns"] for run in runs)
    result.add_table(
        "fig13_bandwidth",
        "Figure 13: bandwidth of data access in BlueDBM",
        ["Access Type", "Measured (GB/s)", "Paper (GB/s)"],
        [[name, f"{measured[name]:.2f}", PAPER_GBS[name]]
         for name in PAPER_GBS])
    result.metrics["bandwidth_gbs"] = measured
    return result
