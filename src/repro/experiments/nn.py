"""Figures 16-19: the nearest-neighbour study, plus its shared builders.

All runners return throughput in *comparisons per second* of 8 KB
items, the figures' y axis.  Calibration anchors (Section 7.1):

* BlueDBM baseline: 2.4 GB/s of flash / 8 KB ~= 293K cmp/s (paper 320K);
* Throttled BlueDBM: 600 MB/s ~= 73K cmp/s;
* host software: 12.5 us/comparison/core, so ~4 threads match one node.
"""

from __future__ import annotations

import random

from ..api import (
    BENCH_GEOMETRY,
    THROTTLED_TIMING,
    RunResult,
    ScenarioSpec,
    Session,
    drive_pipelined,
    experiment,
)
from ..apps import (
    LSHIndex,
    NearestNeighborISP,
    SoftwareNN,
    TieredPageStore,
    make_item_corpus,
)
from ..devices import CommoditySSD, DRAMStore, HardDisk
from ..host import HostConfig, HostCPU
from ..sim import Simulator, units

# A multiple of the node's 128 chips so the striped layout loads every
# bus evenly (an uneven stripe bottlenecks the doubly-loaded buses).
N_ITEMS = 256
ITEM_BYTES = BENCH_GEOMETRY.page_size
N_COMPARISONS = 512


def corpus():
    return make_item_corpus(N_ITEMS, ITEM_BYTES, seed=42, n_clusters=4)


def _node_session(throttled: bool) -> Session:
    return Session(ScenarioSpec(
        name="nn-node", geometry=BENCH_GEOMETRY,
        timing=THROTTLED_TIMING if throttled else None))


def isp_rate(throttled: bool = False,
             n_comparisons: int = 4 * N_COMPARISONS) -> float:
    """In-store accelerated comparisons/s on one node."""
    session = _node_session(throttled)
    sim, node = session.sim, session.node
    app = NearestNeighborISP(node, n_engines=8)
    items = corpus()
    app.load(items, LSHIndex(ITEM_BYTES, seed=1))

    def proc(sim):
        rate = yield from app.throughput_run(items[0], n_comparisons)
        return rate

    return sim.run_process(proc(sim))


def software_rate(threads: int, backend: str,
                  n_comparisons: int = N_COMPARISONS,
                  dram_gbs: float = 40.0,
                  miss_fraction: float = 0.0,
                  sequential: bool = False) -> float:
    """Host-software comparisons/s against a chosen storage backend.

    backend: 'dram' | 'dram+ssd' | 'dram+hdd' | 'ssd' | 'bluedbm-t'
    """
    sim = Simulator()
    cpu = HostCPU(sim, HostConfig())
    items = corpus()

    if backend == "bluedbm-t":
        node = _node_session(throttled=True).node
        # Re-bind to the node's simulator so one clock rules the run.
        sim = node.sim
        addr_of = {}
        for slot, (item_id, data) in enumerate(sorted(items.items())):
            addr = BENCH_GEOMETRY.striped(slot)
            node.device.store.program(addr, data)
            addr_of[item_id] = addr

        def read_fn(page):
            data = yield sim.process(node.host_read(addr_of[page]))
            return data

        cpu = node.cpu
    elif backend == "ssd":
        ssd = CommoditySSD(sim, page_size=ITEM_BYTES)
        if sequential:
            # Items laid out contiguously for the arranged-sequential
            # experiment (H-SFlash).
            for i, data in items.items():
                ssd.store(i, data)
        else:
            # Scatter items across the device so random bucket accesses
            # are genuinely random (a real corpus is millions of items).
            for i, data in items.items():
                ssd.store(i * 1009 + 17, data)
        read_fn = ssd.read
    else:
        dram = DRAMStore(sim, page_size=ITEM_BYTES, bandwidth_gbs=dram_gbs)
        for i, data in items.items():
            dram.store(i, data)
        if backend == "dram":
            read_fn = dram.read
        else:
            secondary = (CommoditySSD(sim, page_size=ITEM_BYTES)
                         if backend == "dram+ssd"
                         else HardDisk(sim, page_size=ITEM_BYTES))
            for i, data in items.items():
                secondary.store(i, data)
            tiered = TieredPageStore(sim, dram, secondary, miss_fraction,
                                     seed=7)
            read_fn = tiered.read

    app = SoftwareNN(sim, cpu, read_fn)
    if sequential:
        # Arrange pages so each thread's successive reads are
        # consecutive device pages (Figure 18's H-SFlash trick).
        per = N_ITEMS // threads or 1
        pages = [0] * N_ITEMS
        for j in range(N_ITEMS):
            t, i = j % threads, j // threads
            pages[j] = (t * per + i) % N_ITEMS
    else:
        rng = random.Random(3)
        pages = [rng.randrange(N_ITEMS) for _ in range(N_ITEMS)]
        if backend == "ssd":
            # Match the scattered on-device layout.
            pages = [p * 1009 + 17 for p in pages]

    def proc(sim):
        rate = yield from app.run(items[0], pages, threads=threads,
                                  n_comparisons=n_comparisons)
        return rate

    return sim.run_process(proc(sim))


def pipelined_host_rate(n_comparisons: int = N_COMPARISONS,
                        outstanding: int = 128) -> float:
    """Async host software on unthrottled BlueDBM: PCIe-bound.

    Deeply pipelined reads (kernel-bypass style) so the 1.6 GB/s PCIe
    link, not thread count, is the limiter — the paper's explanation of
    why software tops out below the ISP even with ideal software.
    """
    session = _node_session(throttled=False)
    sim, node = session.sim, session.node
    items = corpus()
    addrs = []
    for slot, (item_id, data) in enumerate(sorted(items.items())):
        addr = BENCH_GEOMETRY.striped(slot)
        node.device.store.program(addr, data)
        addrs.append(addr)

    done = []

    def one(i):
        yield sim.process(node.host_read(addrs[i % len(addrs)],
                                         software_path=False))
        yield sim.process(node.cpu.compute(SoftwareNN.COMPARE_NS_PER_8K))
        done.append(sim.now)

    drive_pipelined(sim, one, n_comparisons, outstanding)
    return n_comparisons / units.to_s(max(done))


# ----------------------------------------------------------------------
# Figure 16: BlueDBM vs DRAM-resident software, thread scaling
# ----------------------------------------------------------------------
FIG16_THREADS = [2, 4, 6, 8, 10, 12, 14, 16]
# Effective random-8KB host memory bandwidth for the DRAM-resident
# baseline (hash + fetch path), which caps the curve at high threads.
FIG16_DRAM_GBS = 5.0


@experiment("fig16", title="nearest neighbour vs host DRAM",
            produces="benchmarks/test_fig16_nn_scaling.py",
            label="Figure 16")
def run_fig16() -> RunResult:
    dram = [software_rate(t, "dram", dram_gbs=FIG16_DRAM_GBS)
            for t in FIG16_THREADS]
    baseline = isp_rate(throttled=False)
    throttled = isp_rate(throttled=True)

    result = RunResult("fig16")
    result.series = {"threads": FIG16_THREADS, "dram": dram,
                     "baseline": baseline, "throttled": throttled}
    result.metrics = {"dram": dram, "baseline": baseline,
                      "throttled": throttled}
    result.add_table(
        "fig16_nn_scaling",
        "Figure 16: nearest neighbour with BlueDBM vs host DRAM",
        ["threads", "H-DRAM (cmp/s)", "1 Node (cmp/s, paper 320K)",
         "Throttled (cmp/s)"],
        [[t, round(d), round(baseline), round(throttled)]
         for t, d in zip(FIG16_THREADS, dram)])
    return result


# ----------------------------------------------------------------------
# Figure 17: the RAMCloud cliff
# ----------------------------------------------------------------------
FIG17_THREADS = [1, 2, 3, 4, 5, 6, 7, 8]


@experiment("fig17", title="the RAMCloud cliff",
            produces="benchmarks/test_fig17_nn_dram_cliff.py",
            label="Figure 17")
def run_fig17() -> RunResult:
    dram = [software_rate(t, "dram") for t in FIG17_THREADS]
    flash10 = [software_rate(t, "dram+ssd", miss_fraction=0.10)
               for t in FIG17_THREADS]
    disk5 = [software_rate(t, "dram+hdd", miss_fraction=0.05)
             for t in FIG17_THREADS]
    isp = isp_rate(throttled=True)

    result = RunResult("fig17")
    result.series = {"threads": FIG17_THREADS, "dram": dram,
                     "flash10": flash10, "disk5": disk5, "isp": isp}
    result.metrics = {"dram": dram, "flash10": flash10, "disk5": disk5,
                      "isp": isp}
    result.add_table(
        "fig17_nn_dram_cliff",
        "Figure 17: nearest neighbour with mostly-DRAM storage "
        "(paper at 8 threads: DRAM 350K, 10% flash <80K, 5% disk <10K)",
        ["threads", "DRAM", "ISP (throttled)", "10% Flash", "5% Disk"],
        [[t, round(d), round(isp), round(f), round(k)]
         for t, d, f, k in zip(FIG17_THREADS, dram, flash10, disk5)])
    return result


# ----------------------------------------------------------------------
# Figure 18: the off-the-shelf SSD, random vs arranged-sequential
# ----------------------------------------------------------------------
@experiment("fig18", title="commodity SSD random vs sequential",
            produces="benchmarks/test_fig18_nn_ssd.py",
            label="Figure 18")
def run_fig18() -> RunResult:
    rand = [software_rate(t, "ssd") for t in FIG17_THREADS]
    seq = [software_rate(t, "ssd", sequential=True)
           for t in FIG17_THREADS]
    isp = isp_rate(throttled=True)

    result = RunResult("fig18")
    result.series = {"threads": FIG17_THREADS, "random": rand,
                     "sequential": seq, "isp": isp}
    result.metrics = {"random": rand, "sequential": seq, "isp": isp}
    result.add_table(
        "fig18_nn_ssd",
        "Figure 18: nearest neighbour on off-the-shelf SSD "
        "(paper: random poor, sequential ~matches throttled ISP)",
        ["threads", "ISP (throttled)", "Seq Flash",
         "Full Flash (random)"],
        [[t, round(isp), round(s), round(r)]
         for t, s, r in zip(FIG17_THREADS, seq, rand)])
    return result


# ----------------------------------------------------------------------
# Figure 19: in-store processing vs host software on the same hardware
# ----------------------------------------------------------------------
@experiment("fig19", title="in-store processing advantage",
            produces="benchmarks/test_fig19_nn_isp.py",
            label="Figure 19")
def run_fig19() -> RunResult:
    software = [software_rate(t, "bluedbm-t") for t in FIG17_THREADS]
    isp_throttled = isp_rate(throttled=True)
    isp_full = isp_rate(throttled=False)
    software_pipelined = pipelined_host_rate(n_comparisons=2048)

    result = RunResult("fig19")
    result.series = {"threads": FIG17_THREADS, "software": software,
                     "isp_throttled": isp_throttled,
                     "isp_full": isp_full,
                     "software_pipelined": software_pipelined}
    result.metrics = dict(result.series)
    result.add_table(
        "fig19_nn_isp",
        "Figure 19: nearest neighbour with in-store processing "
        "(paper: ISP >= 20% over host software)",
        ["threads", "ISP (throttled)", "BlueDBM+SW (throttled)"],
        [[t, round(isp_throttled), round(s)]
         for t, s in zip(FIG17_THREADS, software)])
    result.add_table(
        "fig19_unthrottled",
        "Figure 19 discussion: unthrottled — software hits the "
        "1.6 GB/s PCIe wall (paper: ISP advantage 30%+)",
        ["Configuration", "cmp/s"],
        [["ISP, full bandwidth", round(isp_full)],
         ["Host software, pipelined (PCIe-bound)",
          round(software_pipelined)]])
    return result
