"""QoS extension: multi-tenant contention on one splitter, four
policies, reported per tenant with mean and p99 from the tracer."""

from __future__ import annotations

from ..analysis.qos import QOS_POLICIES, QOS_TENANTS, run_policy
from ..api import BENCH_GEOMETRY, RunResult, experiment
from ..sim import units

DURATION_NS = 20_000_000  # 20 ms of closed-loop hammering


@experiment("qos", title="multi-tenant scheduler policies",
            produces="benchmarks/test_qos_multitenant.py",
            label="QoS")
def run_qos() -> RunResult:
    measured = {}
    for policy in QOS_POLICIES:
        tracer = run_policy(policy, BENCH_GEOMETRY, DURATION_NS)
        measured[policy] = tracer.tenant_summary(tracer.sim.now)

    result = RunResult("qos")
    result.metrics["policies"] = measured
    rows = []
    for policy in QOS_POLICIES:
        for tenant in QOS_TENANTS:
            stats = measured[policy][tenant]
            rows.append([
                policy, tenant,
                f"{stats['completed']:.0f}",
                f"{stats['iops'] / 1000:.1f}",
                f"{units.to_us(stats['mean_ns']):.0f}",
                f"{units.to_us(stats['p50_ns']):.0f}",
                f"{units.to_us(stats['p99_ns']):.0f}",
                f"{stats['deadline_misses']:.0f}",
            ])
    result.add_table(
        "qos_multitenant",
        "QoS: per-tenant latency under a 12x aggressor "
        "(admission=8 slots, shapes: rr/priority/edf bound victim "
        "p99 vs FIFO)",
        ["Policy", "Tenant", "Done", "kIOPS", "mean(us)", "p50(us)",
         "p99(us)", "Missed"],
        rows)
    return result
