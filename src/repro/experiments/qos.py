"""QoS extension experiments: scheduler policies under contention.

Three registered scenario families grow the Section 4 "simple
FIFO-based policy" into a QoS story:

* ``qos`` — the original single-node contention scenario: three local
  tenants hammer one splitter under all six disciplines (FIFO,
  round-robin, weighted fair share, token-bucket, strict priority,
  EDF), reported per tenant with mean and p99 from the tracer.
* ``qos_cluster`` — cluster-wide isolation: remote tenants on three
  nodes issue ISP-F reads against *one* node's splitter over the
  integrated storage network.  FIFO equalizes grant counts; weighted
  fair share converges tenant bandwidth to the configured 1:2:3
  weights (within 5%); token buckets cap each tenant at its configured
  rate, never exceeding it by more than one burst.
* ``qos_gc`` — GC/wear-leveling modeled as a low-priority *background*
  tenant injected at the splitter (read victim page, relocate into a
  scratch block, erase scratch blocks as they cycle), measuring how
  far each policy protects the foreground tenant's p99.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..analysis.qos import QOS_POLICIES, QOS_TENANTS, run_policy
from ..api import (
    BENCH_GEOMETRY,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
    experiment,
)
from ..flash import FlashTiming
from ..network import NetworkConfig
from ..parallel import parallel_map
from ..sim import units

DURATION_NS = 20_000_000  # 20 ms of closed-loop hammering


def qos_point(args: Tuple[str, int]) -> dict:
    """One point: ``(policy, duration_ns)`` -> per-tenant summary."""
    policy, duration_ns = args
    tracer = run_policy(policy, BENCH_GEOMETRY, duration_ns)
    return {"tenants": tracer.tenant_summary(tracer.sim.now),
            "elapsed_ns": tracer.sim.now}


@experiment("qos", title="multi-tenant scheduler policies",
            produces="benchmarks/test_qos_multitenant.py",
            label="QoS")
def run_qos(jobs: int = 1,
            duration_ns: int = DURATION_NS) -> RunResult:
    points = [(policy, duration_ns) for policy in QOS_POLICIES]
    runs = parallel_map(qos_point, points, jobs=jobs)
    measured = {policy: run["tenants"]
                for (policy, _), run in zip(points, runs)}

    result = RunResult("qos")
    result.metrics["policies"] = measured
    result.elapsed_ns = sum(run["elapsed_ns"] for run in runs)
    rows = []
    for policy in QOS_POLICIES:
        for tenant in QOS_TENANTS:
            stats = measured[policy][tenant]
            rows.append([
                policy, tenant,
                f"{stats['completed']:.0f}",
                f"{stats['iops'] / 1000:.1f}",
                f"{units.to_us(stats['mean_ns']):.0f}",
                f"{units.to_us(stats['p50_ns']):.0f}",
                f"{units.to_us(stats['p99_ns']):.0f}",
                f"{stats['deadline_misses']:.0f}",
            ])
    result.add_table(
        "qos_multitenant",
        "QoS: per-tenant latency under a 12x aggressor "
        "(admission=8 slots; six policies: rr/wfq/priority/edf bound "
        "victim p99 vs FIFO, token-bucket caps the aggressor's rate)",
        ["Policy", "Tenant", "Done", "kIOPS", "mean(us)", "p50(us)",
         "p99(us)", "Missed"],
        rows)
    return result


# ----------------------------------------------------------------------
# qos_cluster — remote tenants contend for one node's splitter
# ----------------------------------------------------------------------
#: The three policies whose cluster-wide contrast the table shows:
#: FIFO equalizes, wfq follows weights, token-bucket follows rates.
CLUSTER_POLICIES = ["fifo", "wfq", "token-bucket"]
#: source node -> wfq weight (bandwidth shares should converge to
#: 1/6 : 2/6 : 3/6) and token-bucket rate cap in MB/s.
CLUSTER_WEIGHTS = {1: 1.0, 2: 2.0, 3: 3.0}
CLUSTER_RATES_MBPS = {1: 80.0, 2: 160.0, 3: 240.0}
CLUSTER_BURST_KB = 128.0
CLUSTER_DURATION_NS = 16_000_000
CLUSTER_ADMISSION_SLOTS = 8
_CLUSTER_NET = NetworkConfig(max_packet_payload=1024)


def qos_cluster_scenario(policy: str,
                         duration_ns: int = CLUSTER_DURATION_NS,
                         seed: int = 1234) -> ScenarioSpec:
    """Remote tenants on nodes 1-3 contend for node 0's splitter.

    Each remote node is wired to the target with two parallel serial
    lanes (the Figure 13 ISP-3Nodes wiring, extended to three remotes)
    and runs 24 closed-loop ISP-F readers, so node 0's admission stage
    — not the network — is the bottleneck the policy arbitrates.
    """
    links = tuple((0, remote) for remote in CLUSTER_WEIGHTS
                  for _ in range(2))
    tenants = tuple(
        TenantSpec(f"remote-{remote}", access="remote_isp", node=remote,
                   target=0, workers=24, rng="shared", addr_space=4096,
                   weight=CLUSTER_WEIGHTS[remote],
                   rate_mbps=CLUSTER_RATES_MBPS[remote],
                   burst_kb=CLUSTER_BURST_KB)
        for remote in CLUSTER_WEIGHTS)
    return ScenarioSpec(
        name=f"qos-cluster-{policy}", n_nodes=1 + len(CLUSTER_WEIGHTS),
        geometry=BENCH_GEOMETRY, network=_CLUSTER_NET,
        topology=TopologySpec(kind="custom", links=links), n_endpoints=5,
        splitter_policy=policy,
        splitter_in_flight=CLUSTER_ADMISSION_SLOTS,
        workload=WorkloadSpec(duration_ns=duration_ns, tenants=tenants,
                              seed=seed, drain=True))


def qos_cluster_point(args: Tuple[str, int]) -> RunResult:
    """One point: ``(policy, duration_ns)`` -> session run."""
    policy, duration_ns = args
    return Session(qos_cluster_scenario(policy, duration_ns)).run()


@experiment("qos_cluster",
            title="cluster-wide QoS: remote tenants on one splitter",
            produces="benchmarks/test_qos_cluster_wide.py",
            label="QoS-cluster")
def run_qos_cluster(jobs: int = 1,
                    duration_ns: int = CLUSTER_DURATION_NS) -> RunResult:
    result = RunResult("qos_cluster")
    measured: Dict[str, dict] = {}
    rows = []
    weight_total = sum(CLUSTER_WEIGHTS.values())
    points = [(policy, duration_ns) for policy in CLUSTER_POLICIES]
    runs = parallel_map(qos_cluster_point, points, jobs=jobs)
    for (policy, _), run in zip(points, runs):
        tenants = run.tenant_stats
        total_bytes = sum(s["bytes"] for s in tenants.values())
        policy_stats: Dict[str, dict] = {}
        for remote, weight in CLUSTER_WEIGHTS.items():
            name = f"remote-{remote}"
            stats = tenants[name]
            share = stats["bytes"] / total_bytes if total_bytes else 0.0
            mbps = stats["bytes"] / run.elapsed_ns * 1000
            cap = CLUSTER_RATES_MBPS[remote]
            policy_stats[name] = dict(
                stats, share=share,
                target_share=weight / weight_total,
                mbps=mbps, cap_mbps=cap,
                cap_bytes=(cap * 1e6 * run.elapsed_ns / 1e9
                           + CLUSTER_BURST_KB * 1024))
            rows.append([
                policy, name,
                f"{stats['completed']:.0f}",
                f"{mbps:.0f}",
                f"{share:.3f}",
                f"{weight / weight_total:.3f}",
                f"{cap:.0f}" if policy == "token-bucket" else "-",
                f"{units.to_us(stats['p99_ns']):.0f}",
            ])
        measured[policy] = {
            "tenants": policy_stats,
            "elapsed_ns": run.elapsed_ns,
            "splitter_bandwidth": run.metrics["splitter_bandwidth"],
        }
    result.metrics["policies"] = measured
    result.metrics["weights"] = {f"remote-{r}": w
                                 for r, w in CLUSTER_WEIGHTS.items()}
    result.metrics["rates_mbps"] = {f"remote-{r}": m
                                    for r, m in CLUSTER_RATES_MBPS.items()}
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "qos_cluster",
        "Cluster QoS: 3 remote tenants (2 lanes each) on node 0's "
        "splitter over the integrated network (admission=8; wfq shares "
        "follow 1:2:3 weights, token-bucket honors per-tenant caps)",
        ["Policy", "Tenant", "Done", "MB/s", "Share", "Target",
         "Cap(MB/s)", "p99(us)"],
        rows)
    return result


# ----------------------------------------------------------------------
# qos_gc — GC/wear-leveling as a low-priority background tenant
# ----------------------------------------------------------------------
GC_POLICIES = QOS_POLICIES
GC_DURATION_NS = 20_000_000
GC_RATE_MBPS = 50.0
GC_BURST_KB = 64.0
#: The bench geometry's blocks are 32 pages (the paper's are 256), so
#: GC erases fire 8x more often than at full scale; erase time scales
#: with the block (3 ms x 32/256) to keep erase *load* calibrated.
GC_TIMING = FlashTiming(t_erase_ns=375_000)


def qos_gc_scenario(policy: str, with_gc: bool = True,
                    duration_ns: int = GC_DURATION_NS,
                    seed: int = 99) -> ScenarioSpec:
    """A foreground ISP tenant vs GC background traffic at the splitter.

    The victim reads a small hot set confined to the low chips; each of
    the 24 GC workers owns a scratch chip at the top of the geometry
    and loops read-victim/relocate/erase through a dedicated
    low-priority splitter port, so the only shared bottleneck is the
    8-slot admission stage the policy arbitrates.
    """
    tenants = [TenantSpec("isp", access="isp", workers=4, rng="shared",
                          addr_space=64, max_in_flight=8, priority=2,
                          deadline_ns=500 * units.US, weight=4.0)]
    if with_gc:
        tenants.append(TenantSpec(
            "gc", background=True, workers=24, rng="shared",
            addr_space=4096, max_in_flight=32, priority=0,
            deadline_ns=50_000 * units.US, weight=0.25,
            rate_mbps=GC_RATE_MBPS, burst_kb=GC_BURST_KB))
    return ScenarioSpec(
        name=f"qos-gc-{policy}" if with_gc else "qos-gc-baseline",
        geometry=BENCH_GEOMETRY, timing=GC_TIMING,
        splitter_policy=policy, splitter_in_flight=8,
        workload=WorkloadSpec(duration_ns=duration_ns,
                              tenants=tuple(tenants), seed=seed,
                              drain=True))


def qos_gc_point(args: Tuple[str, int]) -> RunResult:
    """One point: ``(policy, duration_ns)`` -> session run.

    ``policy="baseline"`` is the GC-free reference the p99 ratios
    compare against.
    """
    policy, duration_ns = args
    if policy == "baseline":
        spec = qos_gc_scenario("fifo", with_gc=False,
                               duration_ns=duration_ns)
    else:
        spec = qos_gc_scenario(policy, duration_ns=duration_ns)
    return Session(spec).run()


@experiment("qos_gc",
            title="GC background tenant vs victim p99 (6 policies)",
            produces="benchmarks/test_qos_gc.py",
            label="QoS-GC")
def run_qos_gc(jobs: int = 1,
               duration_ns: int = GC_DURATION_NS) -> RunResult:
    result = RunResult("qos_gc")
    points = [("baseline", duration_ns)]
    points += [(policy, duration_ns) for policy in GC_POLICIES]
    runs = parallel_map(qos_gc_point, points, jobs=jobs)
    baseline = runs[0]
    baseline_p99 = baseline.tenant_stats["isp"]["p99_ns"]
    result.metrics["baseline"] = {
        "victim": baseline.tenant_stats["isp"],
    }
    measured: Dict[str, dict] = {}
    rows = [["(no gc)", f"{baseline.tenant_stats['isp']['completed']:.0f}",
             f"{units.to_us(baseline_p99):.0f}", "1.0", "-", "-", "-"]]
    for (policy, _), run in zip(points[1:], runs[1:]):
        victim = run.tenant_stats["isp"]
        gc = run.tenant_stats["gc"]
        gc_bw = run.metrics["splitter_bandwidth"][0]["gc"]
        measured[policy] = {
            "victim": victim, "gc": gc,
            "gc_bandwidth": gc_bw,
            "elapsed_ns": run.elapsed_ns,
        }
        rows.append([
            policy,
            f"{victim['completed']:.0f}",
            f"{units.to_us(victim['p99_ns']):.0f}",
            f"{victim['p99_ns'] / baseline_p99:.1f}",
            f"{victim['deadline_misses']:.0f}",
            f"{gc['completed']:.0f}",
            f"{gc_bw['gbytes_per_sec'] * 1000:.0f}",
        ])
    result.metrics["policies"] = measured
    result.metrics["gc_rate_mbps"] = GC_RATE_MBPS
    result.metrics["gc_burst_kb"] = GC_BURST_KB
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "qos_gc",
        "GC as a background tenant: victim p99 under each policy "
        "(24 GC relocation workers vs 4 victim readers, admission=8; "
        "FIFO lets GC dictate victim p99, wfq/token-bucket bound it)",
        ["Policy", "VictimDone", "Victim p99(us)", "vs base",
         "Missed", "GC done", "GC MB/s"],
        rows)
    return result
