"""Open-loop offered-load sweep: the throughput/p99 knee at scale.

The closed-loop experiments throttle themselves — a worker only issues
after its previous request completes, so the device is never offered
more than it can serve.  Real deployments are the opposite shape: the
ROADMAP's "heavy traffic from millions of users" arrives on its own
clock, and when the machine falls behind, the backlog (not the
arrival rate) gives.  This experiment drives the ISP path with a
Poisson open-loop arrival process (``WorkloadSpec.arrival``) at a
sweep of offered loads bracketing the device's capacity and reports
the classic open-loop signature:

* below capacity, goodput tracks offered load and p99 stays near the
  uncontended service latency;
* past capacity, goodput clips at the ceiling while p99 explodes by
  orders of magnitude (the queueing knee).

The sweep issues >1M simulated requests in total, which is only
CI-feasible on top of this PR's kernel fast lanes and 1-in-N trace
sampling (``trace_sample``) — sampling changes no scheduling decision
(issue/completion streams are byte-identical), it only thins the
per-request accounting, with counts re-scaled to stay unbiased.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..api import (
    BENCH_GEOMETRY,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    WorkloadSpec,
    experiment,
)
from ..parallel import parallel_map
from ..sim import units

#: Offered loads (requests/second) bracketing the ISP path's measured
#: capacity (~280k IOPS on BENCH_GEOMETRY).
OPEN_LOOP_RATES = (100_000, 175_000, 225_000, 265_000,
                   300_000, 375_000, 450_000)
#: Requests each sweep point aims to issue; 7 points x 150k > 1M total.
OPEN_LOOP_TARGET_ISSUED = 150_000
#: 1-in-N trace sampling — full tracing of a million requests is the
#: exact overhead this PR's sampling mode exists to avoid.
OPEN_LOOP_TRACE_SAMPLE = 64
OPEN_LOOP_ADDR_SPACE = 65_536


def open_loop_spec(rate_rps: int,
                   target_issued: int = OPEN_LOOP_TARGET_ISSUED,
                   trace_sample: int = OPEN_LOOP_TRACE_SAMPLE
                   ) -> ScenarioSpec:
    """One Poisson open-loop ISP tenant at ``rate_rps`` offered load.

    The window is sized so every point issues ``target_issued``
    requests in expectation, keeping the above-capacity points' backlog
    (which never drains — ``drain=False`` cuts at the deadline)
    bounded.
    """
    duration_ns = max(1, round(target_issued / rate_rps * 1e9))
    return ScenarioSpec(
        name=f"open-loop-{rate_rps}", geometry=BENCH_GEOMETRY,
        trace_sample=trace_sample,
        workload=WorkloadSpec(
            duration_ns=duration_ns,
            arrival="poisson", arrival_rate_rps=float(rate_rps),
            tenants=(TenantSpec("users", access="isp", workers=1,
                                pattern="random",
                                addr_space=OPEN_LOOP_ADDR_SPACE,
                                seed_base=11),)))


def open_loop_point(args: Tuple[int, int, int]) -> RunResult:
    """One point: ``(rate_rps, target_issued, trace_sample)`` -> run.

    The sweep's dominant cost is these independent million-request
    sessions; each builds its own machine from the rate alone, so
    ``parallel_map`` fans them across cores.
    """
    rate_rps, target_issued, trace_sample = args
    return Session(open_loop_spec(rate_rps, target_issued,
                                  trace_sample)).run()


@experiment("open_loop",
            title="open-loop offered-load sweep: throughput/p99 knee",
            produces="benchmarks/test_open_loop.py", label="Open-loop")
def run_open_loop(jobs: int = 1,
                  sweep_rates: Sequence[int] = OPEN_LOOP_RATES,
                  target_issued: int = OPEN_LOOP_TARGET_ISSUED,
                  trace_sample: int = OPEN_LOOP_TRACE_SAMPLE
                  ) -> RunResult:
    result = RunResult("open_loop")
    runs = parallel_map(
        open_loop_point,
        [(rate, target_issued, trace_sample) for rate in sweep_rates],
        jobs=jobs)
    rates, issued, goodput, p50s, p99s = [], [], [], [], []
    measured: Dict[int, dict] = {}
    rows = []
    total_issued = 0
    for rate, run in zip(sweep_rates, runs):
        window = run.metrics["window_ns"]
        n_issued = run.metrics["issued"]["users"]
        n_done = run.metrics["completions"]["users"]
        stats = run.tenant_stats["users"]
        done_rps = n_done / (window / 1e9)
        total_issued += n_issued
        rates.append(rate)
        issued.append(n_issued)
        goodput.append(done_rps)
        p50s.append(stats["p50_ns"])
        p99s.append(stats["p99_ns"])
        measured[rate] = {
            "window_ns": window,
            "issued": n_issued,
            "completed": n_done,
            "goodput_rps": done_rps,
            "p50_ns": stats["p50_ns"],
            "p99_ns": stats["p99_ns"],
        }
        rows.append([f"{rate / 1000:.0f}k", n_issued, n_done,
                     f"{done_rps / 1000:.1f}k",
                     f"{units.to_us(stats['p50_ns']):.0f}",
                     f"{units.to_us(stats['p99_ns']):.0f}"])
    result.series["offered_rps"] = rates
    result.series["issued"] = issued
    result.series["goodput_rps"] = goodput
    result.series["p50_ns"] = p50s
    result.series["p99_ns"] = p99s
    result.metrics["by_rate"] = measured
    result.metrics["total_issued"] = total_issued
    result.metrics["trace_sample"] = trace_sample
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    # The knee, summarized: the largest offered load whose goodput
    # still tracks within 5%, and the p99 blow-up past it.
    tracking = [r for r, g in zip(rates, goodput) if g >= 0.95 * r]
    capacity = max(tracking) if tracking else rates[0]
    result.metrics["knee_rps"] = capacity
    result.metrics["p99_blowup"] = (p99s[-1] / p99s[0]) if p99s[0] else 0.0
    result.add_table(
        "open_loop",
        "Open-loop Poisson arrivals on the ISP path: goodput tracks "
        "offered load until capacity, then clips while p99 explodes "
        f"(knee at ~{capacity / 1000:.0f}k rps; 1-in-"
        f"{trace_sample} trace sampling, counts re-scaled)",
        ["Offered", "Issued", "Done", "Goodput", "p50(us)", "p99(us)"],
        rows)
    return result
