"""Figure 12: latency breakdown of remote 8 KB page access.

Four access paths (ISP-F, H-F, H-RH-F, H-D), each split into software /
storage / data-transfer / network components.  Each path now runs under
the unified request tracer, so next to the analytic breakdown the
result carries the traced mean and p99 end-to-end latency (the ROADMAP
"p99 columns next to the means" item) and the per-stage histograms.
"""

from __future__ import annotations

from ..api import BENCH_GEOMETRY, RunResult, ScenarioSpec, Session, \
    experiment
from ..flash import PhysAddr
from ..sim import units

PATHS = ["ISP-F", "H-F", "H-RH-F", "H-D"]
#: Repetitions per path — the breakdown comes from the first (cold,
#: uncontended, deterministic) access; the repetitions feed the traced
#: latency histograms behind the mean/p99 columns.
REPEATS = 16


def measure_path(path: str):
    """Run one access path; return (first breakdown, tracer)."""
    session = Session(ScenarioSpec(name=f"fig12-{path}", n_nodes=3,
                                   geometry=BENCH_GEOMETRY))
    sim, cluster = session.sim, session.cluster
    addr = PhysAddr(node=1, page=3)
    cluster.nodes[1].device.store.program(addr, b"remote page data")
    cluster.nodes[1].dram.store(0, b"remote dram data")

    def proc(sim):
        first = None
        for _ in range(REPEATS):
            if path == "ISP-F":
                _, bd = yield from cluster.isp_remote_flash(0, addr)
            elif path == "H-F":
                _, bd = yield from cluster.host_remote_flash(0, addr)
            elif path == "H-RH-F":
                _, bd = yield from cluster.host_remote_via_host(0, addr)
            else:
                _, bd = yield from cluster.host_remote_dram(0, 1, 0)
            if first is None:
                first = bd
        return first

    breakdown = sim.run_process(proc(sim))
    return breakdown, session.tracer


@experiment("fig12", title="remote access latency breakdown",
            produces="benchmarks/test_fig12_latency.py",
            label="Figure 12")
def run_fig12() -> RunResult:
    result = RunResult("fig12")
    rows = []
    for path in PATHS:
        breakdown, tracer = measure_path(path)
        overall = tracer.overall_latency()
        result.metrics[path] = {
            "breakdown": breakdown.as_dict(),
            "total_ns": breakdown.total,
            "mean_ns": overall.mean,
            "p99_ns": overall.percentile(99),
            "count": overall.count,
            "stages": tracer.stage_summary(),
        }
        rows.append([
            path,
            f"{units.to_us(breakdown.software):.1f}",
            f"{units.to_us(breakdown.storage):.1f}",
            f"{units.to_us(breakdown.transfer):.1f}",
            f"{units.to_us(breakdown.network):.2f}",
            f"{units.to_us(breakdown.total):.1f}",
            f"{units.to_us(overall.mean):.1f}",
            f"{units.to_us(overall.percentile(99)):.1f}",
        ])
    result.add_table(
        "fig12_latency_breakdown",
        "Figure 12: latency of remote data access "
        "(paper shape: ISP-F < H-F < H-RH-F; H-D no storage; "
        f"mean/p99 traced over {REPEATS} accesses)",
        ["Access", "Software(us)", "Storage(us)", "Transfer(us)",
         "Network(us)", "Total(us)", "Mean(us)", "p99(us)"],
        rows)
    return result
