"""Figure 12: latency breakdown of remote 8 KB page access.

Four access paths (ISP-F, H-F, H-RH-F, H-D), each split into software /
storage / data-transfer / network components.  Each path now runs under
the unified request tracer, so next to the analytic breakdown the
result carries the traced mean and p99 end-to-end latency (the ROADMAP
"p99 columns next to the means" item) and the per-stage histograms.
"""

from __future__ import annotations

from ..api import BENCH_GEOMETRY, RunResult, ScenarioSpec, Session, \
    experiment
from ..flash import PhysAddr
from ..parallel import parallel_map
from ..sim import units

PATHS = ["ISP-F", "H-F", "H-RH-F", "H-D"]
#: Repetitions per path — the breakdown comes from the first (cold,
#: uncontended, deterministic) access; the repetitions feed the traced
#: latency histograms behind the mean/p99 columns.
REPEATS = 16


def measure_path(path: str):
    """Run one access path; return (first breakdown, tracer)."""
    session = Session(ScenarioSpec(name=f"fig12-{path}", n_nodes=3,
                                   geometry=BENCH_GEOMETRY))
    sim, cluster = session.sim, session.cluster
    addr = PhysAddr(node=1, page=3)
    cluster.nodes[1].device.store.program(addr, b"remote page data")
    cluster.nodes[1].dram.store(0, b"remote dram data")

    def proc(sim):
        first = None
        for _ in range(REPEATS):
            if path == "ISP-F":
                _, bd = yield from cluster.isp_remote_flash(0, addr)
            elif path == "H-F":
                _, bd = yield from cluster.host_remote_flash(0, addr)
            elif path == "H-RH-F":
                _, bd = yield from cluster.host_remote_via_host(0, addr)
            else:
                _, bd = yield from cluster.host_remote_dram(0, 1, 0)
            if first is None:
                first = bd
        return first

    breakdown = sim.run_process(proc(sim))
    return breakdown, session.tracer


def fig12_point(path: str) -> dict:
    """One point: an access-path name -> plain-dict measurement.

    The tracer and breakdown objects stay in the worker; only plain
    picklable numbers cross back to the parent.
    """
    breakdown, tracer = measure_path(path)
    overall = tracer.overall_latency()
    return {
        "metrics": {
            "breakdown": breakdown.as_dict(),
            "total_ns": breakdown.total,
            "mean_ns": overall.mean,
            "p99_ns": overall.percentile(99),
            "count": overall.count,
            "stages": tracer.stage_summary(),
        },
        "breakdown_ns": {
            "software": breakdown.software,
            "storage": breakdown.storage,
            "transfer": breakdown.transfer,
            "network": breakdown.network,
            "total": breakdown.total,
        },
        "mean_ns": overall.mean,
        "p99_ns": overall.percentile(99),
        "elapsed_ns": tracer.sim.now,
    }


@experiment("fig12", title="remote access latency breakdown",
            produces="benchmarks/test_fig12_latency.py",
            label="Figure 12")
def run_fig12(jobs: int = 1) -> RunResult:
    result = RunResult("fig12")
    rows = []
    runs = parallel_map(fig12_point, PATHS, jobs=jobs)
    for path, run in zip(PATHS, runs):
        bd = run["breakdown_ns"]
        result.metrics[path] = run["metrics"]
        rows.append([
            path,
            f"{units.to_us(bd['software']):.1f}",
            f"{units.to_us(bd['storage']):.1f}",
            f"{units.to_us(bd['transfer']):.1f}",
            f"{units.to_us(bd['network']):.2f}",
            f"{units.to_us(bd['total']):.1f}",
            f"{units.to_us(run['mean_ns']):.1f}",
            f"{units.to_us(run['p99_ns']):.1f}",
        ])
    result.elapsed_ns = sum(run["elapsed_ns"] for run in runs)
    result.add_table(
        "fig12_latency_breakdown",
        "Figure 12: latency of remote data access "
        "(paper shape: ISP-F < H-F < H-RH-F; H-D no storage; "
        f"mean/p99 traced over {REPEATS} accesses)",
        ["Access", "Software(us)", "Storage(us)", "Transfer(us)",
         "Network(us)", "Total(us)", "Mean(us)", "p99(us)"],
        rows)
    return result
