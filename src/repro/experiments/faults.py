"""Reliability experiments: fault injection, wear-out lifetime, chip loss.

Three registered scenario families exercise :mod:`repro.faults` end to
end — the paper's firmware premise that NAND "has limited program/erase
cycles and frequent errors" (Section 3.1) only disappears because the
management stack hides it:

* ``lifetime`` — TBW until the first unrecoverable page loss, per
  wear-leveling policy.  A hot random-overwrite tenant churns a small
  window while a cold tenant's prefilled data pins its blocks; with
  least-erased-first allocation alone the hot pool burns through its
  (deliberately tiny) endurance and wear-out reads start failing, while
  static wear leveling migrates cold blocks into circulation and
  extends the written-bytes-to-first-loss.
* ``fault_storm`` — a mid-run burst of injected program/erase failures
  under each admission policy.  The volume write path verifies,
  rewrites and retires suspect blocks: recovered writes > 0, lost
  pages = 0 (no acknowledged write is ever lost), and the victim
  reader's p99 shows what the recovery traffic costs under each QoS
  discipline.
* ``chip_loss`` — one chip dies mid-run (programs/erases refuse, reads
  still work).  With evacuation, GC relocates the chip's live pages
  onto the survivors under load; without it, the dead chip's blocks
  retire one by one as writes trip over them.  Either way no
  acknowledged data is lost.

Every scenario is a pure function of primitives, so the sweeps run
through :func:`~repro.parallel.parallel_map` byte-identically at any
``jobs=N``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..api import (
    FaultSpec,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    VolumeSpec,
    WorkloadSpec,
    experiment,
)
from ..flash import FlashGeometry, FlashTiming
from ..parallel import parallel_map
from ..sim import units
from .volume import GC_GEOMETRY, GC_POLICIES, GC_TIMING

# -- lifetime ----------------------------------------------------------
#: A deliberately small, fast device so blocks wear out within a
#: milliseconds-scale window (the ratio, not the absolute, is what the
#: experiment measures): 64 blocks of 8 pages, with program/erase times
#: shrunk so the hot pool turns over its rated cycles in ~tens of ms.
LIFETIME_GEOMETRY = FlashGeometry(buses_per_card=4, chips_per_bus=2,
                                  blocks_per_chip=8, pages_per_block=8,
                                  page_size=8192, cards_per_node=1)
LIFETIME_TIMING = FlashTiming(t_read_ns=20_000, t_prog_ns=25_000,
                              t_erase_ns=30_000)
#: Deliberately tiny rated endurance; wear-out reads ramp to certain
#: failure from 40 % of the rated cycles, so losses appear well before
#: natural end-of-life erase failures shrink the pool.
LIFETIME_ENDURANCE = 12
LIFETIME_WEAR_BER = 1.0
LIFETIME_WEAR_ONSET = 0.4
LIFETIME_WL_THRESHOLD = 4
LIFETIME_DURATION_NS = 55_000_000
#: Hot window (random overwrites) and cold window (prefilled, read-only)
#: of the 384-page logical space: the cold data pins ~40 of the 64
#: physical blocks, concentrating churn on the remaining ~24.
LIFETIME_HOT_SPAN = 64
LIFETIME_COLD_SPAN = 256
WEAR_LEVELING_POLICIES = ("none", "static")


def lifetime_spec(wear_leveling: str,
                  duration_ns: int = LIFETIME_DURATION_NS) -> ScenarioSpec:
    """Hot overwrite churn + pinned cold data on a short-lived device."""
    return ScenarioSpec(
        name=f"lifetime-{wear_leveling}",
        geometry=LIFETIME_GEOMETRY, timing=LIFETIME_TIMING,
        splitter_policy="fifo", splitter_in_flight=8,
        volume=VolumeSpec(overprovision=0.25, allocation="sequential",
                          fill=1.0, gc_low_watermark=6, gc_priority=0),
        fault=FaultSpec(seed=101, wear_ber=LIFETIME_WEAR_BER,
                        wear_ber_onset=LIFETIME_WEAR_ONSET,
                        endurance=LIFETIME_ENDURANCE,
                        wear_leveling=wear_leveling,
                        wl_spread_threshold=LIFETIME_WL_THRESHOLD),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=8,
            tenants=(
                TenantSpec("hot", access="volume", workers=4,
                           pattern="random", write_fraction=0.8,
                           software_path=False, seed_base=23,
                           addr_space=LIFETIME_HOT_SPAN, max_in_flight=8),
                TenantSpec("cold", access="volume", workers=1,
                           pattern="random", write_fraction=0.0,
                           software_path=False, seed_base=41,
                           addr_space=LIFETIME_COLD_SPAN,
                           max_in_flight=2),
            )))


def lifetime_point(args: Tuple[str, int]) -> RunResult:
    """One point: ``(wear_leveling, duration_ns)`` -> session run."""
    wear_leveling, duration_ns = args
    return Session(lifetime_spec(wear_leveling, duration_ns)).run()


@experiment("lifetime",
            title="TBW to first loss: static wear leveling vs none",
            produces="benchmarks/test_lifetime.py",
            label="Lifetime")
def run_lifetime(jobs: int = 1,
                 duration_ns: int = LIFETIME_DURATION_NS) -> RunResult:
    result = RunResult("lifetime")
    page = LIFETIME_GEOMETRY.page_size
    points = [(policy, duration_ns) for policy in WEAR_LEVELING_POLICIES]
    runs = parallel_map(lifetime_point, points, jobs=jobs)
    measured: Dict[str, dict] = {}
    rows = []
    for (policy, _), run in zip(points, runs):
        rel = run.metrics["volume"][0]["reliability"]
        writes = run.metrics["completions"]["hot"]
        first = rel["first_loss_user_writes"]
        tbw = None if first is None else first * page
        measured[policy] = {
            "reliability": dict(rel),
            "faults": run.metrics["faults"][0],
            "writes": writes,
            "tbw_to_first_loss_bytes": tbw,
            "elapsed_ns": run.elapsed_ns,
        }
        rows.append([
            policy,
            f"{rel['wl_migrations']}",
            f"{run.metrics['faults'][0]['wear_max']}",
            f"{rel['lost_pages']}",
            "-" if first is None else f"{first}",
            "survived" if tbw is None else f"{tbw / 1e6:.1f}",
        ])
    none_first = measured["none"]["reliability"]["first_loss_user_writes"]
    static_first = (measured["static"]["reliability"]
                    ["first_loss_user_writes"])
    result.metrics["policies"] = measured
    result.metrics["endurance"] = LIFETIME_ENDURANCE
    # Lifetime extension: pages written before the first loss, static
    # over none (survived-the-window counts as the full run's writes).
    none_tbw = (none_first if none_first is not None
                else measured["none"]["writes"])
    static_tbw = (static_first if static_first is not None
                  else measured["static"]["writes"])
    result.metrics["tbw_extension"] = (static_tbw / none_tbw
                                       if none_tbw else None)
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "lifetime",
        "Written pages until the first unrecoverable loss on a device "
        f"rated {LIFETIME_ENDURANCE} P/E cycles: cold data pins blocks, "
        "so least-erased-first alone burns out the hot pool; static "
        "wear leveling migrates cold blocks into circulation",
        ["WearLeveling", "WLmoves", "MaxPE", "Lost",
         "WritesAtFirstLoss", "TBW(MB)"],
        rows)
    return result


# -- fault_storm -------------------------------------------------------
FAULT_STORM_DURATION_NS = 30_000_000
FAULT_STORM_WINDOW = (10_000_000, 20_000_000)
FAULT_STORM_PROGRAM_RATE = 0.10
FAULT_STORM_ERASE_RATE = 0.05
FAULT_STORM_FILL = 0.75


def fault_storm_spec(policy: str,
                     duration_ns: int = FAULT_STORM_DURATION_NS
                     ) -> ScenarioSpec:
    """The ``gc_steady`` contention mix plus a mid-run failure burst.

    A random-overwrite volume writer churns a 75 %-full volume while a
    QoS-protected reader measures victim p99; between 10 ms and 20 ms
    every program fails with p=0.1 and every erase with p=0.05.  The
    write path's verify-rewrite-retire recovery is the thing under
    test: no acknowledged write may be lost, at any admission policy.
    """
    return ScenarioSpec(
        name=f"fault-storm-{policy}",
        geometry=GC_GEOMETRY, timing=GC_TIMING,
        splitter_policy=policy, splitter_in_flight=8,
        coalesce=True, coalesce_max_pages=8,
        volume=VolumeSpec(overprovision=0.25, allocation="sequential",
                          fill=FAULT_STORM_FILL, gc_low_watermark=12,
                          gc_priority=0, gc_weight=0.5,
                          gc_rate_mbps=200.0),
        fault=FaultSpec(seed=57,
                        program_fail_rate=FAULT_STORM_PROGRAM_RATE,
                        erase_fail_rate=FAULT_STORM_ERASE_RATE,
                        window_start_ns=FAULT_STORM_WINDOW[0],
                        window_end_ns=FAULT_STORM_WINDOW[1]),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=16, drain=True,
            tenants=(
                TenantSpec("writer", access="volume", workers=2,
                           pattern="random", write_fraction=1.0,
                           software_path=False, seed_base=17,
                           weight=2.0, max_in_flight=8),
                TenantSpec("isp", access="isp", workers=2, rng="shared",
                           addr_space=64, max_in_flight=8, priority=2,
                           weight=4.0, deadline_ns=500 * units.US),
            )))


def fault_storm_point(args: Tuple[str, int]) -> RunResult:
    """One point: ``(policy, duration_ns)`` -> session run."""
    policy, duration_ns = args
    return Session(fault_storm_spec(policy, duration_ns)).run()


@experiment("fault_storm",
            title="victim p99 through a program/erase failure burst",
            produces="benchmarks/test_fault_storm.py",
            label="Fault-storm")
def run_fault_storm(jobs: int = 1,
                    policies: Sequence[str] = GC_POLICIES,
                    duration_ns: int = FAULT_STORM_DURATION_NS
                    ) -> RunResult:
    result = RunResult("fault_storm")
    points = [(policy, duration_ns) for policy in policies]
    runs = parallel_map(fault_storm_point, points, jobs=jobs)
    measured: Dict[str, dict] = {}
    rows = []
    for (policy, _), run in zip(points, runs):
        victim = run.tenant_stats["isp"]
        rel = run.metrics["volume"][0]["reliability"]
        faults = run.metrics["faults"][0]
        measured[policy] = {
            "victim": dict(victim),
            "reliability": dict(rel),
            "faults": dict(faults),
            "writes": run.metrics["completions"]["writer"],
            "elapsed_ns": run.elapsed_ns,
        }
        rows.append([
            policy,
            f"{faults['program_failures']}",
            f"{faults['erase_failures']}",
            f"{rel['recovered_writes']}",
            f"{rel['bad_blocks_retired']}",
            f"{rel['lost_pages']}",
            f"{run.metrics['completions']['writer']}",
            f"{units.to_us(victim['p99_ns']):.0f}",
        ])
    result.metrics["policies"] = measured
    result.metrics["storm_window_ns"] = list(FAULT_STORM_WINDOW)
    result.metrics["program_fail_rate"] = FAULT_STORM_PROGRAM_RATE
    result.metrics["erase_fail_rate"] = FAULT_STORM_ERASE_RATE
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "fault_storm",
        "A 10 ms program/erase failure burst mid-run: the volume write "
        "path verifies, rewrites to fresh pages and retires suspect "
        "blocks — zero acknowledged writes lost — while the victim "
        "reader's p99 prices the recovery traffic under each policy",
        ["Policy", "ProgFail", "EraseFail", "Recovered", "Retired",
         "Lost", "Writes", "Victim p99(us)"],
        rows)
    return result


# -- chip_loss ---------------------------------------------------------
CHIP_LOSS_DURATION_NS = 30_000_000
CHIP_LOSS_AFTER_NS = 10_000_000
#: The dying chip: card 0, bus 0, chip 0 — in the thick of the striped
#: rotation, so live data is guaranteed to be on it when it dies.
CHIP_LOSS_CHIP = (0, 0, 0)


def chip_loss_spec(evacuate: bool,
                   duration_ns: int = CHIP_LOSS_DURATION_NS
                   ) -> ScenarioSpec:
    """A mixed read/write volume tenant; one chip dies at 10 ms."""
    return ScenarioSpec(
        name=f"chip-loss-{'evac' if evacuate else 'limp'}",
        geometry=GC_GEOMETRY, timing=GC_TIMING,
        splitter_policy="fifo", splitter_in_flight=8,
        volume=VolumeSpec(overprovision=0.25, allocation="sequential",
                          fill=0.6, gc_low_watermark=12, gc_priority=0),
        fault=FaultSpec(seed=91, fail_chip=CHIP_LOSS_CHIP,
                        fail_chip_after_ns=CHIP_LOSS_AFTER_NS),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=8, drain=True,
            tenants=(
                TenantSpec("mix", access="volume", workers=4,
                           pattern="random", write_fraction=0.5,
                           software_path=False, seed_base=29,
                           max_in_flight=8),
            )))


def chip_loss_point(args: Tuple[bool, int]) -> RunResult:
    """One point: ``(evacuate, duration_ns)`` -> session run.

    With ``evacuate`` the driver reacts to the failure: at the chip's
    death time it pulls the chip from allocation and GC-relocates its
    live pages block by block (interleaving with foreground traffic —
    the volume releases its allocation slot between blocks).  Without
    it, the FTL limps: writes that land on the dead chip fail, recover
    to fresh pages and retire the block as suspect.
    """
    evacuate, duration_ns = args
    session = Session(chip_loss_spec(evacuate, duration_ns))
    if evacuate:
        volume = session.volumes[0]
        card, bus, chip = CHIP_LOSS_CHIP

        def evacuation():
            yield session.sim.timeout(CHIP_LOSS_AFTER_NS)
            yield from volume.evacuate_chip(card, bus, chip)

        session.sim.process(evacuation(), name="chip-evacuation")
    return session.run()


@experiment("chip_loss",
            title="whole-chip death: evacuation vs limp-along",
            produces="benchmarks/test_chip_loss.py",
            label="Chip-loss")
def run_chip_loss(jobs: int = 1,
                  duration_ns: int = CHIP_LOSS_DURATION_NS) -> RunResult:
    result = RunResult("chip_loss")
    points = [(evacuate, duration_ns) for evacuate in (True, False)]
    runs = parallel_map(chip_loss_point, points, jobs=jobs)
    measured: Dict[str, dict] = {}
    rows = []
    for (evacuate, _), run in zip(points, runs):
        key = "evacuate" if evacuate else "limp"
        tenant = run.tenant_stats["mix"]
        rel = run.metrics["volume"][0]["reliability"]
        faults = run.metrics["faults"][0]
        measured[key] = {
            "tenant": dict(tenant),
            "reliability": dict(rel),
            "faults": dict(faults),
            "completions": run.metrics["completions"]["mix"],
            "elapsed_ns": run.elapsed_ns,
        }
        rows.append([
            key,
            f"{rel['chips_evacuated']}",
            f"{rel['evacuated_pages']}",
            f"{faults['chip_refusals']}",
            f"{rel['recovered_writes']}",
            f"{rel['lost_pages']}",
            f"{run.metrics['completions']['mix']}",
            f"{units.to_us(tenant['p99_ns']):.0f}",
        ])
    result.metrics["scenarios"] = measured
    result.metrics["fail_chip"] = list(CHIP_LOSS_CHIP)
    result.metrics["fail_after_ns"] = CHIP_LOSS_AFTER_NS
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "chip_loss",
        "One of 8 chips refuses programs/erases from 10 ms (reads keep "
        "working — stored charge survives).  Evacuation GC-relocates "
        "its live pages onto the survivors under load; limping along "
        "retires its blocks as writes trip over them.  Zero "
        "acknowledged losses either way",
        ["Mode", "ChipsEvac", "PagesEvac", "Refusals", "Recovered",
         "Lost", "Done", "p99(us)"],
        rows)
    return result
