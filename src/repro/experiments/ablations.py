"""Ablations: tagged interface depth, endpoint/lane routing, FTL
over-provisioning, and sequential stripe order."""

from __future__ import annotations

import random

from ..api import ONE_CARD_GEOMETRY, RunResult, ScenarioSpec, Session, \
    drive_pipelined, experiment
from ..flash import FlashCard, FlashGeometry, FlashTiming, PhysAddr
from ..flash.device import StorageDevice
from ..ftl import BlockDeviceFTL
from ..network import StorageNetwork, line
from ..sim import Simulator, Store, units

# ----------------------------------------------------------------------
# Ablation: tag-pool depth vs card bandwidth
# ----------------------------------------------------------------------
TAGS_GEO = FlashGeometry(buses_per_card=8, chips_per_bus=8,
                         blocks_per_chip=8, pages_per_block=16,
                         page_size=8192, cards_per_node=1)
TAG_COUNTS = [1, 4, 16, 64, 128]
N_TAG_READS = 512


def tag_bandwidth(tags: int) -> float:
    sim = Simulator()
    card = FlashCard(sim, geometry=TAGS_GEO, tags=tags)
    done = []

    def reader(i):
        yield sim.process(card.read_page(TAGS_GEO.striped(i)))
        done.append(sim.now)

    drive_pipelined(sim, reader, N_TAG_READS, outstanding=2 * tags + 8)
    return units.bandwidth_gbytes(N_TAG_READS * TAGS_GEO.page_size,
                                  max(done))


@experiment("ablation_tags", title="in-flight command tags vs bandwidth",
            produces="benchmarks/test_ablation_tags.py",
            label="Ablation")
def run_ablation_tags() -> RunResult:
    rates = {t: tag_bandwidth(t) for t in TAG_COUNTS}

    result = RunResult("ablation_tags")
    result.metrics["rates"] = rates
    result.add_table(
        "ablation_tags",
        "Ablation: in-flight command tags vs card bandwidth "
        "(card ceiling 1.2 GB/s)",
        ["Tags", "Bandwidth (GB/s)", "vs 1 tag"],
        [[t, f"{rates[t]:.3f}", f"{rates[t] / rates[1]:.1f}x"]
         for t in TAG_COUNTS])
    return result


# ----------------------------------------------------------------------
# Ablation: deterministic per-endpoint routing over parallel lanes
# ----------------------------------------------------------------------
N_ROUTE_MESSAGES = 60
ROUTE_SIZE = 512


def endpoint_gbps(n_endpoints_used: int) -> float:
    sim = Simulator()
    net = StorageNetwork(sim, line(2, lanes=4), n_endpoints=4)
    finished = []
    order_ok = []

    def sender(sim, ep):
        for i in range(N_ROUTE_MESSAGES):
            yield sim.process(net.endpoint(0, ep).send(1, i, ROUTE_SIZE))

    def receiver(sim, ep):
        got = []
        for _ in range(N_ROUTE_MESSAGES):
            message = yield sim.process(net.endpoint(1, ep).receive())
            got.append(message.payload)
        order_ok.append(got == list(range(N_ROUTE_MESSAGES)))
        finished.append(sim.now)

    for ep in range(n_endpoints_used):
        sim.process(sender(sim, ep))
        sim.process(receiver(sim, ep))
    sim.run()
    assert all(order_ok), "per-endpoint FIFO order violated"
    total = n_endpoints_used * N_ROUTE_MESSAGES * ROUTE_SIZE
    return units.bandwidth_gbps(total, max(finished))


@experiment("ablation_routing",
            title="endpoints spread over parallel lanes",
            produces="benchmarks/test_ablation_routing.py",
            label="Ablation")
def run_ablation_routing() -> RunResult:
    rates = {n: endpoint_gbps(n) for n in (1, 2, 4)}

    result = RunResult("ablation_routing")
    result.metrics["rates"] = rates
    result.add_table(
        "ablation_routing",
        "Ablation: endpoints spread over 4 parallel lanes "
        "(one lane = 8.2 Gb/s payload)",
        ["Endpoints", "Aggregate (Gb/s)", "Lanes used"],
        [[n, f"{rates[n]:.1f}", n] for n in (1, 2, 4)])
    return result


# ----------------------------------------------------------------------
# Ablation: FTL over-provisioning vs write amplification
# ----------------------------------------------------------------------
FTL_GEO = FlashGeometry(buses_per_card=2, chips_per_bus=2,
                        blocks_per_chip=16, pages_per_block=16,
                        page_size=1024, cards_per_node=1)
FTL_FAST = FlashTiming(t_read_ns=1000, t_prog_ns=2000, t_erase_ns=5000,
                       bus_bytes_per_ns=1.0, cmd_overhead_ns=10,
                       aurora_latency_ns=10)
OVERPROVISION = [0.10, 0.25, 0.50]


def write_amplification(overprovision: float) -> tuple:
    sim = Simulator()
    device = StorageDevice(sim, geometry=FTL_GEO, timing=FTL_FAST)
    ftl = BlockDeviceFTL(sim, device, overprovision=overprovision,
                         gc_low_watermark=2)
    rng = random.Random(5)
    n_writes = 4 * FTL_GEO.pages_per_node

    def workload(sim):
        for i in range(n_writes):
            lpn = rng.randrange(ftl.logical_pages)
            yield from ftl.write(lpn, f"w{i}".encode())

    sim.run_process(workload(sim))
    return ftl.write_amplification, ftl.gc_runs


@experiment("ablation_ftl",
            title="FTL spare area vs GC write amplification",
            produces="benchmarks/test_ablation_ftl.py",
            label="Ablation")
def run_ablation_ftl() -> RunResult:
    measured = {op: write_amplification(op) for op in OVERPROVISION}

    result = RunResult("ablation_ftl")
    result.metrics["write_amp"] = {op: measured[op][0]
                                   for op in OVERPROVISION}
    result.metrics["gc_runs"] = {op: measured[op][1]
                                 for op in OVERPROVISION}
    result.add_table(
        "ablation_ftl",
        "Ablation: FTL spare area vs GC write amplification "
        "(random overwrites, greedy victim selection)",
        ["Over-provisioning", "Write amplification", "GC runs"],
        [[f"{op:.0%}", f"{measured[op][0]:.2f}", measured[op][1]]
         for op in OVERPROVISION])
    return result


# ----------------------------------------------------------------------
# Ablation: bus-fastest vs chip-fastest sequential striping
# ----------------------------------------------------------------------
STRIPE_GEO = ONE_CARD_GEOMETRY
N_STRIPE_PAGES = 512
N_STREAMS = 32


def chip_fastest(index: int) -> PhysAddr:
    """The naive layout: consecutive pages fill a bus's chips first."""
    n_units = STRIPE_GEO.buses_per_card * STRIPE_GEO.chips_per_bus
    unit = index % n_units
    offset = index // n_units
    chip = unit % STRIPE_GEO.chips_per_bus
    bus = unit // STRIPE_GEO.chips_per_bus
    return PhysAddr(card=0, bus=bus, chip=chip,
                    block=offset // STRIPE_GEO.pages_per_block,
                    page=offset % STRIPE_GEO.pages_per_block)


def stream_bandwidth(layout) -> float:
    session = Session(ScenarioSpec(name="ablation-striping",
                                   geometry=STRIPE_GEO,
                                   isp_queue_depth=4))
    sim, node = session.sim, session.node
    extents = [layout(i) for i in range(N_STRIPE_PAGES)]
    for addr in extents:
        node.device.store.program(addr, b"data")
    handle = node.flash_server.register_file("f", extents)
    per = N_STRIPE_PAGES // N_STREAMS
    done = []

    def consumer(k):
        out = Store(sim, capacity=2)
        sim.process(node.flash_server.stream_file(
            handle.handle_id, out, offsets=range(k * per, (k + 1) * per)))
        for _ in range(per):
            yield out.get()
        done.append(sim.now)

    for k in range(N_STREAMS):
        sim.process(consumer(k))
    sim.run()
    return units.bandwidth_gbytes(N_STRIPE_PAGES * STRIPE_GEO.page_size,
                                  max(done))


@experiment("ablation_striping",
            title="stripe order under parallel sequential streams",
            produces="benchmarks/test_ablation_striping.py",
            label="Ablation")
def run_ablation_striping() -> RunResult:
    rates = {
        "bus-fastest (BlueDBM)": stream_bandwidth(STRIPE_GEO.striped),
        "chip-fastest (naive)": stream_bandwidth(chip_fastest),
    }

    result = RunResult("ablation_striping")
    result.metrics["rates"] = rates
    result.add_table(
        "ablation_striping",
        "Ablation: stripe order under parallel sequential streams "
        "(card ceiling 1.2 GB/s)",
        ["Layout", "32-stream sequential read (GB/s)"],
        [[name, f"{gbs:.2f}"] for name, gbs in rates.items()])
    return result
