"""Figure 21: string search bandwidth and host CPU utilization.

The search file lives on one flash card (the paper's single-board
figure); all three configurations search the same haystack and must
find exactly the same (oracle-verified) matches.
"""

from __future__ import annotations

from ..api import ONE_CARD_GEOMETRY, RunResult, ScenarioSpec, Session, \
    experiment
from ..apps import SoftwareGrep, StringSearchISP, make_text_corpus
from ..devices import CommoditySSD, HardDisk
from ..host import HostConfig, HostCPU
from ..sim import Simulator, units

NEEDLE = b"BlueDBM-needle"
CORPUS_BYTES = 1024 * 8192  # 8 MB haystack
N_MATCHES = 20

PAPER = {"Flash/ISP": ("1100", "~0%"),
         "Flash/SW Grep": ("600", "65%"),
         "HDD/SW Grep": ("147", "13%")}


def _corpus():
    return make_text_corpus(CORPUS_BYTES, NEEDLE, N_MATCHES, seed=21)


def isp_search():
    # Per-stream queue depth 4: "4 read commands can saturate a single
    # flash bus" (Section 7.3); 32 engines x 4 = the card's 128 tags.
    session = Session(ScenarioSpec(name="fig21-isp",
                                   geometry=ONE_CARD_GEOMETRY,
                                   isp_queue_depth=4))
    sim = session.sim
    app = StringSearchISP(session.node, engines_per_bus=4)
    corpus, expected = _corpus()

    def proc(sim):
        yield from app.setup(corpus)
        return (yield from app.run(NEEDLE))

    matches, gbs, cpu = sim.run_process(proc(sim))
    assert matches == expected
    # The ISP port's reads all ride the unified tracer: per-page flash
    # access mean/p99 behind the streamed search.
    return gbs, cpu, session.tracer.overall_latency()


def grep_search(device_factory):
    sim = Simulator()
    cpu = HostCPU(sim, HostConfig())
    grep = SoftwareGrep(sim, cpu, device_factory(sim))
    corpus, expected = _corpus()
    n_pages = grep.load(corpus)

    def proc(sim):
        return (yield from grep.run(NEEDLE, n_pages))

    matches, gbs, util = sim.run_process(proc(sim))
    assert matches == expected
    return gbs, util, grep.page_latency


@experiment("fig21", title="string search vs grep",
            produces="benchmarks/test_fig21_strsearch.py",
            label="Figure 21")
def run_fig21() -> RunResult:
    measured = {
        "Flash/ISP": isp_search(),
        "Flash/SW Grep": grep_search(lambda s: CommoditySSD(s)),
        "HDD/SW Grep": grep_search(lambda s: HardDisk(s)),
    }

    result = RunResult("fig21")
    result.metrics = {
        name: {"gbs": gbs, "cpu": cpu,
               "page_mean_ns": pages.mean,
               "page_p99_ns": pages.percentile(99),
               "pages": pages.count}
        for name, (gbs, cpu, pages) in measured.items()}
    result.add_table(
        "fig21_strsearch",
        "Figure 21: string search bandwidth and CPU utilization "
        "(mean/p99 = per-page device read behind the scan)",
        ["Search Method", "MB/s", "CPU", "mean (us)", "p99 (us)",
         "Paper MB/s", "Paper CPU"],
        [[name, f"{gbs * 1000:.0f}", f"{cpu:.0%}",
          f"{units.to_us(pages.mean):.0f}",
          f"{units.to_us(pages.percentile(99)):.0f}",
          PAPER[name][0], PAPER[name][1]]
         for name, (gbs, cpu, pages) in measured.items()])
    return result
