"""Distributed-volume experiments: the cluster as one storage system.

Two registered scenario families exercise :mod:`repro.dvol` — the
subsystem that stripes one logical LPN space across per-node
FTL-backed shards reached over the integrated network:

* ``dvol_scan`` — a logically-sequential cluster scan, one tenant per
  node, each walking its own slice of the shared address space.  With
  striped chunk placement half of every tenant's pages live on the
  other node, so the scan exercises the whole remote path (router →
  destination splitter → response).  Remote coalescing on/off: on, the
  network service port's :class:`~repro.dvol.RemoteCoalescer` merges
  the stripe-adjacent remote runs into multi-page commands; off, the
  distributed scan must still deliver ~0.8x the summed bandwidth of
  independent local scans — the paper's "a rack behaves like one
  appliance" claim at the volume level.
* ``dvol_qd_sweep`` — submission window x node count over the network:
  cluster aggregate bandwidth and per-node p99 as the per-tenant queue
  depth deepens, for 1 / 2 / 4 nodes.  At saturating depth the
  aggregate must scale >= 1.6x going from one node to two — remote
  hops cost latency, not bandwidth, once the window covers them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..api import (
    BENCH_GEOMETRY,
    DistributedVolumeSpec,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
    experiment,
)
from ..network import NetworkConfig
from ..parallel import parallel_map
from ..sim import units

# Shared distributed-volume machine knobs.  The stripe chunk matches
# the striped-index card interleave (8-aligned groups of 8 pages per
# card), so a chunk lands whole on one card and stays mergeable; the
# deliberately small service-port slot cap is what makes the remote
# coalescer's pacing bind; the network payload MTU is page-sized so a
# response crosses each hop in few packets.
DVOL_CHUNK = 8
DVOL_MAX_PAGES = 8
DVOL_REMOTE_SLOTS = 4
DVOL_PACKET_PAYLOAD = 2048

SCAN_WINDOW_NS = 2_500_000
SCAN_QD = 16
SCAN_WORKERS = 2
SCAN_SPAN = 8192  # LPNs per tenant (fully prefilled)


def _dvol(shards: int, remote_coalesce: bool) -> DistributedVolumeSpec:
    return DistributedVolumeSpec(
        shards=shards, placement="striped",
        stripe_chunk_pages=DVOL_CHUNK,
        remote_coalesce=remote_coalesce,
        remote_coalesce_max_pages=DVOL_MAX_PAGES,
        remote_in_flight=DVOL_REMOTE_SLOTS,
        volume={"overprovision": 0.25, "allocation": "sequential",
                "fill": 1.0})


def _topology(n_nodes: int) -> TopologySpec:
    """Per-pair parallel lanes for 2 nodes, all-to-all beyond.

    Two nodes exchange half of *both* tenants' pages over one cable
    pair; doubling the lanes (the Figure 13 idiom) keeps the wire off
    the critical path so the measurement sees flash, not serialization.
    """
    if n_nodes <= 1:
        return TopologySpec()
    if n_nodes == 2:
        return TopologySpec(kind="custom", links=((0, 1), (0, 1)))
    return TopologySpec(kind="fully_connected")


def _scan_tenants(n_nodes: int, span: int,
                  workers: int = SCAN_WORKERS) -> Tuple[TenantSpec, ...]:
    return tuple(
        TenantSpec(f"scan-n{node}", access="dvol", node=node,
                   workers=workers, pattern="sequential",
                   software_path=False, addr_space=span,
                   seed_base=7 + node)
        for node in range(n_nodes))


def dvol_scan_spec(remote_coalesce: bool,
                   duration_ns: int = SCAN_WINDOW_NS) -> ScenarioSpec:
    """Two nodes, one scan tenant each, striped distributed volume."""
    return ScenarioSpec(
        name=f"dvol-scan-{'on' if remote_coalesce else 'off'}",
        n_nodes=2, geometry=BENCH_GEOMETRY,
        network=NetworkConfig(max_packet_payload=DVOL_PACKET_PAYLOAD),
        topology=_topology(2),
        coalesce=True, coalesce_max_pages=DVOL_MAX_PAGES,
        dvol=_dvol(2, remote_coalesce),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=SCAN_QD,
            tenants=_scan_tenants(2, SCAN_SPAN)))


def dvol_local_spec(duration_ns: int = SCAN_WINDOW_NS) -> ScenarioSpec:
    """The single-node reference: the same scan with no network at all."""
    return ScenarioSpec(
        name="dvol-scan-local", n_nodes=1, geometry=BENCH_GEOMETRY,
        coalesce=True, coalesce_max_pages=DVOL_MAX_PAGES,
        dvol=_dvol(1, False),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=SCAN_QD,
            tenants=_scan_tenants(1, SCAN_SPAN)))


def _mean_pages_per_command(run: RunResult) -> float:
    remote = run.metrics.get("dvol", {}).get("remote_coalescing", {})
    commands = sum(stats["commands"] for stats in remote.values())
    pages = sum(stats["pages"] for stats in remote.values())
    return pages / commands if commands else 0.0


def dvol_scan_point(args: Tuple[str, int]) -> RunResult:
    """One point: ``(scenario_key, duration_ns)`` -> session run."""
    key, duration_ns = args
    if key == "local":
        spec = dvol_local_spec(duration_ns)
    else:
        spec = dvol_scan_spec(key == "coalesce-on", duration_ns)
    return Session(spec).run()


@experiment("dvol_scan",
            title="distributed volume scan: remote coalescing on/off",
            produces="benchmarks/test_dvol_scan.py",
            label="Dvol-scan")
def run_dvol_scan(jobs: int = 1,
                  window_ns: int = SCAN_WINDOW_NS) -> RunResult:
    result = RunResult("dvol_scan")
    page = BENCH_GEOMETRY.page_size
    measured: Dict[str, dict] = {}
    rows = []
    keys = ("local", "coalesce-off", "coalesce-on")
    runs = parallel_map(dvol_scan_point,
                        [(key, window_ns) for key in keys], jobs=jobs)
    local = runs[0]
    local_bw = local.metrics["total_bandwidth_gbs"]
    measured["local"] = {
        "bandwidth_gbs": local.metrics["bandwidth_gbs"],
        "total_bandwidth_gbs": local_bw,
        "tenant": {name: dict(stats)
                   for name, stats in local.tenant_stats.items()},
    }
    rows.append(["local x1", f"{local_bw:.2f}", "-", "-"])
    for key, run in zip(keys[1:], runs[1:]):
        remote_coalesce = key == "coalesce-on"
        total = run.metrics["total_bandwidth_gbs"]
        pages_per_cmd = _mean_pages_per_command(run)
        routers = run.metrics["dvol"].get("routers", {})
        measured[key] = {
            "bandwidth_gbs": run.metrics["bandwidth_gbs"],
            "total_bandwidth_gbs": total,
            "tenant": {name: dict(stats)
                       for name, stats in run.tenant_stats.items()},
            "remote_coalescing": run.metrics["dvol"].get(
                "remote_coalescing", {}),
            "routers": routers,
            "ratio_vs_local_sum": total / (2 * local_bw),
        }
        remote_reads = sum(r["remote_reads"] for r in routers.values())
        rows.append([
            key, f"{total:.2f}", f"{remote_reads}",
            f"{pages_per_cmd:.2f}" if remote_coalesce else "-",
        ])
    result.metrics["scenarios"] = measured
    result.metrics["window_ns"] = window_ns
    result.metrics["page_size"] = page
    result.metrics["aggregate_ratio_vs_local"] = (
        measured["coalesce-on"]["ratio_vs_local_sum"])
    result.metrics["remote_pages_per_command"] = (
        _mean_pages_per_command(runs[-1]))
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "dvol_scan",
        "Cluster-wide sequential scan over a 2-shard striped volume "
        "(one tenant per node, half of each tenant's pages remote): "
        "aggregate bandwidth vs the summed independent local scans, "
        "and the remote coalescer's merge factor",
        ["Scenario", "GB/s", "Remote reads", "pages/cmd"],
        rows)
    return result


# -- dvol_qd_sweep -----------------------------------------------------
SWEEP_WINDOW_NS = 2_000_000
SWEEP_NODES = (1, 2, 4)
SWEEP_QDS = (2, 8, 48)
SWEEP_SPAN = 6144


def dvol_qd_sweep_spec(n_nodes: int, queue_depth: int,
                       duration_ns: int = SWEEP_WINDOW_NS
                       ) -> ScenarioSpec:
    """One scan tenant per node over an ``n_nodes``-shard volume."""
    return ScenarioSpec(
        name=f"dvol-qd-n{n_nodes}-qd{queue_depth}",
        n_nodes=n_nodes, geometry=BENCH_GEOMETRY,
        network=NetworkConfig(max_packet_payload=DVOL_PACKET_PAYLOAD),
        topology=_topology(n_nodes),
        coalesce=True, coalesce_max_pages=DVOL_MAX_PAGES,
        dvol=_dvol(n_nodes, True),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=queue_depth,
            tenants=_scan_tenants(n_nodes, SWEEP_SPAN, workers=1)))


def dvol_qd_sweep_point(args: Tuple[int, int, int]) -> RunResult:
    """One point: ``(n_nodes, queue_depth, duration_ns)`` -> run."""
    n_nodes, queue_depth, duration_ns = args
    return Session(dvol_qd_sweep_spec(n_nodes, queue_depth,
                                      duration_ns)).run()


@experiment("dvol_qd_sweep",
            title="distributed volume: bandwidth scaling vs queue depth "
                  "and node count",
            produces="benchmarks/test_dvol_qd_sweep.py",
            label="Dvol-QD-sweep")
def run_dvol_qd_sweep(jobs: int = 1,
                      nodes: Tuple[int, ...] = SWEEP_NODES,
                      qds: Tuple[int, ...] = SWEEP_QDS,
                      window_ns: int = SWEEP_WINDOW_NS) -> RunResult:
    result = RunResult("dvol_qd_sweep")
    points = [(n_nodes, qd, window_ns)
              for n_nodes in nodes for qd in qds]
    runs = parallel_map(dvol_qd_sweep_point, points, jobs=jobs)
    sweep: Dict[str, Dict[str, dict]] = {}
    rows = []
    for (n_nodes, qd, _), run in zip(points, runs):
        total = run.metrics["total_bandwidth_gbs"]
        p99 = {name: stats["p99_ns"]
               for name, stats in run.tenant_stats.items()}
        sweep.setdefault(str(n_nodes), {})[str(qd)] = {
            "total_bandwidth_gbs": total,
            "bandwidth_gbs": run.metrics["bandwidth_gbs"],
            "p99_ns": p99,
            "completions": run.metrics["completions"],
        }
        rows.append([
            f"{n_nodes}", f"{qd}", f"{total:.2f}",
            " / ".join(f"{units.to_us(p99[f'scan-n{i}']):.0f}"
                       for i in range(n_nodes)),
        ])
    top = str(max(qds))
    result.metrics["sweep"] = sweep
    result.metrics["nodes"] = list(nodes)
    result.metrics["queue_depths"] = list(qds)
    result.metrics["window_ns"] = window_ns
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    # Scaling ratios for whichever node counts this invocation swept
    # (reduced grids — e.g. the determinism pins — may omit some).
    if "1" in sweep and "2" in sweep:
        result.metrics["scaling_1_to_2"] = (
            sweep["2"][top]["total_bandwidth_gbs"]
            / sweep["1"][top]["total_bandwidth_gbs"])
    if "1" in sweep and "4" in sweep:
        result.metrics["scaling_1_to_4"] = (
            sweep["4"][top]["total_bandwidth_gbs"]
            / sweep["1"][top]["total_bandwidth_gbs"])
    result.add_table(
        "dvol_qd_sweep",
        "Cluster aggregate bandwidth and per-node p99 vs submission "
        "window, one scan tenant per node over an n-shard striped "
        "volume (remote coalescing on): at saturating depth the "
        "aggregate scales with node count — remote hops cost latency, "
        "not bandwidth",
        ["Nodes", "QD", "GB/s", "p99/node (us)"],
        rows)
    return result
