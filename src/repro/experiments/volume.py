"""Logical-volume experiments: the FTL-backed write path end to end.

Three registered scenario families exercise :mod:`repro.volume` — the
subsystem where reads, writes, GC, QoS and coalescing all interact:

* ``volume_scan`` — logically-sequential reads through the FTL map.
  With sequential allocation the volume's prefill lays LPN *i* on
  striped index *i*, so a logical scan coalesces into multi-page
  commands exactly like the PR-4 ``batching`` raw-physical case —
  without the workload knowing its blocks are remapped.  The host
  path adds the PCIe DMA ceiling (1.6 GB/s) the ISP-driven batching
  case never pays, so the comparison clamps the reference to it.
* ``write_burst`` — program coalescing on/off.  A sequential volume
  writer's bursts merge into multi-page
  :meth:`~repro.flash.controller.FlashCard.program_pages` commands
  (fewer command setups, one admission grant at the merged cost, ≥2x
  write bandwidth); a *raw* random physical writer never merges and
  must measure byte-identically with coalescing on or off.
* ``gc_steady`` — steady-state garbage collection: a random-overwrite
  volume tenant churns a prefilled volume at three fill levels while a
  QoS-protected foreground reader measures victim p99.  GC relocation
  rides the dedicated ``volume-gc`` port, so the admission policy
  arbitrates user writes, GC traffic and victim reads together; write
  amplification is > 1 and rises monotonically with fill.

Every scenario here is a pure function of primitives, so the sweeps
run through :func:`~repro.parallel.parallel_map`: ``jobs=N`` fans the
(policy, fill) grid — the dominant cost of the bench suite — across
worker processes, byte-identical to the serial run.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..api import (
    BENCH_GEOMETRY,
    RunResult,
    ScenarioSpec,
    Session,
    TenantSpec,
    VolumeSpec,
    WorkloadSpec,
    experiment,
)
from ..flash import FlashGeometry, FlashTiming
from ..host import HostConfig
from ..parallel import parallel_map
from ..sim import units
from .pipeline import batching_spec

# -- volume_scan -------------------------------------------------------
SCAN_WINDOW_NS = 2_500_000
SCAN_QD = 16
SCAN_WORKERS = 4
SCAN_SLOTS = 8
SCAN_MAX_PAGES = 8
SCAN_SPAN = 16384  # LPNs scanned (fully prefilled)


def volume_scan_spec(coalesce: bool,
                     duration_ns: int = SCAN_WINDOW_NS) -> ScenarioSpec:
    """Four logical-sequential volume readers at qd 16, 8-slot port."""
    return ScenarioSpec(
        name=f"volume-scan-{'on' if coalesce else 'off'}",
        geometry=BENCH_GEOMETRY, coalesce=coalesce,
        coalesce_max_pages=SCAN_MAX_PAGES,
        volume=VolumeSpec(overprovision=0.25, allocation="sequential",
                          fill=1.0),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=SCAN_QD,
            tenants=(TenantSpec("scan", access="volume",
                                workers=SCAN_WORKERS,
                                max_in_flight=SCAN_SLOTS,
                                pattern="sequential",
                                software_path=False,
                                addr_space=SCAN_SPAN, seed_base=5),)))


def volume_scan_point(args: Tuple[str, int]) -> RunResult:
    """One point: ``(scenario_key, duration_ns)`` -> session run."""
    key, duration_ns = args
    if key == "batching-ref":
        spec = batching_spec("sequential", True, duration_ns)
    else:
        spec = volume_scan_spec(key == "scan-on", duration_ns)
    return Session(spec).run()


@experiment("volume_scan",
            title="logical scan through the FTL map (coalesced)",
            produces="benchmarks/test_volume_scan.py",
            label="Volume-scan")
def run_volume_scan(jobs: int = 1,
                    window_ns: int = SCAN_WINDOW_NS) -> RunResult:
    result = RunResult("volume_scan")
    page = BENCH_GEOMETRY.page_size
    keys = ("scan-on", "scan-off", "batching-ref")
    runs = parallel_map(volume_scan_point,
                        [(key, window_ns) for key in keys], jobs=jobs)
    measured: Dict[str, dict] = {}
    rows = []
    for key, run in zip(keys, runs):
        tenant = "scan" if key.startswith("scan") else "isp"
        stats = run.tenant_stats[tenant]
        window = run.metrics["window_ns"]
        bandwidth = stats["completed"] * page / window
        co = (run.metrics.get("coalescing", {})
              .get(0, {}).get(tenant, {}))
        measured[key] = {"tenant": dict(stats),
                         "bandwidth_gbs": bandwidth, "coalescing": co}
        rows.append([
            key,
            f"{stats['completed']:.0f}",
            f"{bandwidth:.2f}",
            f"{units.to_us(stats['mean_ns']):.0f}",
            f"{units.to_us(stats['p99_ns']):.0f}",
            f"{co['pages_per_command']:.1f}" if co else "-",
        ])
    # The host path (which the volume rides) is additionally bounded by
    # the PCIe DMA read ceiling; the ISP-driven batching reference is
    # not.  Clamp the reference before comparing.
    pcie_ceiling = HostConfig().pcie_dev_to_host_gbs
    result.metrics["scenarios"] = measured
    result.metrics["pcie_ceiling_gbs"] = pcie_ceiling
    result.metrics["window_ns"] = window_ns
    result.metrics["scan_vs_reference"] = (
        measured["scan-on"]["bandwidth_gbs"]
        / min(measured["batching-ref"]["bandwidth_gbs"], pcie_ceiling))
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "volume_scan",
        "Logical-sequential scan through the FTL map: 4 volume readers, "
        "qd 16, 8-slot port (sequential allocation lays LPNs on "
        "stripe-adjacent runs, so the scan coalesces like the raw "
        "batching case; host path clamps at the 1.6 GB/s PCIe ceiling)",
        ["Scenario", "Done", "GB/s", "mean(us)", "p99(us)", "pages/cmd"],
        rows)
    return result


# -- write_burst -------------------------------------------------------
BURST_WINDOW_NS = 2_500_000
BURST_QD = 16
BURST_WORKERS = 4
BURST_SLOTS = 8
BURST_MAX_PAGES = 8


def write_burst_spec(pattern: str, coalesce: bool,
                     duration_ns: int = BURST_WINDOW_NS) -> ScenarioSpec:
    """Sequential volume writers, or raw random physical writers.

    ``pattern="sequential"`` streams appends through the FTL-backed
    volume (the coalescible case); ``pattern="random"`` writes raw
    striped physical pages — never stripe-adjacent, so coalescing must
    leave it untouched.
    """
    if pattern == "sequential":
        tenant = TenantSpec("seq", access="volume", workers=BURST_WORKERS,
                            max_in_flight=BURST_SLOTS,
                            pattern="sequential", write_fraction=1.0,
                            software_path=False, addr_space=16384,
                            seed_base=3)
        volume = VolumeSpec(overprovision=0.25, allocation="sequential",
                            fill=0.0)
    else:
        tenant = TenantSpec("host", access="host", workers=BURST_WORKERS,
                            max_in_flight=BURST_SLOTS, pattern="random",
                            write_fraction=1.0, software_path=False,
                            seed_base=11)
        volume = None
    return ScenarioSpec(
        name=f"write-burst-{pattern}-{'on' if coalesce else 'off'}",
        geometry=BENCH_GEOMETRY, coalesce=coalesce,
        coalesce_max_pages=BURST_MAX_PAGES, volume=volume,
        workload=WorkloadSpec(duration_ns=duration_ns,
                              queue_depth=BURST_QD, tenants=(tenant,)))


def write_burst_point(args: Tuple[str, bool, int]) -> RunResult:
    """One point: ``(pattern, coalesce, duration_ns)`` -> session run."""
    pattern, coalesce, duration_ns = args
    return Session(write_burst_spec(pattern, coalesce, duration_ns)).run()


@experiment("write_burst",
            title="program coalescing: sequential vs random writes",
            produces="benchmarks/test_write_burst.py",
            label="Write-burst")
def run_write_burst(jobs: int = 1,
                    window_ns: int = BURST_WINDOW_NS) -> RunResult:
    result = RunResult("write_burst")
    page = BENCH_GEOMETRY.page_size
    points = [(pattern, coalesce, window_ns)
              for pattern in ("sequential", "random")
              for coalesce in (False, True)]
    runs = parallel_map(write_burst_point, points, jobs=jobs)
    measured: Dict[str, dict] = {}
    rows = []
    for (pattern, coalesce, _), run in zip(points, runs):
        tenant = "seq" if pattern == "sequential" else "host"
        stats = run.tenant_stats[tenant]
        bandwidth = stats["completed"] * page / window_ns
        wc = (run.metrics.get("write_coalescing", {})
              .get(0, {}).get(tenant, {}))
        key = f"{pattern}-{'on' if coalesce else 'off'}"
        measured[key] = {
            "tenant": dict(stats), "stages": dict(run.stage_stats),
            "bandwidth_gbs": bandwidth, "write_coalescing": wc,
            "completions": run.metrics["completions"][tenant],
        }
        rows.append([
            pattern, "on" if coalesce else "off",
            f"{stats['completed']:.0f}",
            f"{bandwidth:.2f}",
            f"{units.to_us(stats['mean_ns']):.0f}",
            f"{units.to_us(stats['p99_ns']):.0f}",
            f"{wc['commands']:.0f}" if wc else "-",
            f"{wc['pages_per_command']:.1f}" if wc else "-",
        ])
    result.metrics["scenarios"] = measured
    result.metrics["window_ns"] = window_ns
    result.metrics["speedup"] = (
        measured["sequential-on"]["bandwidth_gbs"]
        / measured["sequential-off"]["bandwidth_gbs"])
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "write_burst",
        "Program-burst coalescing: 4 writers, qd 16, 8-slot port "
        "(sequential volume appends merge into multi-page program "
        "commands — one setup, one admission grant, >=2x bandwidth; "
        "raw random physical writes are untouched)",
        ["Pattern", "Coalesce", "Done", "GB/s", "mean(us)", "p99(us)",
         "cmds", "pages/cmd"],
        rows)
    return result


# -- gc_steady ---------------------------------------------------------
#: Small single-card machine so GC reaches steady state in a
#: milliseconds-scale window: 8 chips x 16 blocks x 8 pages = 1024
#: pages (8 MB).
GC_GEOMETRY = FlashGeometry(buses_per_card=4, chips_per_bus=2,
                            blocks_per_chip=16, pages_per_block=8,
                            page_size=8192, cards_per_node=1)
#: Scaled timing: the 8-page blocks erase at 3 ms x 8/256 (the qos_gc
#: calibration), and programs are scaled 3x down so the GC feedback
#: loop (write -> relocate -> erase) turns over many times per window.
GC_TIMING = FlashTiming(t_prog_ns=100_000, t_erase_ns=93_750)
#: Strict priority is deliberately absent: it starves the writer so
#: hard at low fill that free space never drops to the GC watermark —
#: an interesting result, but not a steady-state GC measurement.
GC_POLICIES = ["fifo", "wfq", "token-bucket"]
GC_FILLS = [0.6, 0.75, 0.9]
GC_DURATION_NS = 30_000_000
GC_OVERPROVISION = 0.25


def gc_steady_spec(policy: str, fill: float,
                   duration_ns: int = GC_DURATION_NS,
                   with_writer: bool = True) -> ScenarioSpec:
    """Random-overwrite volume churn vs a QoS-protected reader.

    The volume is prefilled to ``fill`` of the writer's LBA window;
    random overwrites then invalidate pages until greedy GC runs
    steadily.  GC relocation flows through the dedicated ``volume-gc``
    port (weight 0.5, 200 MB/s cap where the policy uses them), the
    victim reads a small hot set at priority 2 / weight 4.
    """
    tenants = [TenantSpec("isp", access="isp", workers=2, rng="shared",
                          addr_space=64, max_in_flight=8, priority=2,
                          weight=4.0, deadline_ns=500 * units.US)]
    if with_writer:
        tenants.insert(0, TenantSpec(
            "writer", access="volume", workers=2, pattern="random",
            write_fraction=1.0, software_path=False, seed_base=17,
            weight=2.0, max_in_flight=8))
    return ScenarioSpec(
        name=f"gc-steady-{policy}-{fill}" if with_writer
        else "gc-steady-baseline",
        geometry=GC_GEOMETRY, timing=GC_TIMING,
        splitter_policy=policy, splitter_in_flight=8,
        coalesce=True, coalesce_max_pages=8,
        volume=VolumeSpec(overprovision=GC_OVERPROVISION,
                          allocation="sequential", fill=fill,
                          gc_low_watermark=12, gc_priority=0,
                          gc_weight=0.5, gc_rate_mbps=200.0)
        if with_writer else None,
        workload=WorkloadSpec(duration_ns=duration_ns, queue_depth=16,
                              drain=True, tenants=tuple(tenants)))


def gc_steady_point(args: Tuple[str, float, int]) -> RunResult:
    """One point: ``(policy, fill, duration_ns)`` -> session run.

    ``policy="baseline"`` is the writer-less reference run the victim
    p99 columns compare against.
    """
    policy, fill, duration_ns = args
    if policy == "baseline":
        spec = gc_steady_spec("fifo", 0.0, duration_ns, with_writer=False)
    else:
        spec = gc_steady_spec(policy, fill, duration_ns)
    return Session(spec).run()


@experiment("gc_steady",
            title="steady-state GC: WA and victim p99 vs fill",
            produces="benchmarks/test_gc_steady.py",
            label="GC-steady")
def run_gc_steady(jobs: int = 1,
                  policies: Sequence[str] = GC_POLICIES,
                  fills: Sequence[float] = GC_FILLS,
                  duration_ns: int = GC_DURATION_NS) -> RunResult:
    result = RunResult("gc_steady")
    points = [("baseline", 0.0, duration_ns)]
    points += [(policy, fill, duration_ns)
               for policy in policies for fill in fills]
    runs = parallel_map(gc_steady_point, points, jobs=jobs)
    baseline, policy_runs = runs[0], runs[1:]
    baseline_p99 = baseline.tenant_stats["isp"]["p99_ns"]
    result.metrics["baseline"] = {
        "victim": dict(baseline.tenant_stats["isp"])}
    measured: Dict[str, dict] = {}
    rows = [["(no writer)", "-", "-", "-", "-",
             f"{baseline.tenant_stats['isp']['completed']:.0f}",
             f"{units.to_us(baseline_p99):.0f}", "1.0"]]
    for (policy, fill, _), run in zip(points[1:], policy_runs):
        victim = run.tenant_stats["isp"]
        volume = run.metrics["volume"][0]
        wa = run.metrics["write_amplification"]["writer"]
        measured.setdefault(policy, {})[fill] = {
            "write_amplification": wa,
            "victim": dict(victim),
            "volume": volume,
            "writes": run.metrics["completions"]["writer"],
            "elapsed_ns": run.elapsed_ns,
        }
        rows.append([
            policy, f"{fill:.2f}", f"{wa:.2f}",
            f"{volume['gc_runs']}",
            f"{run.metrics['completions']['writer']}",
            f"{victim['completed']:.0f}",
            f"{units.to_us(victim['p99_ns']):.0f}",
            f"{victim['p99_ns'] / baseline_p99:.1f}",
        ])
    result.metrics["policies"] = measured
    result.metrics["fills"] = list(fills)
    result.metrics["overprovision"] = GC_OVERPROVISION
    result.elapsed_ns = sum(run.elapsed_ns for run in runs)
    result.add_table(
        "gc_steady",
        "Steady-state GC on an FTL-backed volume: write amplification "
        "rises with fill level; the admission policy decides how far "
        "GC + write churn degrade the victim reader's p99 vs baseline",
        ["Policy", "Fill", "WA", "GC runs", "Writes", "VictimDone",
         "Victim p99(us)", "vs base"],
        rows)
    return result
