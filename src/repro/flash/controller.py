"""The flash card controller: thin, tagged, out-of-order, error-corrected.

This is the paper's Section 3.1.1 interface: "a low-level, thin, fast and
bit-error corrected hardware interface to raw NAND flash chips, buses,
blocks and pages".  Key properties reproduced here:

* **Tagged commands** — a bounded tag pool bounds in-flight operations;
  completions arrive out of order with respect to issue ("the controller
  may send these data bursts out of order ... interleaved with other read
  requests"), and multiple commands *must* be in flight to saturate the
  device because single-op latency is ~50 µs.
* **All degrees of parallelism exposed** — each chip and each bus is an
  independent resource; requests to different buses/chips overlap fully.
* **Error-free logical view** — ECC decode runs on every read that took a
  bit flip; uncorrectable pages raise and the block is retired
  (grown bad block).

The controller is one *card*; a node has two (Section 5.1), aggregated by
:class:`repro.core.node.BlueDBMNode`.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..io import BatchStageSpan, IORequest, StageSpan
from ..sim import Counter, Resource, Simulator, Store, units
from . import ecc
from .chip import (
    BadBlockProgramError,
    EraseError,
    ErrorModel,
    FlashChip,
    FlashTiming,
    ProgramError,
    ProgramFailedError,
)
from .geometry import DEFAULT_GEOMETRY, FlashGeometry, PhysAddr
from .health import BadBlockTable, WearTracker
from .store import PageStore

__all__ = ["FlashCard", "ReadResult", "UncorrectablePageError",
           "PartialReadError"]


class UncorrectablePageError(Exception):
    """ECC detected more errors than it can correct on this page."""

    def __init__(self, addr: PhysAddr):
        super().__init__(f"uncorrectable ECC error at {addr}")
        self.addr = addr


class PartialReadError(Exception):
    """A multi-page command finished with some pages failed.

    ``results`` / ``errors`` are parallel to the command's address
    list: exactly one of ``results[i]`` / ``errors[i]`` is set per
    page, so a caller fanning completions back out (the splitter's
    coalescer) can settle the successful pages normally and fail only
    the ones that actually went bad.
    """

    def __init__(self, results: list, errors: list):
        failed = [str(e.addr) for e in errors
                  if isinstance(e, UncorrectablePageError)]
        super().__init__(
            f"{sum(e is not None for e in errors)} of {len(errors)} "
            f"pages failed in a multi-page command ({', '.join(failed)})")
        self.results = results
        self.errors = errors


class ReadResult:
    """Completion record for a tagged read."""

    __slots__ = ("addr", "data", "tag", "corrected_bits")

    def __init__(self, addr: PhysAddr, data: bytes, tag: int,
                 corrected_bits: int):
        self.addr = addr
        self.data = data
        self.tag = tag
        self.corrected_bits = corrected_bits


class FlashCard:
    """One custom flash board: 8 buses x 8 chips behind a tagged interface.

    All public operations are DES generators; run them with
    ``yield sim.process(card.read_page(addr))`` or drive many concurrently
    to exploit the card's parallelism.
    """

    def __init__(self, sim: Simulator,
                 geometry: FlashGeometry = DEFAULT_GEOMETRY,
                 timing: Optional[FlashTiming] = None,
                 errors: Optional[ErrorModel] = None,
                 wear: Optional[WearTracker] = None,
                 badblocks: Optional[BadBlockTable] = None,
                 store: Optional[PageStore] = None,
                 node: int = 0, card: int = 0,
                 tags: int = 128, seed: int = 0):
        if tags < 1:
            raise ValueError(f"tag count must be >= 1, got {tags}")
        self.sim = sim
        self.geometry = geometry
        self.timing = timing or FlashTiming()
        self.errors = errors or ErrorModel()
        self.node = node
        self.card = card
        self.store = store if store is not None else PageStore(geometry)
        self.wear = wear if wear is not None else WearTracker()
        self.badblocks = (badblocks if badblocks is not None
                          else BadBlockTable(geometry))
        self.rng = random.Random(seed ^ (node << 16) ^ card)

        self.chips: Dict[Tuple[int, int], FlashChip] = {}
        for bus in range(geometry.buses_per_card):
            for chip in range(geometry.chips_per_bus):
                self.chips[(bus, chip)] = FlashChip(
                    sim, geometry, self.timing, self.store, self.wear,
                    self.errors, self.rng, node, card, bus, chip)
        self.buses = [Resource(sim, capacity=1, name=f"bus-{b}")
                      for b in range(geometry.buses_per_card)]
        # The aurora serial link from the card's Artix-7 up to the host
        # FPGA; 3.3 GB/s, far above the 1.2 GB/s NAND-side ceiling.
        self.aurora = Resource(sim, capacity=1, name="aurora")

        # Whole-page transfers dominate; cache their (constant) duration
        # so the per-page service path skips the division entirely.
        self._page_bus_ns = units.transfer_ns(
            geometry.page_size, self.timing.bus_bytes_per_ns)
        self._page_aurora_ns = units.transfer_ns(
            geometry.page_size, self.timing.aurora_bytes_per_ns)

        self._tag_pool: Store = Store(sim, name="tags")
        for t in range(tags):
            self._tag_pool.items.append(t)
        self.tag_count = tags

        # Telemetry the benchmarks read.
        self.reads = Counter("reads")
        self.writes = Counter("writes")
        self.erases = Counter("erases")
        self.bits_corrected = Counter("bits_corrected")
        self.uncorrectable = Counter("uncorrectable")
        self.program_failures = Counter("program_failures")
        self.bytes_read = Counter("bytes_read")
        self.bytes_written = Counter("bytes_written")

    # -- internals ---------------------------------------------------------
    def _chip(self, addr: PhysAddr) -> FlashChip:
        if addr.node != self.node or addr.card != self.card:
            raise ValueError(f"{addr} not on card {self.card} "
                             f"of node {self.node}")
        key = (addr.bus, addr.chip)
        if key not in self.chips:
            raise ValueError(f"{addr} addresses a nonexistent chip")
        return self.chips[key]

    def _bus_transfer_ns(self, num_bytes: int) -> int:
        if num_bytes == self.geometry.page_size:
            return self._page_bus_ns
        return units.transfer_ns(num_bytes, self.timing.bus_bytes_per_ns)

    def _aurora_transfer_ns(self, num_bytes: int) -> int:
        if num_bytes == self.geometry.page_size:
            return self._page_aurora_ns
        return units.transfer_ns(num_bytes, self.timing.aurora_bytes_per_ns)

    # -- tagged operations ---------------------------------------------------
    def read_page(self, addr: PhysAddr, request: Optional[IORequest] = None):
        """Tagged page read; returns :class:`ReadResult` (corrected data).

        Timeline: acquire tag -> command overhead -> chip array read
        (t_read) -> bus transfer -> aurora transfer to the host FPGA ->
        ECC decode -> release tag.

        ``request`` is the unified-pipeline request being served, if the
        caller traces; tag wait, array access, and card-internal data
        movement are charged to its ``tag``/``storage``/``device`` stages.
        """
        chip = self._chip(addr)
        if self.badblocks.is_bad(addr):
            raise UncorrectablePageError(addr)
        with StageSpan(self.sim, request, "tag"):
            tag = yield self._tag_pool.get()
        try:
            with StageSpan(self.sim, request, "storage"):
                yield self.sim.timeout(self.timing.cmd_overhead_ns)
            result = yield from self._page_service(addr, chip, request, tag)
            return result
        finally:
            self._tag_pool.put_nowait(tag)

    def _page_service(self, addr: PhysAddr, chip, request, tag: int):
        """Array read + card-internal transfer + ECC for one page.

        The shared service half of both a plain :meth:`read_page` and
        each page of a multi-page command — the caller owns the tag and
        the per-command setup, so single and coalesced reads cannot
        drift apart.
        """
        with StageSpan(self.sim, request, "storage"):
            data, parity, flips = yield self.sim.process(chip.read(addr))
        with StageSpan(self.sim, request, "device"):
            bus = self.buses[addr.bus]
            yield bus.request()
            try:
                yield self.sim.timeout(self._page_bus_ns)
            finally:
                bus.release()
            yield self.aurora.request()
            try:
                yield self.sim.timeout(
                    self.timing.aurora_latency_ns + self._page_aurora_ns)
            finally:
                self.aurora.release()
        corrected_bits = 0
        if flips:
            try:
                data, corrected_bits = ecc.decode_page(data, parity)
                self.bits_corrected.add(corrected_bits)
            except ecc.UncorrectableError:
                self.uncorrectable.add()
                self.badblocks.mark_bad(addr)
                raise UncorrectablePageError(addr) from None
        self.reads.add()
        self.bytes_read.add(self.geometry.page_size)
        return ReadResult(addr, data, tag, corrected_bits)

    def read_pages(self, addrs, requests=None):
        """One multi-page command: a single tag and one command setup
        amortized over several page reads (DES generator).

        This is the card half of splitter-admission coalescing: the
        whole group holds *one* physical tag and pays
        ``cmd_overhead_ns`` once, then every page's array read proceeds
        concurrently (the addresses of a stripe-adjacent run land on
        distinct buses, so the chip reads and bus transfers overlap;
        the aurora link serializes the payloads as usual).  The command
        retires — and the tag frees — when the last page has
        transferred.

        ``requests`` is an optional parallel list of per-page
        :class:`~repro.io.request.IORequest`\\ s; shared waits (tag,
        command setup) are charged to every child via
        :class:`~repro.io.stage.BatchStageSpan`, per-page service to
        each child alone, so the tracer still attributes queueing vs.
        service per page.  Returns the :class:`ReadResult` list in
        input order; if any page fails, raises
        :class:`PartialReadError` carrying per-page outcomes so the
        successful siblings' results are not lost.
        """
        if not addrs:
            return []
        requests = (list(requests) if requests is not None
                    else [None] * len(addrs))
        if len(requests) != len(addrs):
            raise ValueError(
                f"{len(requests)} requests for {len(addrs)} addresses")
        chips = [self._chip(addr) for addr in addrs]
        results: list = [None] * len(addrs)
        if self.badblocks.pristine:
            # Fast path: no block anywhere is bad, skip per-page checks.
            errors: list = [None] * len(addrs)
        else:
            errors = [
                UncorrectablePageError(addr) if self.badblocks.is_bad(addr)
                else None
                for addr in addrs]
            if all(error is not None for error in errors):
                # Nothing readable: fail like read_page does, pre-tag.
                raise PartialReadError(results, errors)
        with BatchStageSpan(self.sim, requests, "tag"):
            tag = yield self._tag_pool.get()
        try:
            with BatchStageSpan(self.sim, requests, "storage"):
                yield self.sim.timeout(self.timing.cmd_overhead_ns)
            procs = [
                self.sim.process(self._page_read(
                    addr, chip, request, tag, index, results, errors))
                for index, (addr, chip, request)
                in enumerate(zip(addrs, chips, requests))
                if errors[index] is None
            ]
            for proc in procs:
                yield proc
            if any(error is not None for error in errors):
                raise PartialReadError(results, errors)
            return results
        finally:
            self._tag_pool.put_nowait(tag)

    def _page_read(self, addr: PhysAddr, chip, request, tag: int,
                   index: int, results: list, errors: list):
        """One page of a multi-page command: the shared per-page
        service with its failure parked instead of raised — the pages
        of one command run as sibling processes with no waiter of
        their own, and the command must retire as a unit either way.
        """
        try:
            results[index] = yield from self._page_service(
                addr, chip, request, tag)
        except UncorrectablePageError as exc:
            errors[index] = exc

    def program_pages(self, addrs, datas, requests=None):
        """One multi-page program command: a single tag and one command
        setup amortized over several page programs (DES generator).

        The write half of splitter-admission coalescing: the whole
        group holds *one* physical tag and pays ``cmd_overhead_ns``
        once; then each page's data moves down (aurora + bus) and
        programs on its chip.  Pages on distinct chips proceed
        concurrently (a stripe-adjacent run lands on distinct buses);
        pages sharing a chip execute strictly in input order, so the
        NAND program-order rule inside a block is preserved exactly as
        a sequence of single-page commands would have.

        Hard NAND rules enforced up front, before any timing:

        * every address must be on this card and on a good block;
        * within one block, input pages must be strictly increasing —
          a group that would *reorder* programs inside a block is
          rejected with :class:`ProgramError` (and
          :class:`~repro.flash.chip.FlashChip.program` independently
          rejects reprogramming a page that is already programmed).

        The order rule is scoped to this command: across *separate*
        commands the card programs whatever arrives, so preserving
        in-block order under concurrent submission is the write path's
        job — :class:`~repro.volume.LogicalVolume` gates same-block
        programs into allocation order before they reach the splitter,
        while raw physical access is deliberately unpoliced.

        ``requests`` mirrors :meth:`read_pages`: shared waits (tag,
        command setup) are charged to every child, per-page transfer
        and program time to each child alone.
        """
        addrs = list(addrs)
        datas = list(datas)
        if not addrs:
            return
        if len(datas) != len(addrs):
            raise ValueError(
                f"{len(datas)} payloads for {len(addrs)} addresses")
        requests = (list(requests) if requests is not None
                    else [None] * len(addrs))
        if len(requests) != len(addrs):
            raise ValueError(
                f"{len(requests)} requests for {len(addrs)} addresses")
        chips = [self._chip(addr) for addr in addrs]
        if not self.badblocks.pristine:
            for addr in addrs:
                if self.badblocks.is_bad(addr):
                    raise BadBlockProgramError(
                        f"program to bad block at {addr}")
        last_page: Dict[tuple, int] = {}
        for addr in addrs:
            block_key = (addr.bus, addr.chip, addr.block)
            previous = last_page.get(block_key)
            if previous is not None and addr.page <= previous:
                raise ProgramError(
                    f"multi-page command reorders programs within block "
                    f"{addr.block_addr()} (page {addr.page} after "
                    f"{previous})")
            last_page[block_key] = addr.page
        with BatchStageSpan(self.sim, requests, "tag"):
            tag = yield self._tag_pool.get()
        try:
            with BatchStageSpan(self.sim, requests, "storage"):
                yield self.sim.timeout(self.timing.cmd_overhead_ns)
            # One sequential lane per chip (program order within a
            # block), all lanes concurrent across chips.
            lanes: Dict[tuple, list] = {}
            for index, addr in enumerate(addrs):
                lanes.setdefault((addr.bus, addr.chip), []).append(index)
            # A lane parks an injected program failure instead of
            # failing its process (mirroring ``_page_read``): the lanes
            # run as siblings with no waiter of their own, and a
            # waiterless failure crashes the simulation.  The command
            # retires as a unit, then reports the first failure.
            failures: list = []
            procs = [
                self.sim.process(self._lane_program(
                    [(addrs[i], datas[i], chips[i], requests[i])
                     for i in indices], failures))
                for indices in lanes.values()
            ]
            for proc in procs:
                yield proc
            if failures:
                raise failures[0]
        finally:
            self._tag_pool.put_nowait(tag)

    def _lane_program(self, pages, failures: Optional[list] = None):
        """Program one chip's share of a multi-page command, in order.

        An injected :class:`~repro.flash.chip.ProgramFailedError` stops
        the lane (its remaining pages are never programmed) and is
        parked in ``failures`` for the command to re-raise as a unit.
        """
        for addr, data, chip, request in pages:
            try:
                yield from self._page_program(addr, data, chip, request)
            except ProgramFailedError as exc:
                if failures is None:
                    raise
                failures.append(exc)
                return

    def _page_program(self, addr: PhysAddr, data: bytes, chip, request):
        """Data movement + program for one page.

        The shared service half of both a plain :meth:`write_page` and
        each page of a multi-page command — the caller owns the tag
        and the per-command setup, so single and coalesced programs
        cannot drift apart (the write-side analogue of
        :meth:`_page_service`).
        """
        with StageSpan(self.sim, request, "device"):
            yield self.aurora.request()
            try:
                yield self.sim.timeout(
                    self.timing.aurora_latency_ns
                    + self._aurora_transfer_ns(len(data)))
            finally:
                self.aurora.release()
            bus = self.buses[addr.bus]
            yield bus.request()
            try:
                yield self.sim.timeout(self._bus_transfer_ns(len(data)))
            finally:
                bus.release()
        with StageSpan(self.sim, request, "storage"):
            try:
                yield self.sim.process(chip.program(addr, data))
            except ProgramFailedError:
                # An injected NAND fault, not a caller bug: count it and
                # let the write path recover (rewrite to a fresh page).
                # The block is NOT marked bad here — its already-
                # programmed sibling pages must stay readable; the FTL
                # retires it as suspect at its next erase instead.
                self.program_failures.add()
                raise
        self.writes.add()
        self.bytes_written.add(self.geometry.page_size)

    def write_page(self, addr: PhysAddr, data: bytes,
                   request: Optional[IORequest] = None):
        """Tagged page program.

        Timeline mirrors the paper's write flow: the command is issued,
        then the controller's scheduler requests the data (aurora + bus
        transfer down to the chip), then the chip programs (t_prog).
        """
        chip = self._chip(addr)
        if self.badblocks.is_bad(addr):
            raise BadBlockProgramError(f"program to bad block at {addr}")
        with StageSpan(self.sim, request, "tag"):
            tag = yield self._tag_pool.get()
        try:
            with StageSpan(self.sim, request, "storage"):
                yield self.sim.timeout(self.timing.cmd_overhead_ns)
            yield from self._page_program(addr, data, chip, request)
        finally:
            self._tag_pool.put_nowait(tag)

    def erase_block(self, addr: PhysAddr, request: Optional[IORequest] = None):
        """Tagged block erase; retires the block on erase failure."""
        chip = self._chip(addr)
        with StageSpan(self.sim, request, "tag"):
            tag = yield self._tag_pool.get()
        try:
            with StageSpan(self.sim, request, "storage"):
                yield self.sim.timeout(self.timing.cmd_overhead_ns)
                try:
                    yield self.sim.process(chip.erase(addr))
                except EraseError:
                    self.badblocks.mark_bad(addr)
                    raise
            self.erases.add()
        finally:
            self._tag_pool.put_nowait(tag)

    # -- capacity views ------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Commands currently holding a tag."""
        return self.tag_count - len(self._tag_pool.items)

    def peak_read_bandwidth(self) -> float:
        """Theoretical card read ceiling in GB/s (bus-limited)."""
        return min(
            self.timing.bus_bytes_per_ns * self.geometry.buses_per_card,
            self.timing.aurora_bytes_per_ns)
