"""Flash Interface Splitter: shared access with tag renaming and QoS.

Multiple hardware endpoints need the one card interface — "local in-store
processors, local host software over PCIe DMA, or remote in-store
processors over the network" (Section 3.1.2, Figure 3).  Each user gets a
:class:`SplitterPort` with its own private tag space; the splitter renames
user tags onto the card's physical tags and guarantees fairness by
capping how many physical tags one user may hold.

The splitter is built on the unified I/O pipeline
(:mod:`repro.io`): every operation is an
:class:`~repro.io.request.IORequest` carrying the port's tenant label,
priority, and deadline; slot waits are charged to the request's
``queue`` stage; and two scheduling points are policy-driven:

* each port's in-flight cap is a
  :class:`~repro.io.scheduler.ScheduledResource` (FIFO by default —
  the seed behavior);
* optionally, a shared *admission* stage arbitrates across ports with
  any :class:`~repro.io.scheduler.SchedulerPolicy` (round-robin fair
  share, strict priority, earliest deadline), bounding total in-flight
  commands below the card's physical tag pool so the policy — not the
  FIFO tag queue — decides who runs under contention.
"""

from __future__ import annotations

from typing import List, Optional

from ..io import IOKind, IORequest, RequestTracer, ScheduledResource, StageSpan
from ..sim import Counter, Simulator
from .controller import FlashCard, ReadResult
from .geometry import PhysAddr

__all__ = ["FlashSplitter", "SplitterPort"]


class SplitterPort:
    """One user's view of the card: an independently-tagged interface.

    ``tenant``/``priority``/``deadline_ns`` are the QoS identity every
    request issued through this port inherits (``deadline_ns`` is a
    relative deadline applied at issue time; None means no deadline).
    """

    def __init__(self, splitter: "FlashSplitter", user_id: int,
                 max_in_flight: int, tenant: Optional[str] = None,
                 priority: int = 0, deadline_ns: Optional[int] = None):
        self.splitter = splitter
        self.user_id = user_id
        self.tenant = tenant or f"user{user_id}"
        self.priority = priority
        self.deadline_ns = deadline_ns
        self._slots = ScheduledResource(splitter.sim,
                                        capacity=max_in_flight,
                                        policy="fifo",
                                        name=f"splitter-{self.tenant}")
        self._next_user_tag = 0
        self.reads = Counter(f"user{user_id}-reads")
        self.writes = Counter(f"user{user_id}-writes")

    @property
    def max_in_flight(self) -> int:
        return self._slots.capacity

    @property
    def in_flight(self) -> int:
        """Commands this port currently holds slots for."""
        return self._slots.in_use

    @property
    def queue_wait(self):
        """Wait histogram for this port's own slot cap only.

        Under a shared admission policy most queueing happens at
        :attr:`FlashSplitter.admission` (see its ``wait_stats`` /
        ``tenant_waits``); the full per-request queueing time — slot
        plus admission — is the request ledger's ``queue`` stage.
        """
        return self._slots.wait_stats

    def _rename(self) -> int:
        """Allocate the next user-visible tag (monotonic per user)."""
        tag = self._next_user_tag
        self._next_user_tag += 1
        return tag

    def _start(self, kind: IOKind, addr: PhysAddr, size: int,
               request: Optional[IORequest]) -> tuple:
        """Adopt the caller's request or open one of our own.

        Returns ``(request, owned)`` — ``owned`` means this port created
        the request and must complete it into the splitter's tracer.
        """
        if request is not None:
            return request, False
        tracer = self.splitter.tracer
        if tracer is None:
            return None, False
        deadline = (None if self.deadline_ns is None
                    else self.splitter.sim.now + self.deadline_ns)
        return tracer.start(kind, addr, size, tenant=self.tenant,
                            priority=self.priority,
                            deadline_ns=deadline), True

    def _admit(self, request: Optional[IORequest]):
        """Acquire the port slot, then the shared admission slot (if any).

        Both waits are charged to the request's ``queue`` stage.  The
        priority/deadline forwarded to the scheduling policies come from
        the request when it specifies them (end-to-end QoS), falling
        back to the port's configured identity — so a request created
        merely for tracing never demotes a port's QoS.
        """
        sim = self.splitter.sim
        priority = self.priority
        if request is not None and request.priority is not None:
            priority = request.priority
        deadline = None
        if request is not None and request.deadline_ns is not None:
            deadline = request.deadline_ns
        elif self.deadline_ns is not None:
            deadline = sim.now + self.deadline_ns
        with StageSpan(sim, request, "queue"):
            yield self._slots.request(tenant=self.tenant, priority=priority,
                                      deadline_ns=deadline)
            admission = self.splitter.admission
            if admission is not None:
                try:
                    yield admission.request(tenant=self.tenant,
                                            priority=priority,
                                            deadline_ns=deadline)
                except BaseException:
                    self._slots.release()
                    raise

    def _retire(self) -> None:
        admission = self.splitter.admission
        if admission is not None:
            admission.release()
        self._slots.release()

    def read_page(self, addr: PhysAddr, request: Optional[IORequest] = None):
        """Read via the shared card; returns :class:`ReadResult` whose tag
        is this user's renamed tag, not the card's physical tag."""
        request, owned = self._start(IOKind.READ, addr,
                                     self.splitter.page_size, request)
        user_tag = self._rename()
        yield from self._admit(request)
        try:
            result = yield self.splitter.sim.process(
                self.splitter.card.read_page(addr, request=request))
        finally:
            self._retire()
        self.reads.add()
        if owned:
            self.splitter.tracer.complete(request)
        return ReadResult(result.addr, result.data, user_tag,
                          result.corrected_bits)

    def write_page(self, addr: PhysAddr, data: bytes,
                   request: Optional[IORequest] = None):
        request, owned = self._start(IOKind.WRITE, addr, len(data), request)
        self._rename()
        yield from self._admit(request)
        try:
            yield self.splitter.sim.process(
                self.splitter.card.write_page(addr, data, request=request))
        finally:
            self._retire()
        self.writes.add()
        if owned:
            self.splitter.tracer.complete(request)

    def erase_block(self, addr: PhysAddr,
                    request: Optional[IORequest] = None):
        request, owned = self._start(IOKind.ERASE, addr, 0, request)
        self._rename()
        yield from self._admit(request)
        try:
            yield self.splitter.sim.process(
                self.splitter.card.erase_block(addr, request=request))
        finally:
            self._retire()
        if owned:
            self.splitter.tracer.complete(request)


class FlashSplitter:
    """Fans one flash target out to several tag-renamed users.

    The target is anything exposing ``read_page``/``write_page``/
    ``erase_block`` generators — a single :class:`FlashCard` or a whole
    multi-card :class:`~repro.flash.device.StorageDevice`.

    ``fair_share`` bounds each port's in-flight commands so one user
    cannot exhaust the target's physical tag pool and starve the rest.

    ``policy`` (a name from :data:`repro.io.scheduler.POLICIES` or a
    policy instance) enables the shared admission stage: at most
    ``total_in_flight`` commands (default: the target's tag count) are
    outstanding across *all* ports, and when a slot frees the policy
    picks the next tenant.  ``tracer`` attaches end-to-end request
    tracing to every operation issued through any port.
    """

    def __init__(self, sim: Simulator, card,
                 fair_share: Optional[int] = None,
                 policy=None, total_in_flight: Optional[int] = None,
                 tracer: Optional[RequestTracer] = None):
        self.sim = sim
        self.card = card  # the flash target (card or device)
        self.fair_share = fair_share
        self.tracer = tracer
        self.ports: List[SplitterPort] = []
        self.admission: Optional[ScheduledResource] = None
        if policy is not None:
            capacity = total_in_flight or self.tag_count
            self.admission = ScheduledResource(
                sim, capacity=capacity, policy=policy,
                name="splitter-admission")

    @property
    def tag_count(self) -> int:
        return getattr(self.card, "tag_count", 128)

    @property
    def page_size(self) -> int:
        geometry = getattr(self.card, "geometry", None)
        return getattr(geometry, "page_size", 8192)

    @property
    def in_flight(self) -> int:
        """Commands currently admitted across all ports."""
        if self.admission is not None:
            return self.admission.in_use
        return sum(port.in_flight for port in self.ports)

    def add_port(self, max_in_flight: Optional[int] = None,
                 tenant: Optional[str] = None, priority: int = 0,
                 deadline_ns: Optional[int] = None) -> SplitterPort:
        """Attach a new user; returns its private port."""
        limit = max_in_flight or self.fair_share or self.tag_count
        limit = min(limit, self.tag_count)
        port = SplitterPort(self, len(self.ports), limit, tenant=tenant,
                            priority=priority, deadline_ns=deadline_ns)
        self.ports.append(port)
        return port
