"""Flash Interface Splitter: shared access with tag renaming and QoS.

Multiple hardware endpoints need the one card interface — "local in-store
processors, local host software over PCIe DMA, or remote in-store
processors over the network" (Section 3.1.2, Figure 3).  Each user gets a
:class:`SplitterPort` with its own private tag space; the splitter renames
user tags onto the card's physical tags and guarantees fairness by
capping how many physical tags one user may hold.

The splitter is built on the unified I/O pipeline
(:mod:`repro.io`): every operation is an
:class:`~repro.io.request.IORequest` carrying the port's tenant label,
priority, and deadline; slot waits are charged to the request's
``queue`` stage; and two scheduling points are policy-driven:

* each port's in-flight cap is a
  :class:`~repro.io.scheduler.ScheduledResource` (FIFO by default —
  the seed behavior);
* optionally, a shared *admission* stage arbitrates across ports with
  any :class:`~repro.io.scheduler.SchedulerPolicy` (round-robin fair
  share, weighted fair share, token-bucket rate limiting, strict
  priority, earliest deadline), bounding total in-flight commands below
  the card's physical tag pool so the policy — not the FIFO tag queue —
  decides who runs under contention.

Admission accounting is per-tenant **bandwidth**, not just slot
counts: every admission request carries its payload size as the
scheduling *cost* (weighted fair share charges ``bytes / weight`` of
virtual time; token buckets drain ``bytes`` of tokens), and every
serviced operation lands in the splitter's
:class:`~repro.sim.stats.BandwidthLedger` — per-tenant bytes per
window, the number rate caps and fair-share ratios are asserted
against.  The scheduling identity comes from the *request* when one is
attached (so remote tenants arriving through the shared network port
are scheduled and accounted individually), falling back to the port's
configured tenant.
"""

from __future__ import annotations

from typing import List, Optional

from ..io import IOKind, IORequest, RequestTracer, ScheduledResource, StageSpan
from ..sim import BandwidthLedger, Counter, Simulator
from .coalesce import Coalescer, WriteCoalescer
from .controller import FlashCard, ReadResult
from .geometry import DEFAULT_GEOMETRY, PhysAddr

__all__ = ["FlashSplitter", "SplitterPort"]


class SplitterPort:
    """One user's view of the card: an independently-tagged interface.

    ``tenant``/``priority``/``deadline_ns`` are the QoS identity every
    request issued through this port inherits (``deadline_ns`` is a
    relative deadline applied at issue time; None means no deadline).
    """

    def __init__(self, splitter: "FlashSplitter", user_id: int,
                 max_in_flight: int, tenant: Optional[str] = None,
                 priority: int = 0, deadline_ns: Optional[int] = None):
        self.splitter = splitter
        self.user_id = user_id
        self.tenant = tenant or f"user{user_id}"
        self.priority = priority
        self.deadline_ns = deadline_ns
        self._slots = ScheduledResource(splitter.sim,
                                        capacity=max_in_flight,
                                        policy="fifo",
                                        name=f"splitter-{self.tenant}")
        self.coalescer = (Coalescer(self, splitter.coalesce_max_pages)
                          if splitter.coalesce else None)
        self.write_coalescer = (
            WriteCoalescer(self, splitter.coalesce_max_pages)
            if splitter.coalesce else None)
        self._next_user_tag = 0
        self.reads = Counter(f"user{user_id}-reads")
        self.writes = Counter(f"user{user_id}-writes")

    @property
    def max_in_flight(self) -> int:
        return self._slots.capacity

    @property
    def in_flight(self) -> int:
        """Commands this port currently holds slots for."""
        return self._slots.in_use

    @property
    def queue_wait(self):
        """Wait histogram for this port's own slot cap only.

        Under a shared admission policy most queueing happens at
        :attr:`FlashSplitter.admission` (see its ``wait_stats`` /
        ``tenant_waits``); the full per-request queueing time — slot
        plus admission — is the request ledger's ``queue`` stage.
        """
        return self._slots.wait_stats

    def _rename(self) -> int:
        """Allocate the next user-visible tag (monotonic per user)."""
        tag = self._next_user_tag
        self._next_user_tag += 1
        return tag

    def _start(self, kind: IOKind, addr: PhysAddr, size: int,
               request: Optional[IORequest]) -> tuple:
        """Adopt the caller's request or open one of our own.

        Returns ``(request, owned)`` — ``owned`` means this port created
        the request and must complete it into the splitter's tracer.
        """
        if request is not None:
            return request, False
        tracer = self.splitter.tracer
        if tracer is None:
            return None, False
        deadline = (None if self.deadline_ns is None
                    else self.splitter.sim.now + self.deadline_ns)
        return tracer.start(kind, addr, size, tenant=self.tenant,
                            priority=self.priority,
                            deadline_ns=deadline), True

    def sched_tenant(self, request: Optional[IORequest]) -> str:
        """The tenant label scheduling and accounting run under.

        The request's own tenant wins when one is attached — remote
        tenants funneled through the shared network-service port keep
        their identity at the admission stage — falling back to the
        port's configured tenant.
        """
        if request is not None and request.tenant:
            return request.tenant
        return self.tenant

    def _admit(self, request: Optional[IORequest], cost: int):
        """Acquire the port slot, then the shared admission slot (if any).

        Both waits are charged to the request's ``queue`` stage.  The
        tenant/priority/deadline forwarded to the scheduling policies
        come from the request when it specifies them (end-to-end QoS),
        falling back to the port's configured identity — so a request
        created merely for tracing never demotes a port's QoS.
        ``cost`` is the operation's payload bytes: what weighted fair
        share and token buckets charge instead of a flat slot count.
        """
        sim = self.splitter.sim
        tenant = self.sched_tenant(request)
        priority = self.priority
        if request is not None and request.priority is not None:
            priority = request.priority
        deadline = None
        if request is not None and request.deadline_ns is not None:
            deadline = request.deadline_ns
        elif self.deadline_ns is not None:
            deadline = sim.now + self.deadline_ns
        with StageSpan(sim, request, "queue"):
            yield self._slots.request(tenant=tenant, priority=priority,
                                      deadline_ns=deadline, cost=cost)
            admission = self.splitter.admission
            if admission is not None:
                try:
                    yield admission.request(tenant=tenant,
                                            priority=priority,
                                            deadline_ns=deadline,
                                            cost=cost)
                except BaseException:
                    self._slots.release()
                    raise

    def _retire(self) -> None:
        admission = self.splitter.admission
        if admission is not None:
            admission.release()
        self._slots.release()

    def read_page(self, addr: PhysAddr, request: Optional[IORequest] = None):
        """Read via the shared card; returns :class:`ReadResult` whose tag
        is this user's renamed tag, not the card's physical tag.

        With coalescing enabled the read is staged at the port's
        :class:`~repro.flash.coalesce.Coalescer` instead of admitted
        directly: stripe-adjacent reads from the same tenant merge into
        one multi-page command (one slot, one admission grant at the
        merged byte cost, one card command), and this generator resumes
        when the merged command delivers its page.
        """
        size = self.splitter.page_size
        request, owned = self._start(IOKind.READ, addr, size, request)
        user_tag = self._rename()
        if self.coalescer is not None:
            result = yield self.coalescer.submit(addr, request)
            self.reads.add()
            if owned:
                self.splitter.tracer.complete(request)
            return ReadResult(result.addr, result.data, user_tag,
                              result.corrected_bits)
        yield from self._admit(request, cost=size)
        try:
            result = yield self.splitter.sim.process(
                self.splitter.card.read_page(addr, request=request))
        finally:
            self._retire()
        self.reads.add()
        self.splitter.bandwidth.record(self.sched_tenant(request), size)
        if owned:
            self.splitter.tracer.complete(request)
        return ReadResult(result.addr, result.data, user_tag,
                          result.corrected_bits)

    def write_page(self, addr: PhysAddr, data: bytes,
                   request: Optional[IORequest] = None):
        """Program via the shared card.

        With coalescing enabled the program is staged at the port's
        :class:`~repro.flash.coalesce.WriteCoalescer`: stripe-adjacent
        programs from the same tenant targeting the open write point
        merge into one multi-page command (one slot, one admission
        grant at the merged byte cost, one card command setup),
        strictly preserving NAND program order within every block.
        """
        request, owned = self._start(IOKind.WRITE, addr, len(data), request)
        self._rename()
        if self.write_coalescer is not None:
            yield self.write_coalescer.submit(addr, data, request)
            self.writes.add()
            if owned:
                self.splitter.tracer.complete(request)
            return
        yield from self._admit(request, cost=len(data))
        try:
            yield self.splitter.sim.process(
                self.splitter.card.write_page(addr, data, request=request))
        finally:
            self._retire()
        self.writes.add()
        self.splitter.bandwidth.record(self.sched_tenant(request), len(data))
        if owned:
            self.splitter.tracer.complete(request)

    def erase_block(self, addr: PhysAddr,
                    request: Optional[IORequest] = None):
        # An erase moves no payload but occupies the card far longer
        # than a page op; it is scheduled at one page of cost so a
        # tenant cannot spam cost-free erases past a fair-share policy,
        # while the bandwidth ledger records its true zero bytes.
        request, owned = self._start(IOKind.ERASE, addr, 0, request)
        self._rename()
        yield from self._admit(request, cost=self.splitter.page_size)
        try:
            yield self.splitter.sim.process(
                self.splitter.card.erase_block(addr, request=request))
        finally:
            self._retire()
        self.splitter.bandwidth.record(self.sched_tenant(request), 0)
        if owned:
            self.splitter.tracer.complete(request)


class FlashSplitter:
    """Fans one flash target out to several tag-renamed users.

    The target is anything exposing ``read_page``/``write_page``/
    ``erase_block`` generators — a single :class:`FlashCard` or a whole
    multi-card :class:`~repro.flash.device.StorageDevice`.

    ``fair_share`` bounds each port's in-flight commands so one user
    cannot exhaust the target's physical tag pool and starve the rest.

    ``policy`` (a name from :data:`repro.io.scheduler.POLICIES` or a
    policy instance) enables the shared admission stage: at most
    ``total_in_flight`` commands (default: the target's tag count) are
    outstanding across *all* ports, and when a slot frees the policy
    picks the next tenant.  ``tracer`` attaches end-to-end request
    tracing to every operation issued through any port.

    Every serviced operation is charged to its scheduling tenant in
    the :attr:`bandwidth` ledger (bytes per ``bandwidth_window_ns``
    window); :meth:`configure_tenant` programs per-tenant weighted-fair
    weights and token-bucket rates into the admission policy.
    """

    def __init__(self, sim: Simulator, card,
                 fair_share: Optional[int] = None,
                 policy=None, total_in_flight: Optional[int] = None,
                 tracer: Optional[RequestTracer] = None,
                 bandwidth_window_ns: int = 1_000_000,
                 coalesce: bool = False, coalesce_max_pages: int = 8):
        if coalesce and coalesce_max_pages < 2:
            raise ValueError(
                f"coalescing needs coalesce_max_pages >= 2, "
                f"got {coalesce_max_pages}")
        self.sim = sim
        self.card = card  # the flash target (card or device)
        self.fair_share = fair_share
        self.tracer = tracer
        self.coalesce = coalesce
        self.coalesce_max_pages = coalesce_max_pages
        self.ports: List[SplitterPort] = []
        self.bandwidth = BandwidthLedger(sim, window_ns=bandwidth_window_ns,
                                         name="splitter-bandwidth")
        #: tenant -> the raw QoS parameters programmed via
        #: :meth:`configure_tenant` (for reporting).
        self.tenant_qos: dict = {}
        self.admission: Optional[ScheduledResource] = None
        if policy is not None:
            capacity = total_in_flight or self.tag_count
            self.admission = ScheduledResource(
                sim, capacity=capacity, policy=policy,
                name="splitter-admission")

    def configure_tenant(self, tenant: str, weight: Optional[float] = None,
                         rate_mbps: Optional[float] = None,
                         burst_kb: Optional[float] = None) -> None:
        """Program one tenant's QoS parameters into the admission policy.

        ``weight`` feeds weighted fair share; ``rate_mbps`` (MB/s) and
        ``burst_kb`` (KiB) feed token-bucket rate limiting.  Policies
        that don't use a parameter ignore it, so the same configuration
        works under every discipline.  No-op (but still recorded) when
        no shared admission stage is enabled.
        """
        self.tenant_qos[tenant] = {
            "weight": weight, "rate_mbps": rate_mbps, "burst_kb": burst_kb}
        if self.admission is not None:
            rate = None if rate_mbps is None else rate_mbps * 1e6 / 1e9
            burst = None if burst_kb is None else burst_kb * 1024
            self.admission.configure_tenant(
                tenant, weight=weight, rate_bytes_per_ns=rate,
                burst_bytes=burst)

    @property
    def tag_count(self) -> int:
        return getattr(self.card, "tag_count", 128)

    @property
    def geometry(self):
        """The target's flash geometry (adjacency + page size source)."""
        return getattr(self.card, "geometry", DEFAULT_GEOMETRY)

    @property
    def page_size(self) -> int:
        geometry = getattr(self.card, "geometry", None)
        return getattr(geometry, "page_size", 8192)

    def coalescing_stats(self) -> dict:
        """Per-port read-coalescer counters (empty when coalescing off)."""
        return {port.tenant: port.coalescer.stats()
                for port in self.ports if port.coalescer is not None}

    def write_coalescing_stats(self) -> dict:
        """Per-port program-coalescer counters (empty when off)."""
        return {port.tenant: port.write_coalescer.stats()
                for port in self.ports
                if port.write_coalescer is not None}

    @property
    def in_flight(self) -> int:
        """Commands currently admitted across all ports."""
        if self.admission is not None:
            return self.admission.in_use
        return sum(port.in_flight for port in self.ports)

    def add_port(self, max_in_flight: Optional[int] = None,
                 tenant: Optional[str] = None, priority: int = 0,
                 deadline_ns: Optional[int] = None) -> SplitterPort:
        """Attach a new user; returns its private port."""
        limit = max_in_flight or self.fair_share or self.tag_count
        limit = min(limit, self.tag_count)
        port = SplitterPort(self, len(self.ports), limit, tenant=tenant,
                            priority=priority, deadline_ns=deadline_ns)
        self.ports.append(port)
        return port
