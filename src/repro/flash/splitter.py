"""Flash Interface Splitter: shared access with tag renaming.

Multiple hardware endpoints need the one card interface — "local in-store
processors, local host software over PCIe DMA, or remote in-store
processors over the network" (Section 3.1.2, Figure 3).  Each user gets a
:class:`SplitterPort` with its own private tag space; the splitter renames
user tags onto the card's physical tags and guarantees fairness by
capping how many physical tags one user may hold.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Counter, Resource, Simulator
from .controller import FlashCard, ReadResult
from .geometry import PhysAddr

__all__ = ["FlashSplitter", "SplitterPort"]


class SplitterPort:
    """One user's view of the card: an independently-tagged interface."""

    def __init__(self, splitter: "FlashSplitter", user_id: int,
                 max_in_flight: int):
        self.splitter = splitter
        self.user_id = user_id
        self._slots = Resource(splitter.sim, capacity=max_in_flight,
                               name=f"splitter-user{user_id}")
        self._next_user_tag = 0
        self.reads = Counter(f"user{user_id}-reads")
        self.writes = Counter(f"user{user_id}-writes")

    def _rename(self) -> int:
        """Allocate the next user-visible tag (monotonic per user)."""
        tag = self._next_user_tag
        self._next_user_tag += 1
        return tag

    def read_page(self, addr: PhysAddr):
        """Read via the shared card; returns :class:`ReadResult` whose tag
        is this user's renamed tag, not the card's physical tag."""
        user_tag = self._rename()
        yield self._slots.request()
        try:
            result = yield self.splitter.sim.process(
                self.splitter.card.read_page(addr))
        finally:
            self._slots.release()
        self.reads.add()
        return ReadResult(result.addr, result.data, user_tag,
                          result.corrected_bits)

    def write_page(self, addr: PhysAddr, data: bytes):
        yield self._slots.request()
        try:
            yield self.splitter.sim.process(
                self.splitter.card.write_page(addr, data))
        finally:
            self._slots.release()
        self.writes.add()

    def erase_block(self, addr: PhysAddr):
        yield self._slots.request()
        try:
            yield self.splitter.sim.process(
                self.splitter.card.erase_block(addr))
        finally:
            self._slots.release()


class FlashSplitter:
    """Fans one flash target out to several tag-renamed users.

    The target is anything exposing ``read_page``/``write_page``/
    ``erase_block`` generators — a single :class:`FlashCard` or a whole
    multi-card :class:`~repro.flash.device.StorageDevice`.

    ``fair_share`` bounds each port's in-flight commands so one user
    cannot exhaust the target's physical tag pool and starve the rest.
    """

    def __init__(self, sim: Simulator, card,
                 fair_share: Optional[int] = None):
        self.sim = sim
        self.card = card  # the flash target (card or device)
        self.fair_share = fair_share
        self.ports: List[SplitterPort] = []

    @property
    def tag_count(self) -> int:
        return getattr(self.card, "tag_count", 128)

    def add_port(self, max_in_flight: Optional[int] = None) -> SplitterPort:
        """Attach a new user; returns its private port."""
        limit = max_in_flight or self.fair_share or self.tag_count
        limit = min(limit, self.tag_count)
        port = SplitterPort(self, len(self.ports), limit)
        self.ports.append(port)
        return port
