"""Physical flash geometry and addressing.

BlueDBM exposes *raw* NAND addressing — buses, chips, blocks and pages —
instead of a flat logical block device (Section 3.1.1).  Everything above
the chip (controller, Flash Server, FTL, file system, the cluster's global
address space) speaks :class:`PhysAddr`.

The default geometry matches the paper's custom flash card: 512 GB per
card from 8 buses x 8 chips x 4096 blocks x 256 pages x 8 KB pages, two
cards per node (1 TB/node, Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["FlashGeometry", "PhysAddr", "DEFAULT_GEOMETRY"]


@dataclass(frozen=True)
class FlashGeometry:
    """Shape of one flash card.

    Attributes mirror the paper's custom card (Section 5.1).  All sizes in
    bytes.  The geometry is per *card*; a node has ``cards_per_node`` of
    them behind one storage device.
    """

    buses_per_card: int = 8
    chips_per_bus: int = 8
    blocks_per_chip: int = 4096
    pages_per_block: int = 256
    page_size: int = 8192
    cards_per_node: int = 2

    def __post_init__(self):
        for name in ("buses_per_card", "chips_per_bus", "blocks_per_chip",
                     "pages_per_block", "page_size", "cards_per_node"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    # -- counts ----------------------------------------------------------
    @property
    def pages_per_chip(self) -> int:
        return self.blocks_per_chip * self.pages_per_block

    @property
    def pages_per_bus(self) -> int:
        return self.chips_per_bus * self.pages_per_chip

    @property
    def pages_per_card(self) -> int:
        return self.buses_per_card * self.pages_per_bus

    @property
    def pages_per_node(self) -> int:
        return self.cards_per_node * self.pages_per_card

    @property
    def blocks_per_card(self) -> int:
        return (self.buses_per_card * self.chips_per_bus
                * self.blocks_per_chip)

    # -- capacities --------------------------------------------------------
    @property
    def card_bytes(self) -> int:
        return self.pages_per_card * self.page_size

    @property
    def node_bytes(self) -> int:
        return self.cards_per_node * self.card_bytes

    # -- address arithmetic -------------------------------------------------
    def linear_page(self, addr: "PhysAddr") -> int:
        """Node-local linear page number for ``addr`` (ignores node id)."""
        self.validate(addr)
        return (((addr.card * self.buses_per_card + addr.bus)
                 * self.chips_per_bus + addr.chip)
                * self.pages_per_chip
                + addr.block * self.pages_per_block
                + addr.page)

    def from_linear(self, linear: int, node: int = 0) -> "PhysAddr":
        """Inverse of :meth:`linear_page`.

        Consecutive linear pages stripe across pages within a block first;
        use :meth:`striped` for bus-interleaved layouts.
        """
        if not 0 <= linear < self.pages_per_node:
            raise ValueError(f"linear page {linear} out of range")
        page = linear % self.pages_per_block
        rest = linear // self.pages_per_block
        block = rest % self.blocks_per_chip
        rest //= self.blocks_per_chip
        chip = rest % self.chips_per_bus
        rest //= self.chips_per_bus
        bus = rest % self.buses_per_card
        card = rest // self.buses_per_card
        return PhysAddr(node=node, card=card, bus=bus, chip=chip,
                        block=block, page=page)

    def striped(self, index: int, node: int = 0) -> "PhysAddr":
        """Bus/chip-interleaved address for sequential index ``index``.

        Maps consecutive indices round-robin over every chip before
        advancing the page — *bus-fastest*, so even a short run of
        consecutive pages spans every bus (and both cards).  This is how
        a real controller stripes sequential data to expose parallelism
        (Section 3.1.1 "(ii) exposing all degrees of parallelism"):
        channel-first striping keeps all channels busy for any access
        run, where chip-first striping would serialize short runs on one
        bus.
        """
        if not 0 <= index < self.pages_per_node:
            raise ValueError(f"striped index {index} out of range")
        n_units = (self.cards_per_node * self.buses_per_card
                   * self.chips_per_bus)
        unit = index % n_units
        offset = index // n_units
        bus = unit % self.buses_per_card
        rest = unit // self.buses_per_card
        card = rest % self.cards_per_node
        chip = rest // self.cards_per_node
        block = offset // self.pages_per_block
        page = offset % self.pages_per_block
        return PhysAddr(node=node, card=card, bus=bus, chip=chip,
                        block=block, page=page)

    def striped_index(self, addr: "PhysAddr") -> int:
        """Inverse of :meth:`striped`: the sequential index of ``addr``.

        Two pages are *stripe-adjacent* — the unit the splitter's
        coalescing stage merges — exactly when their striped indices are
        consecutive: that is the order a controller lays out sequential
        data, so a sequential reader touches consecutive indices even
        though they interleave across buses and cards.
        """
        self.validate(addr)
        n_units = (self.cards_per_node * self.buses_per_card
                   * self.chips_per_bus)
        unit = (addr.bus + self.buses_per_card
                * (addr.card + self.cards_per_node * addr.chip))
        offset = addr.block * self.pages_per_block + addr.page
        return offset * n_units + unit

    def validate(self, addr: "PhysAddr") -> None:
        """Raise ValueError if ``addr`` exceeds this geometry."""
        if not 0 <= addr.card < self.cards_per_node:
            raise ValueError(f"card {addr.card} out of range")
        if not 0 <= addr.bus < self.buses_per_card:
            raise ValueError(f"bus {addr.bus} out of range")
        if not 0 <= addr.chip < self.chips_per_bus:
            raise ValueError(f"chip {addr.chip} out of range")
        if not 0 <= addr.block < self.blocks_per_chip:
            raise ValueError(f"block {addr.block} out of range")
        if not 0 <= addr.page < self.pages_per_block:
            raise ValueError(f"page {addr.page} out of range")

    def iter_block_pages(self, addr: "PhysAddr") -> Iterator["PhysAddr"]:
        """All page addresses within the block containing ``addr``."""
        for page in range(self.pages_per_block):
            yield PhysAddr(node=addr.node, card=addr.card, bus=addr.bus,
                           chip=addr.chip, block=addr.block, page=page)


@dataclass(frozen=True, order=True)
class PhysAddr:
    """A physical flash page address in the cluster's global address space.

    ``node`` selects the BlueDBM storage device; the remaining fields
    address raw NAND within it.  Frozen and ordered so addresses can key
    dicts and sort deterministically.
    """

    node: int = 0
    card: int = 0
    bus: int = 0
    chip: int = 0
    block: int = 0
    page: int = 0

    def __post_init__(self):
        # Addresses are built in every hot loop; OR-ing the fields is
        # negative iff any field is (two's complement), so the valid
        # case pays one comparison instead of six getattr calls.
        if (self.node | self.card | self.bus | self.chip
                | self.block | self.page) < 0:
            for name in ("node", "card", "bus", "chip", "block", "page"):
                if getattr(self, name) < 0:
                    raise ValueError(f"negative {name} in address")

    def block_addr(self) -> "PhysAddr":
        """Address of page 0 of this page's block (erase granularity)."""
        return PhysAddr(node=self.node, card=self.card, bus=self.bus,
                        chip=self.chip, block=self.block, page=0)

    def chip_key(self) -> tuple:
        """Hashable identity of the chip holding this page."""
        return (self.node, self.card, self.bus, self.chip)

    def bus_key(self) -> tuple:
        """Hashable identity of the bus holding this page."""
        return (self.node, self.card, self.bus)

    def at_node(self, node: int) -> "PhysAddr":
        """Same card-local address on a different node."""
        return PhysAddr(node=node, card=self.card, bus=self.bus,
                        chip=self.chip, block=self.block, page=self.page)

    def __str__(self) -> str:
        return (f"n{self.node}/c{self.card}/b{self.bus}/ch{self.chip}"
                f"/blk{self.block}/p{self.page}")


DEFAULT_GEOMETRY = FlashGeometry()
