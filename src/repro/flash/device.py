"""A node's storage device: multiple flash cards behind one interface.

Each BlueDBM node carries two custom flash cards (Section 5.1); the
storage device routes physical addresses to the right card and shares the
wear/bad-block/payload state so host-side flash management sees one
device, as the paper's software stack does.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..sim import Simulator
from .chip import ErrorModel, FlashTiming
from .controller import FlashCard
from .geometry import DEFAULT_GEOMETRY, FlashGeometry, PhysAddr
from .health import BadBlockTable, WearTracker
from .store import PageStore

__all__ = ["StorageDevice"]


class StorageDevice:
    """All flash cards of one node, with shared management state."""

    def __init__(self, sim: Simulator,
                 geometry: FlashGeometry = DEFAULT_GEOMETRY,
                 timing: Optional[FlashTiming] = None,
                 errors: Optional[ErrorModel] = None,
                 node: int = 0, tags_per_card: int = 128, seed: int = 0,
                 factory_bad_rate: float = 0.0, endurance: int = 3000):
        self.sim = sim
        self.geometry = geometry
        self.node = node
        self.store = PageStore(geometry)
        self.wear = WearTracker(endurance=endurance)
        self.badblocks = BadBlockTable(geometry,
                                       factory_bad_rate=factory_bad_rate,
                                       seed=seed)
        self.cards: List[FlashCard] = [
            FlashCard(sim, geometry=geometry, timing=timing, errors=errors,
                      wear=self.wear, badblocks=self.badblocks,
                      store=self.store, node=node, card=index,
                      tags=tags_per_card, seed=seed)
            for index in range(geometry.cards_per_node)
        ]
        # Optional repro.faults.FaultInjector shared by every chip.
        self.faults = None

    def install_faults(self, injector) -> None:
        """Install a fault injector on every chip of every card."""
        self.faults = injector
        for card in self.cards:
            for chip in card.chips.values():
                chip.faults = injector

    def _card(self, addr: PhysAddr) -> FlashCard:
        if addr.node != self.node:
            raise ValueError(
                f"{addr} is on node {addr.node}, not {self.node}")
        if not 0 <= addr.card < len(self.cards):
            raise ValueError(f"{addr} addresses a nonexistent card")
        return self.cards[addr.card]

    # -- routed operations (DES generators) ---------------------------------
    def read_page(self, addr: PhysAddr, request=None):
        result = yield self.sim.process(
            self._card(addr).read_page(addr, request=request))
        return result

    def read_pages(self, addrs, requests=None):
        """Multi-page command routed to one card (DES generator).

        A coalesced command is a single tagged operation on a single
        card, so every address must land on the same card — the
        splitter's coalescing stage never merges across that boundary.
        """
        if not addrs:
            return []
        cards = {addr.card for addr in addrs}
        if len(cards) > 1:
            raise ValueError(
                f"multi-page command spans cards {sorted(cards)}; "
                f"coalesced commands are per-card")
        results = yield self.sim.process(
            self._card(addrs[0]).read_pages(addrs, requests=requests))
        return results

    def program_pages(self, addrs, datas, requests=None):
        """Multi-page program command routed to one card (DES generator).

        Mirrors :meth:`read_pages`: a coalesced program is a single
        tagged operation on a single card, so every address must land
        on the same card.
        """
        if not addrs:
            return
        cards = {addr.card for addr in addrs}
        if len(cards) > 1:
            raise ValueError(
                f"multi-page command spans cards {sorted(cards)}; "
                f"coalesced commands are per-card")
        yield self.sim.process(
            self._card(addrs[0]).program_pages(addrs, datas,
                                               requests=requests))

    def write_page(self, addr: PhysAddr, data: bytes, request=None):
        yield self.sim.process(
            self._card(addr).write_page(addr, data, request=request))

    def erase_block(self, addr: PhysAddr, request=None):
        yield self.sim.process(
            self._card(addr).erase_block(addr, request=request))

    # -- aggregates ----------------------------------------------------------
    @property
    def tag_count(self) -> int:
        """Combined tag pool across cards (splitter fair-share sizing)."""
        return sum(card.tag_count for card in self.cards)

    @property
    def reads(self) -> int:
        return sum(card.reads.value for card in self.cards)

    @property
    def writes(self) -> int:
        return sum(card.writes.value for card in self.cards)

    @property
    def erases(self) -> int:
        return sum(card.erases.value for card in self.cards)

    @property
    def program_failures(self) -> int:
        return sum(card.program_failures.value for card in self.cards)

    @property
    def uncorrectable_reads(self) -> int:
        return sum(card.uncorrectable.value for card in self.cards)

    def peak_read_bandwidth(self) -> float:
        """Aggregate card ceiling: 2 x 1.2 GB/s with paper defaults."""
        return sum(card.peak_read_bandwidth() for card in self.cards)
