"""Raw NAND flash substrate.

Layers, bottom-up:

* :mod:`~repro.flash.geometry` — chips/buses/blocks/pages addressing
  (:class:`PhysAddr`), the cluster's global address space currency.
* :mod:`~repro.flash.store` — sparse page payload store (real bytes).
* :mod:`~repro.flash.ecc` — real SECDED codec (single-correct,
  double-detect per 64-bit word).
* :mod:`~repro.flash.health` — wear tracking and bad-block tables.
* :mod:`~repro.flash.chip` — per-die timing, NAND program/erase rules,
  wear-scaled bit-error injection.
* :mod:`~repro.flash.controller` — the tagged, out-of-order,
  error-corrected card controller (:class:`FlashCard`).
* :mod:`~repro.flash.coalesce` — the splitter's admission-side
  coalescing stage: stripe-adjacent page reads merge into multi-page
  commands (:class:`Coalescer`).
* :mod:`~repro.flash.splitter` — multi-user access with tag renaming.
* :mod:`~repro.flash.server` — Flash Server: in-order streaming interface
  plus the Address Translation Unit for file-handle access.
"""

from .chip import (
    BadBlockProgramError,
    EraseError,
    ErrorModel,
    FlashChip,
    FlashTiming,
    ProgramError,
    ProgramFailedError,
)
from .coalesce import Coalescer, WriteCoalescer, first_group, plan_groups
from .controller import (
    FlashCard,
    PartialReadError,
    ReadResult,
    UncorrectablePageError,
)
from .ecc import UncorrectableError
from .geometry import DEFAULT_GEOMETRY, FlashGeometry, PhysAddr
from .health import BadBlockTable, WearTracker
from .server import FileHandle, FlashServer
from .splitter import FlashSplitter, SplitterPort
from .store import PageStore

__all__ = [
    "FlashGeometry",
    "PhysAddr",
    "DEFAULT_GEOMETRY",
    "PageStore",
    "WearTracker",
    "BadBlockTable",
    "FlashTiming",
    "ErrorModel",
    "FlashChip",
    "ProgramError",
    "BadBlockProgramError",
    "ProgramFailedError",
    "EraseError",
    "FlashCard",
    "ReadResult",
    "UncorrectablePageError",
    "PartialReadError",
    "UncorrectableError",
    "FlashSplitter",
    "SplitterPort",
    "Coalescer",
    "WriteCoalescer",
    "first_group",
    "plan_groups",
    "FlashServer",
    "FileHandle",
]
