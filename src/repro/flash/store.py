"""Sparse page payload store: the *contents* of the simulated flash.

A 1 TB card obviously cannot be held in host RAM, and the bandwidth
experiments don't need payloads at all — only the applications do.  The
store therefore keeps real bytes only for pages something has written;
reads of untouched pages synthesize the erased pattern (0xFF, as real
NAND reads after erase).

ECC parity (see :mod:`repro.flash.ecc`) is computed on program and kept
alongside the data so the controller can genuinely correct injected bit
errors on read.

Pages are indexed by block so that block erase — the hot operation under
garbage collection — is O(pages in block), not O(pages in store).

Parity is computed *lazily*: real controllers encode in hardware for
free, but in the simulator SECDED encoding of every programmed page
would dominate run time, and the decoder only ever needs parity for the
small fraction of reads that take an injected bit error.  The lazily
computed parity is cached per page and always reflects the clean stored
data, so correction behaviour is identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import ecc
from .geometry import FlashGeometry, PhysAddr

__all__ = ["PageStore"]

_BlockKey = Tuple[int, int, int, int, int]  # node, card, bus, chip, block


class _Page:
    __slots__ = ("data", "parity")

    def __init__(self, data: bytes):
        self.data = data
        self.parity: Optional[bytes] = None


def _block_key(addr: PhysAddr) -> _BlockKey:
    return (addr.node, addr.card, addr.bus, addr.chip, addr.block)


class PageStore:
    """Maps :class:`PhysAddr` -> (data, parity) for programmed pages."""

    def __init__(self, geometry: FlashGeometry):
        self.geometry = geometry
        self._blocks: Dict[_BlockKey, Dict[int, _Page]] = {}
        self._count = 0
        self._erased_page = b"\xff" * geometry.page_size
        self._erased_parity: Optional[bytes] = None

    def __len__(self) -> int:
        return self._count

    def is_programmed(self, addr: PhysAddr) -> bool:
        block = self._blocks.get(_block_key(addr))
        return block is not None and addr.page in block

    def program(self, addr: PhysAddr, data: bytes) -> None:
        """Store ``data`` (padded with 0xFF to page size)."""
        page_size = self.geometry.page_size
        if len(data) > page_size:
            raise ValueError(
                f"data ({len(data)} B) exceeds page size ({page_size} B)")
        if len(data) < page_size:
            data = data + b"\xff" * (page_size - len(data))
        block = self._blocks.setdefault(_block_key(addr), {})
        if addr.page not in block:
            self._count += 1
        block[addr.page] = _Page(data)

    def _lookup(self, addr: PhysAddr) -> Optional[_Page]:
        block = self._blocks.get(_block_key(addr))
        if block is None:
            return None
        return block.get(addr.page)

    def read(self, addr: PhysAddr) -> Tuple[bytes, bytes]:
        """Return (data, parity); erased pattern if never programmed."""
        page = self._lookup(addr)
        if page is None:
            if self._erased_parity is None:
                self._erased_parity = ecc.encode_page(self._erased_page)
            return self._erased_page, self._erased_parity
        if page.parity is None:
            page.parity = ecc.encode_page(page.data)
        return page.data, page.parity

    def read_data(self, addr: PhysAddr) -> bytes:
        """Return just the page data (no parity computation)."""
        page = self._lookup(addr)
        return self._erased_page if page is None else page.data

    def parity(self, addr: PhysAddr) -> bytes:
        """Parity of the clean stored page (computed lazily, cached)."""
        return self.read(addr)[1]

    def erase_block(self, addr: PhysAddr) -> int:
        """Drop every programmed page in ``addr``'s block.

        Returns the number of pages discarded.
        """
        block = self._blocks.pop(_block_key(addr), None)
        if block is None:
            return 0
        self._count -= len(block)
        return len(block)
