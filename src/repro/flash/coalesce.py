"""Request coalescing at splitter admission: merge adjacent pages.

The card pays a per-command setup cost (tag allocation, command
issue/decode) for every operation, and every command occupies one
admission slot.  Under deep queues that overhead is the difference
between the advertised bandwidth and what a one-page-per-command
interface reaches — so the splitter grows a *coalescing stage*: page
reads arriving at a port are staged briefly, stripe-adjacent requests
from the same tenant merge into one multi-page command (at most
``max_pages``, never across a card boundary), and the merged command
takes one port slot, one admission grant whose *cost* is the combined
payload bytes, and one card command.

Adjacency is *stripe order* (:meth:`~repro.flash.geometry.FlashGeometry.
striped_index`): the order a controller lays out sequential data, so a
sequential reader's outstanding window merges into full-width commands
while a random reader's almost never does.

Grouping is greedy in arrival order and is factored into the pure
:func:`first_group` / :func:`plan_groups` helpers so property tests can
drive the planner without a simulator: groups partition their input
exactly, stay within one tenant and one card, take stripe-consecutive
pages only, and never exceed the page cap.

The merged command completes as a unit — one completion message per
command, like the tagged interface underneath — so a closed-loop
submitter gets its whole window back at once and refills it with the
next adjacent run, which is what keeps commands wide in steady state.
Commands from different tenants/groups still complete out of order with
respect to each other.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..io import BatchStageSpan, IORequest
from ..sim import Event, Simulator
from .controller import PartialReadError

__all__ = ["Coalescer", "first_group", "plan_groups"]

#: (tenant, card-identity, stripe index) — the only attributes the
#: grouping rule reads.
GroupKey = Tuple[str, object, int]


def first_group(keys: Sequence[GroupKey], max_pages: int) -> List[int]:
    """Positions forming the next merged command, greedy from the head.

    The head entry (position 0) always dispatches; later entries join
    in arrival order while each extends the run by exactly one stripe
    index, shares the head's tenant and card, and the group stays
    within ``max_pages``.
    """
    if max_pages < 1:
        raise ValueError(f"max_pages must be >= 1, got {max_pages}")
    if not keys:
        return []
    tenant, card, last = keys[0]
    group = [0]
    taken = {0}
    while len(group) < max_pages:
        for pos in range(1, len(keys)):
            if pos in taken:
                continue
            t, c, index = keys[pos]
            if t == tenant and c == card and index == last + 1:
                group.append(pos)
                taken.add(pos)
                last = index
                break
        else:
            break
    return group


def plan_groups(keys: Sequence[GroupKey],
                max_pages: int) -> List[List[int]]:
    """Partition a static arrival queue into merged commands.

    Repeatedly applies :func:`first_group` the way the dispatcher does
    when every entry is already staged; returns position groups in
    dispatch order.  This is the reference model the hypothesis
    property tests check the coalescer against.
    """
    remaining = list(range(len(keys)))
    groups: List[List[int]] = []
    while remaining:
        local = first_group([keys[pos] for pos in remaining], max_pages)
        groups.append([remaining[i] for i in local])
        remaining = [pos for i, pos in enumerate(remaining)
                     if i not in set(local)]
    return groups


class _Pending:
    """One staged page read awaiting merge + dispatch."""

    __slots__ = ("addr", "key", "request", "event", "enqueued_ns")

    def __init__(self, addr, key: GroupKey,
                 request: Optional[IORequest], event: Event,
                 enqueued_ns: int):
        self.addr = addr
        self.key = key
        self.request = request
        self.event = event
        self.enqueued_ns = enqueued_ns


class Coalescer:
    """The per-port coalescing stage in front of splitter admission.

    ``submit`` stages a page read and returns its completion event
    (value: the page's :class:`~repro.flash.controller.ReadResult`);
    a dispatcher process drains the staging queue, merging adjacent
    runs per :func:`first_group` and launching one admission + card
    command per group.  Everything that arrives within one simulator
    timestep is visible to the same dispatch round, so a queue-depth-N
    submitter's whole window can merge.
    """

    def __init__(self, port, max_pages: int):
        if max_pages < 2:
            raise ValueError(
                f"coalescing needs max_pages >= 2, got {max_pages}")
        self.port = port
        self.splitter = port.splitter
        self.sim: Simulator = port.splitter.sim
        self.max_pages = max_pages
        self._staging: Deque[_Pending] = deque()
        self._gate: Optional[Event] = None
        #: commands dispatched / pages carried / pages that rode a
        #: multi-page command (the amortized ones).
        self.commands = 0
        self.pages = 0
        self.merged_pages = 0
        self.sim.process(self._dispatch(),
                         name=f"coalescer-{port.tenant}")

    # -- intake ---------------------------------------------------------
    def submit(self, addr, request: Optional[IORequest]) -> Event:
        """Stage one page read; returns the event its result rides on."""
        geometry = self.splitter.geometry
        key: GroupKey = (self.port.sched_tenant(request),
                         (addr.node, addr.card),
                         geometry.striped_index(addr))
        pending = _Pending(addr, key, request, Event(self.sim),
                           self.sim.now)
        self._staging.append(pending)
        if self._gate is not None and not self._gate.triggered:
            self._gate.succeed()
        return pending.event

    @property
    def depth(self) -> int:
        """Requests currently staged (not yet dispatched)."""
        return len(self._staging)

    @property
    def pages_per_command(self) -> float:
        """Mean merged width over the coalescer's lifetime."""
        return self.pages / self.commands if self.commands else 0.0

    def stats(self) -> dict:
        return {"commands": self.commands, "pages": self.pages,
                "merged_pages": self.merged_pages,
                "pages_per_command": self.pages_per_command}

    # -- dispatch -------------------------------------------------------
    def _dispatch(self):
        """Forever: wait for staged work, carve a group, launch it."""
        sim = self.sim
        while True:
            if not self._staging:
                self._gate = sim.event()
                yield self._gate
                self._gate = None
            group = self._take_group()
            sim.process(self._execute(group),
                        name=f"coalesced-{self.port.tenant}")

    def _take_group(self) -> List[_Pending]:
        """Remove the next merged command's members from staging."""
        positions = first_group([p.key for p in self._staging],
                                self.max_pages)
        taken = set(positions)
        group = [self._staging[pos] for pos in positions]
        self._staging = deque(
            p for pos, p in enumerate(self._staging) if pos not in taken)
        return group

    def _execute(self, group: List[_Pending]):
        """Admit and run one merged command; settle every child.

        Admission (port slot + shared admission stage) charges the
        merged payload as one queue entry — ``cost`` in bytes, ``pages``
        wide — so WFQ/token-bucket arbitrate the real load while the
        command occupies a single slot.  QoS identity comes from the
        group head exactly as the unmerged path takes it from each
        request.
        """
        port = self.port
        splitter = self.splitter
        sim = self.sim
        head = group[0]
        tenant = head.key[0]
        priority = port.priority
        if head.request is not None and head.request.priority is not None:
            priority = head.request.priority
        deadline = None
        if head.request is not None and head.request.deadline_ns is not None:
            deadline = head.request.deadline_ns
        elif port.deadline_ns is not None:
            deadline = sim.now + port.deadline_ns
        size = splitter.page_size
        cost = size * len(group)
        requests = [p.request for p in group]
        admission = splitter.admission
        with BatchStageSpan(sim, requests, "queue"):
            yield port._slots.request(tenant=tenant, priority=priority,
                                      deadline_ns=deadline, cost=cost,
                                      pages=len(group))
            if admission is not None:
                try:
                    yield admission.request(tenant=tenant,
                                            priority=priority,
                                            deadline_ns=deadline,
                                            cost=cost, pages=len(group))
                except BaseException:
                    port._slots.release()
                    raise
        self.commands += 1
        self.pages += len(group)
        if len(group) > 1:
            self.merged_pages += len(group)
        try:
            results = yield sim.process(splitter.card.read_pages(
                [p.addr for p in group], requests=requests))
        except PartialReadError as exc:
            # Per-child fidelity: successful siblings keep their pages
            # (and their served bytes), only the bad ones fail — the
            # same outcome each would have seen unmerged.
            served = sum(1 for result in exc.results if result is not None)
            splitter.bandwidth.record(tenant, size * served)
            for pending, result, error in zip(group, exc.results,
                                              exc.errors):
                if error is not None:
                    pending.event.fail(error)
                else:
                    pending.event.succeed(result)
            return
        except BaseException as exc:
            # This process has no waiter: deliver the failure to every
            # child instead of crashing the simulation.
            for pending in group:
                pending.event.fail(exc)
            return
        finally:
            if admission is not None:
                admission.release()
            port._slots.release()
        splitter.bandwidth.record(tenant, cost)
        for pending, result in zip(group, results):
            pending.event.succeed(result)
