"""Request coalescing at splitter admission: merge adjacent pages.

The card pays a per-command setup cost (tag allocation, command
issue/decode) for every operation, and every command occupies one
admission slot.  Under deep queues that overhead is the difference
between the advertised bandwidth and what a one-page-per-command
interface reaches — so the splitter grows a *coalescing stage*: page
reads arriving at a port are staged briefly, stripe-adjacent requests
from the same tenant merge into one multi-page command (at most
``max_pages``, never across a card boundary), and the merged command
takes one port slot, one admission grant whose *cost* is the combined
payload bytes, and one card command.

Adjacency is *stripe order* (:meth:`~repro.flash.geometry.FlashGeometry.
striped_index`): the order a controller lays out sequential data, so a
sequential reader's outstanding window merges into full-width commands
while a random reader's almost never does.

Grouping is greedy in arrival order and is factored into the pure
:func:`first_group` / :func:`plan_groups` helpers so property tests can
drive the planner without a simulator: groups partition their input
exactly, stay within one tenant and one card, take stripe-consecutive
pages only, and never exceed the page cap.

The merged command completes as a unit — one completion message per
command, like the tagged interface underneath — so a closed-loop
submitter gets its whole window back at once and refills it with the
next adjacent run, which is what keeps commands wide in steady state.
Commands from different tenants/groups still complete out of order with
respect to each other.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..io import BatchStageSpan, IORequest
from ..sim import Event, Simulator
from .controller import PartialReadError

__all__ = ["Coalescer", "WriteCoalescer", "first_group", "plan_groups"]

#: (tenant, card-identity, stripe index) — the only attributes the
#: grouping rule reads.
GroupKey = Tuple[str, object, int]


def first_group(keys: Sequence[GroupKey], max_pages: int) -> List[int]:
    """Positions forming the next merged command, greedy from the head.

    The head entry (position 0) always dispatches; later entries join
    in arrival order while each extends the run by exactly one stripe
    index, shares the head's tenant and card, and the group stays
    within ``max_pages``.
    """
    if max_pages < 1:
        raise ValueError(f"max_pages must be >= 1, got {max_pages}")
    if not keys:
        return []
    tenant, card, last = keys[0]
    group = [0]
    taken = {0}
    while len(group) < max_pages:
        for pos in range(1, len(keys)):
            if pos in taken:
                continue
            t, c, index = keys[pos]
            if t == tenant and c == card and index == last + 1:
                group.append(pos)
                taken.add(pos)
                last = index
                break
        else:
            break
    return group


def plan_groups(keys: Sequence[GroupKey],
                max_pages: int) -> List[List[int]]:
    """Partition a static arrival queue into merged commands.

    Repeatedly applies :func:`first_group` the way the dispatcher does
    when every entry is already staged; returns position groups in
    dispatch order.  This is the reference model the hypothesis
    property tests check the coalescer against.
    """
    remaining = list(range(len(keys)))
    groups: List[List[int]] = []
    while remaining:
        local = first_group([keys[pos] for pos in remaining], max_pages)
        groups.append([remaining[i] for i in local])
        remaining = [pos for i, pos in enumerate(remaining)
                     if i not in set(local)]
    return groups


def _carve(staging, max_pages: int):
    """Take the next merged command's members off a staging deque.

    Returns ``(group, remaining)`` — the shared carve step of both
    coalescing stages (the grouping rule itself is :func:`first_group`).
    """
    positions = first_group([p.key for p in staging], max_pages)
    taken = set(positions)
    group = [staging[pos] for pos in positions]
    remaining = deque(p for pos, p in enumerate(staging)
                      if pos not in taken)
    return group, remaining


def _head_identity(port, request):
    """(priority, deadline) a merged command inherits from its head.

    The request's own QoS identity wins when it carries one — exactly
    as the unmerged path takes it from each request — falling back to
    the port's configured identity.
    """
    sim = port.splitter.sim
    priority = port.priority
    if request is not None and request.priority is not None:
        priority = request.priority
    deadline = None
    if request is not None and request.deadline_ns is not None:
        deadline = request.deadline_ns
    elif port.deadline_ns is not None:
        deadline = sim.now + port.deadline_ns
    return priority, deadline


class _Pending:
    """One staged page read awaiting merge + dispatch."""

    __slots__ = ("addr", "key", "request", "event", "enqueued_ns")

    def __init__(self, addr, key: GroupKey,
                 request: Optional[IORequest], event: Event,
                 enqueued_ns: int):
        self.addr = addr
        self.key = key
        self.request = request
        self.event = event
        self.enqueued_ns = enqueued_ns


class Coalescer:
    """The per-port coalescing stage in front of splitter admission.

    ``submit`` stages a page read and returns its completion event
    (value: the page's :class:`~repro.flash.controller.ReadResult`);
    a dispatcher process drains the staging queue, merging adjacent
    runs per :func:`first_group` and launching one admission + card
    command per group.  Everything that arrives within one simulator
    timestep is visible to the same dispatch round, so a queue-depth-N
    submitter's whole window can merge.
    """

    def __init__(self, port, max_pages: int):
        if max_pages < 2:
            raise ValueError(
                f"coalescing needs max_pages >= 2, got {max_pages}")
        self.port = port
        self.splitter = port.splitter
        self.sim: Simulator = port.splitter.sim
        self.max_pages = max_pages
        self._staging: Deque[_Pending] = deque()
        self._gate: Optional[Event] = None
        #: commands dispatched / pages carried / pages that rode a
        #: multi-page command (the amortized ones).
        self.commands = 0
        self.pages = 0
        self.merged_pages = 0
        self.sim.process(self._dispatch(),
                         name=f"coalescer-{port.tenant}")

    # -- intake ---------------------------------------------------------
    def submit(self, addr, request: Optional[IORequest]) -> Event:
        """Stage one page read; returns the event its result rides on."""
        geometry = self.splitter.geometry
        key: GroupKey = (self.port.sched_tenant(request),
                         (addr.node, addr.card),
                         geometry.striped_index(addr))
        pending = _Pending(addr, key, request, Event(self.sim),
                           self.sim.now)
        self._staging.append(pending)
        if self._gate is not None and not self._gate.triggered:
            self._gate.succeed()
        return pending.event

    @property
    def depth(self) -> int:
        """Requests currently staged (not yet dispatched)."""
        return len(self._staging)

    @property
    def pages_per_command(self) -> float:
        """Mean merged width over the coalescer's lifetime."""
        return self.pages / self.commands if self.commands else 0.0

    def stats(self) -> dict:
        return {"commands": self.commands, "pages": self.pages,
                "merged_pages": self.merged_pages,
                "pages_per_command": self.pages_per_command}

    # -- dispatch -------------------------------------------------------
    def _dispatch(self):
        """Forever: wait for staged work, carve a group, launch it."""
        sim = self.sim
        while True:
            if not self._staging:
                self._gate = sim.event()
                yield self._gate
                self._gate = None
            group = self._take_group()
            sim.process(self._execute(group))

    def _take_group(self) -> List[_Pending]:
        """Remove the next merged command's members from staging."""
        group, self._staging = _carve(self._staging, self.max_pages)
        return group

    def _execute(self, group: List[_Pending]):
        """Admit and run one merged command; settle every child.

        Admission (port slot + shared admission stage) charges the
        merged payload as one queue entry — ``cost`` in bytes, ``pages``
        wide — so WFQ/token-bucket arbitrate the real load while the
        command occupies a single slot.  QoS identity comes from the
        group head exactly as the unmerged path takes it from each
        request.
        """
        port = self.port
        splitter = self.splitter
        sim = self.sim
        head = group[0]
        tenant = head.key[0]
        priority, deadline = _head_identity(port, head.request)
        size = splitter.page_size
        cost = size * len(group)
        requests = [p.request for p in group]
        admission = splitter.admission
        with BatchStageSpan(sim, requests, "queue"):
            yield port._slots.request(tenant=tenant, priority=priority,
                                      deadline_ns=deadline, cost=cost,
                                      pages=len(group))
            if admission is not None:
                try:
                    yield admission.request(tenant=tenant,
                                            priority=priority,
                                            deadline_ns=deadline,
                                            cost=cost, pages=len(group))
                except BaseException:
                    port._slots.release()
                    raise
        self.commands += 1
        self.pages += len(group)
        if len(group) > 1:
            self.merged_pages += len(group)
        try:
            results = yield sim.process(splitter.card.read_pages(
                [p.addr for p in group], requests=requests))
        except PartialReadError as exc:
            # Per-child fidelity: successful siblings keep their pages
            # (and their served bytes), only the bad ones fail — the
            # same outcome each would have seen unmerged.
            served = sum(1 for result in exc.results if result is not None)
            splitter.bandwidth.record(tenant, size * served)
            for pending, result, error in zip(group, exc.results,
                                              exc.errors):
                if error is not None:
                    pending.event.fail(error)
                else:
                    pending.event.succeed(result)
            return
        except BaseException as exc:
            # This process has no waiter: deliver the failure to every
            # child instead of crashing the simulation.
            for pending in group:
                pending.event.fail(exc)
            return
        finally:
            if admission is not None:
                admission.release()
            port._slots.release()
        splitter.bandwidth.record(tenant, cost)
        for pending, result in zip(group, results):
            pending.event.succeed(result)


class _PendingWrite:
    """One staged page program awaiting merge + dispatch."""

    __slots__ = ("addr", "data", "key", "request", "event", "enqueued_ns")

    def __init__(self, addr, data: bytes, key: GroupKey,
                 request: Optional[IORequest], event: Event,
                 enqueued_ns: int):
        self.addr = addr
        self.data = data
        self.key = key
        self.request = request
        self.event = event
        self.enqueued_ns = enqueued_ns


class WriteCoalescer:
    """The program-path coalescing stage in front of splitter admission.

    Same grouping rule as the read :class:`Coalescer` — greedy
    :func:`first_group` runs of stripe-adjacent, same-tenant,
    same-card pages — but merged into one multi-page
    :meth:`~repro.flash.controller.FlashCard.program_pages` command.
    Because groups are *strict* ``+1`` striped-index runs taken off the
    open write point, a merged command can never jump across an
    already-programmed page nor reorder programs within a block: the
    run programs in striped order, which is non-decreasing page order
    on every chip (and :meth:`FlashCard.program_pages` re-checks both
    rules before touching the card).

    Dispatch pacing differs from the read coalescer: program commands
    occupy a port slot for ``t_prog`` (hundreds of µs), so a group is
    carved only while this stage holds fewer than the port's slot cap
    of its own commands.  Writes arriving while every slot is busy —
    the normal state of a program burst — therefore *accumulate* in
    staging and merge when a slot frees, which is what keeps program
    commands wide even though host-side transfers stagger arrivals.
    """

    def __init__(self, port, max_pages: int):
        if max_pages < 2:
            raise ValueError(
                f"coalescing needs max_pages >= 2, got {max_pages}")
        self.port = port
        self.splitter = port.splitter
        self.sim: Simulator = port.splitter.sim
        self.max_pages = max_pages
        self._staging: Deque[_PendingWrite] = deque()
        self._gate: Optional[Event] = None
        self._slot_gate: Optional[Event] = None
        self._inflight = 0
        #: commands dispatched / pages carried / pages that rode a
        #: multi-page command (the amortized ones).
        self.commands = 0
        self.pages = 0
        self.merged_pages = 0
        self.sim.process(self._dispatch(),
                         name=f"write-coalescer-{port.tenant}")

    # -- intake ---------------------------------------------------------
    def submit(self, addr, data: bytes,
               request: Optional[IORequest]) -> Event:
        """Stage one page program; returns its completion event."""
        geometry = self.splitter.geometry
        key: GroupKey = (self.port.sched_tenant(request),
                         (addr.node, addr.card),
                         geometry.striped_index(addr))
        pending = _PendingWrite(addr, data, key, request, Event(self.sim),
                                self.sim.now)
        # Staging time is queueing: the dispatcher holds programs here
        # while the port's slots are busy, exactly where the uncoalesced
        # path would have waited on the slot itself — charge it to the
        # same stage so on/off traces stay comparable.
        if request:
            request.enter("queue", self.sim.now)
        self._staging.append(pending)
        if self._gate is not None and not self._gate.triggered:
            self._gate.succeed()
        return pending.event

    @property
    def depth(self) -> int:
        """Programs currently staged (not yet dispatched)."""
        return len(self._staging)

    @property
    def pages_per_command(self) -> float:
        """Mean merged width over the coalescer's lifetime."""
        return self.pages / self.commands if self.commands else 0.0

    def stats(self) -> dict:
        return {"commands": self.commands, "pages": self.pages,
                "merged_pages": self.merged_pages,
                "pages_per_command": self.pages_per_command}

    # -- dispatch -------------------------------------------------------
    def _dispatch(self):
        """Forever: wait for staged work and a slot's worth of headroom,
        carve a group, launch it."""
        sim = self.sim
        while True:
            if not self._staging:
                self._gate = sim.event()
                yield self._gate
                self._gate = None
            while self._inflight >= self.port.max_in_flight:
                self._slot_gate = sim.event()
                yield self._slot_gate
                self._slot_gate = None
            group = self._take_group()
            self._inflight += 1
            sim.process(self._execute(group))

    def _take_group(self) -> List[_PendingWrite]:
        """Remove the next merged command's members from staging."""
        group, self._staging = _carve(self._staging, self.max_pages)
        now = self.sim.now
        for pending in group:
            if pending.request:
                pending.request.exit("queue", now)
        return group

    def _retired(self) -> None:
        self._inflight -= 1
        if self._slot_gate is not None and not self._slot_gate.triggered:
            self._slot_gate.succeed()

    def _execute(self, group: List[_PendingWrite]):
        """Admit and run one merged program command; settle every child.

        Admission mirrors the read coalescer exactly: the merged
        payload is one queue entry — ``cost`` in bytes, ``pages`` wide
        — with the QoS identity of the group head.
        """
        port = self.port
        splitter = self.splitter
        sim = self.sim
        head = group[0]
        tenant = head.key[0]
        priority, deadline = _head_identity(port, head.request)
        cost = sum(len(p.data) for p in group)
        requests = [p.request for p in group]
        admission = splitter.admission
        try:
            with BatchStageSpan(sim, requests, "queue"):
                yield port._slots.request(tenant=tenant, priority=priority,
                                          deadline_ns=deadline, cost=cost,
                                          pages=len(group))
                if admission is not None:
                    try:
                        yield admission.request(tenant=tenant,
                                                priority=priority,
                                                deadline_ns=deadline,
                                                cost=cost,
                                                pages=len(group))
                    except BaseException:
                        port._slots.release()
                        raise
        except BaseException as exc:
            self._retired()
            for pending in group:
                pending.event.fail(exc)
            return
        self.commands += 1
        self.pages += len(group)
        if len(group) > 1:
            self.merged_pages += len(group)
        try:
            yield sim.process(splitter.card.program_pages(
                [p.addr for p in group], [p.data for p in group],
                requests=requests))
        except BaseException as exc:
            # This process has no waiter: deliver the failure to every
            # child instead of crashing the simulation.
            for pending in group:
                pending.event.fail(exc)
            return
        finally:
            if admission is not None:
                admission.release()
            port._slots.release()
            self._retired()
        splitter.bandwidth.record(tenant, cost)
        for pending in group:
            pending.event.succeed(None)
