"""Per-chip NAND timing, semantics, and bit-error injection.

A chip (die) executes one operation at a time: page read (~50 µs — the
paper's "flash operations can have latencies of 50 µs or more"), page
program, or block erase.  The chip enforces real NAND rules — no
reprogramming a page without an erase — and injects bit errors whose rate
grows with block wear, which the controller's ECC then corrects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..sim import Resource, Simulator, units
from .geometry import FlashGeometry, PhysAddr
from .health import BadBlockTable, WearTracker
from .store import PageStore

__all__ = ["FlashTiming", "ErrorModel", "FlashChip", "ProgramError",
           "ProgramFailedError", "EraseError"]


class ProgramError(Exception):
    """Illegal program operation (e.g. page not erased first)."""


class BadBlockProgramError(ProgramError):
    """Program rejected because the target block is marked bad.

    A :class:`ProgramError` subclass, but recoverable: a read can mark
    a block grown-bad *while* a writer already holds an allocated page
    in it, so the write path treats this like a failed program —
    retire the page, rewrite elsewhere — rather than a caller bug.
    """


class ProgramFailedError(Exception):
    """A legal program failed in the array (injected NAND fault).

    Distinct from :class:`ProgramError` (an illegal operation — a
    caller bug): this is the hardware failing honest work.  The page is
    consumed — NAND cannot retry a program in place — so recovery means
    rewriting to a *fresh* page and treating the block as suspect.
    """


class EraseError(Exception):
    """Erase failed; the block must be retired."""


@dataclass(frozen=True)
class FlashTiming:
    """NAND and card-internal timing parameters.

    Defaults reproduce the paper's card: 50 µs reads, 8 buses sharing
    1.2 GB/s per card (0.15 B/ns per bus), and a 4-lane aurora chip-to-host
    link at 3.3 GB/s with 0.5 µs latency (Section 5.1).
    """

    t_read_ns: int = 50 * units.US
    t_prog_ns: int = 300 * units.US
    t_erase_ns: int = 3 * units.MS
    bus_bytes_per_ns: float = 0.15       # 150 MB/s per bus x 8 = 1.2 GB/s
    aurora_bytes_per_ns: float = 3.3     # 3.3 GB/s card <-> host FPGA
    aurora_latency_ns: int = 500         # 0.5 us
    cmd_overhead_ns: int = 200           # command issue/decode

    def __post_init__(self):
        if self.t_read_ns <= 0 or self.t_prog_ns <= 0 or self.t_erase_ns <= 0:
            raise ValueError("flash op times must be positive")
        if self.bus_bytes_per_ns <= 0 or self.aurora_bytes_per_ns <= 0:
            raise ValueError("bandwidths must be positive")


@dataclass(frozen=True)
class ErrorModel:
    """Wear-dependent bit-error injection.

    ``page_error_prob`` is the probability a fresh page read contains a
    (correctable) single-bit flip; it grows linearly up to
    ``worn_multiplier`` x at rated endurance.  A small fraction of error
    events are double flips within one 64-bit word, which SECDED can only
    detect — exercising the grown-bad-block path.
    """

    page_error_prob: float = 0.0
    worn_multiplier: float = 20.0
    double_error_fraction: float = 0.02

    def __post_init__(self):
        if not 0.0 <= self.page_error_prob <= 1.0:
            raise ValueError("page_error_prob must be in [0, 1]")
        if not 0.0 <= self.double_error_fraction <= 1.0:
            raise ValueError("double_error_fraction must be in [0, 1]")

    def flips_for_read(self, wear_fraction: float,
                       rng: random.Random) -> int:
        """Number of bit flips to inject into this page read (0, 1, or 2)."""
        prob = self.page_error_prob * (
            1.0 + (self.worn_multiplier - 1.0) * min(1.0, wear_fraction))
        if prob <= 0.0 or rng.random() >= min(1.0, prob):
            return 0
        if rng.random() < self.double_error_fraction:
            return 2
        return 1


class FlashChip:
    """One NAND die: exclusive busy state plus functional page semantics."""

    def __init__(self, sim: Simulator, geometry: FlashGeometry,
                 timing: FlashTiming, store: PageStore, wear: WearTracker,
                 errors: ErrorModel, rng: random.Random,
                 node: int, card: int, bus: int, chip: int):
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.store = store
        self.wear = wear
        self.errors = errors
        self.rng = rng
        self.node = node
        self.card = card
        self.bus = bus
        self.chip = chip
        self.busy = Resource(sim, capacity=1,
                             name=f"chip-n{node}c{card}b{bus}ch{chip}")
        # Pages programmed since last erase, per block (NAND write rule).
        self._programmed: Dict[int, Set[int]] = {}
        # Optional fault injector (repro.faults.FaultInjector); None by
        # default — every consult below is gated on it, so fault-free
        # runs take no extra RNG draws and stay byte-identical.
        self.faults = None

    def _owns(self, addr: PhysAddr) -> bool:
        return (addr.node == self.node and addr.card == self.card
                and addr.bus == self.bus and addr.chip == self.chip)

    def _check(self, addr: PhysAddr) -> None:
        if not self._owns(addr):
            raise ValueError(f"{addr} not on chip {self.chip} "
                             f"(bus {self.bus}, card {self.card})")
        self.geometry.validate(addr)

    # -- operations (DES generators; caller composes with bus transfer) ----
    def read(self, addr: PhysAddr):
        """Array read: chip busy for t_read; returns (data, parity, flips).

        ``flips`` is the number of injected error bits; the raw (possibly
        corrupted) data is returned for the controller's ECC to fix.
        """
        self._check(addr)
        yield self.busy.request()
        try:
            yield self.sim.timeout(self.timing.t_read_ns)
        finally:
            self.busy.release()
        data = self.store.read_data(addr)
        flips = self.errors.flips_for_read(self.wear.wear_fraction(addr),
                                           self.rng)
        if self.faults is not None:
            # Read-disturb / wear-out injection: may elevate to a
            # double flip (detectable-but-uncorrectable for SECDED).
            flips = self.faults.read_flips(
                addr, self.wear.wear_fraction(addr), flips)
        parity = None
        if flips:
            # Parity of the *clean* page, as the controller's decoder
            # would have from the on-die spare area.
            parity = self.store.parity(addr)
            data = self._flip_bits(data, flips)
        return data, parity, flips

    def program(self, addr: PhysAddr, data: bytes):
        """Page program: rejects reprogramming without erase.

        Only the no-reprogram rule is enforced here.  The in-block
        *order* rule (ascending pages since erase) is checked per
        command by :meth:`~repro.flash.controller.FlashCard.
        program_pages` and preserved *across* commands by the write
        path that owns allocation (:class:`~repro.volume.
        LogicalVolume` gates same-block programs into allocation
        order); raw physical access may program a block's free pages
        in any order, which real NAND would forbid but this model
        deliberately permits for address-pattern experiments.
        """
        self._check(addr)
        programmed = self._programmed.setdefault(addr.block, set())
        if addr.page in programmed:
            raise ProgramError(
                f"page {addr} already programmed since last erase")
        yield self.busy.request()
        try:
            yield self.sim.timeout(self.timing.t_prog_ns)
        finally:
            self.busy.release()
        if self.faults is not None and self.faults.program_fails(
                addr, self.wear.erase_count(addr), self.sim.now):
            # The program time is billed and the page is consumed (no
            # in-place retry on NAND), but the array holds no data.
            programmed.add(addr.page)
            raise ProgramFailedError(f"program failed at {addr}")
        self.store.program(addr, data)
        programmed.add(addr.page)

    def erase(self, addr: PhysAddr):
        """Block erase: clears contents, ages the block.

        Raises :class:`EraseError` once the block exceeds rated endurance
        (the controller should then mark it grown-bad).
        """
        self._check(addr)
        yield self.busy.request()
        try:
            yield self.sim.timeout(self.timing.t_erase_ns)
        finally:
            self.busy.release()
        count = self.wear.record_erase(addr)
        if self.faults is not None and self.faults.erase_fails(
                addr, count, self.sim.now):
            # Injected erase failure: the block keeps its old contents
            # (and its read-disturb clock) and must be retired.
            raise EraseError(f"erase failed at {addr.block_addr()}")
        self.store.erase_block(addr)
        self._programmed.pop(addr.block, None)
        if self.faults is not None:
            self.faults.note_erase(addr)
        if count > self.wear.endurance:
            raise EraseError(
                f"block {addr.block_addr()} exceeded endurance "
                f"({count} > {self.wear.endurance})")

    # -- helpers ------------------------------------------------------------
    def _flip_bits(self, data: bytes, flips: int) -> bytes:
        """Flip ``flips`` distinct bits; doubles land in one 64-bit word so
        they are detectable-but-uncorrectable for SECDED."""
        corrupted = bytearray(data)
        first_bit = self.rng.randrange(len(data) * 8)
        corrupted[first_bit // 8] ^= 1 << (first_bit % 8)
        if flips >= 2:
            word = (first_bit // 64) * 64
            second_bit = first_bit
            while second_bit == first_bit:
                second_bit = word + self.rng.randrange(64)
            corrupted[second_bit // 8] ^= 1 << (second_bit % 8)
        return bytes(corrupted)

    def is_page_programmed(self, addr: PhysAddr) -> bool:
        programmed = self._programmed.get(addr.block)
        return programmed is not None and addr.page in programmed
