"""Bit-error-correcting code: extended Hamming SECDED over 64-bit words.

The paper's Artix-7 flash controller presents "a logical error-free access
into flash" by running ECC next to the chips (Section 5.1, Table 1's ECC
Decoder/Encoder rows).  We implement a real single-error-correct /
double-error-detect code so the simulator genuinely corrects the bit
errors the chip model injects, rather than pretending.

Layout: data is processed in 8-byte (64-bit) words; each word gets 8
parity bits (7 Hamming + 1 overall), i.e. a (72, 64) code with 12.5 %
overhead — in the same family as the BCH codes real controllers use.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "SECDED_WORD_BYTES",
    "encode_word",
    "decode_word",
    "encode_page",
    "decode_page",
    "parity_bytes_for",
    "UncorrectableError",
]

SECDED_WORD_BYTES = 8
_DATA_BITS = 64
_HAMMING_BITS = 7  # positions 1..127 cover 64 data bits with 7 checks
_CODE_BITS = _DATA_BITS + _HAMMING_BITS  # 71, +1 overall parity -> 72


class UncorrectableError(Exception):
    """A codeword had >=2 bit errors: detected but not correctable."""


def _build_positions() -> List[int]:
    """Codeword bit positions (1-based) that hold data bits.

    In a Hamming code, positions that are powers of two hold parity; all
    other positions hold data, in order.
    """
    positions = []
    pos = 1
    while len(positions) < _DATA_BITS:
        if pos & (pos - 1) != 0:  # not a power of two
            positions.append(pos)
        pos += 1
    return positions


_DATA_POSITIONS = _build_positions()
_PARITY_POSITIONS = [1 << i for i in range(_HAMMING_BITS)]

# Precompute, for each parity bit, the mask of *data-bit indices* it covers.
_PARITY_DATA_MASKS = []
for _p in _PARITY_POSITIONS:
    mask = 0
    for _i, _pos in enumerate(_DATA_POSITIONS):
        if _pos & _p:
            mask |= 1 << _i
    _PARITY_DATA_MASKS.append(mask)

# Map from codeword position -> data bit index (for correction).
_POS_TO_DATA_INDEX = {pos: i for i, pos in enumerate(_DATA_POSITIONS)}


def _parity64(value: int) -> int:
    """Parity (XOR of all bits) of a 64-bit integer."""
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def encode_word(data: int) -> int:
    """Compute the 8 parity bits for a 64-bit data word.

    Returns a byte: bits 0-6 are Hamming checks, bit 7 is overall parity
    of data+checks (the SECDED extension).
    """
    if not 0 <= data < (1 << 64):
        raise ValueError("data word out of 64-bit range")
    parity = 0
    for i, mask in enumerate(_PARITY_DATA_MASKS):
        parity |= _parity64(data & mask) << i
    overall = _parity64(data) ^ _parity64(parity)
    return parity | (overall << 7)


def decode_word(data: int, parity: int) -> Tuple[int, int]:
    """Correct up to one bit error in (data, parity); detect two.

    Returns ``(corrected_data, n_corrected)``.  Raises
    :class:`UncorrectableError` on a detected double error.
    """
    if not 0 <= data < (1 << 64):
        raise ValueError("data word out of 64-bit range")
    if not 0 <= parity < (1 << 8):
        raise ValueError("parity byte out of range")
    stored_hamming = parity & 0x7F
    stored_overall = (parity >> 7) & 1

    syndrome = 0
    for i, mask in enumerate(_PARITY_DATA_MASKS):
        if _parity64(data & mask) != ((stored_hamming >> i) & 1):
            syndrome |= 1 << i
    overall_now = _parity64(data) ^ _parity64(stored_hamming)
    overall_error = overall_now != stored_overall

    if syndrome == 0 and not overall_error:
        return data, 0
    if syndrome == 0 and overall_error:
        # The overall parity bit itself flipped; data is intact.
        return data, 1
    if overall_error:
        # Single error at codeword position `syndrome`.
        if syndrome in _POS_TO_DATA_INDEX:
            data ^= 1 << _POS_TO_DATA_INDEX[syndrome]
        # else: the flipped bit was a parity bit; data is intact.
        return data, 1
    # Non-zero syndrome with clean overall parity => double error.
    raise UncorrectableError(f"double bit error (syndrome {syndrome:#x})")


def parity_bytes_for(page_size: int) -> int:
    """Bytes of parity needed to protect a page of ``page_size`` bytes."""
    if page_size % SECDED_WORD_BYTES != 0:
        raise ValueError(
            f"page size {page_size} not a multiple of {SECDED_WORD_BYTES}")
    return page_size // SECDED_WORD_BYTES


def encode_page(data: bytes) -> bytes:
    """Parity bytes for a full page (one byte per 64-bit word)."""
    if len(data) % SECDED_WORD_BYTES != 0:
        raise ValueError(
            f"page length {len(data)} not a multiple of {SECDED_WORD_BYTES}")
    out = bytearray(len(data) // SECDED_WORD_BYTES)
    for i in range(len(out)):
        word = int.from_bytes(
            data[i * SECDED_WORD_BYTES:(i + 1) * SECDED_WORD_BYTES],
            "little")
        out[i] = encode_word(word)
    return bytes(out)


def decode_page(data: bytes, parity: bytes) -> Tuple[bytes, int]:
    """Correct a full page; returns (corrected_data, total_bits_corrected).

    Raises :class:`UncorrectableError` if any word has a double error.
    """
    if len(data) != len(parity) * SECDED_WORD_BYTES:
        raise ValueError("data/parity length mismatch")
    corrected = bytearray(data)
    total = 0
    for i, pbyte in enumerate(parity):
        start = i * SECDED_WORD_BYTES
        word = int.from_bytes(data[start:start + SECDED_WORD_BYTES], "little")
        fixed, n = decode_word(word, pbyte)
        if n:
            corrected[start:start + SECDED_WORD_BYTES] = fixed.to_bytes(
                SECDED_WORD_BYTES, "little")
            total += n
    return bytes(corrected), total
