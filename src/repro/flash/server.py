"""Flash Server: in-order page interface + Address Translation Unit.

The raw card interface is out-of-order and interleaved, which is awkward
for in-store processor developers, so BlueDBM offers "an optional Flash
Server module ... [that] converts the out-of-order and interleaved flash
interface into multiple simple in-order request/response interfaces using
page buffers.  It also contains an Address Translation Unit that maps file
handles to incoming streams of physical addresses from the host"
(Section 3.1.2).

``queue_depth`` page buffers let the server keep many tagged reads in
flight while presenting strict FIFO completion to its user — the
completion-buffer pattern the paper describes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..io import IOKind, IORequest
from ..sim import Simulator, Store
from .controller import ReadResult
from .geometry import PhysAddr
from .splitter import SplitterPort

__all__ = ["FlashServer", "FileHandle"]


class FileHandle:
    """A file registered with the Address Translation Unit.

    The host file system resolves a file into its physical page extents
    (Section 4, step (1)) and installs them here; in-store processors then
    address the file by (handle, page offset).
    """

    __slots__ = ("handle_id", "name", "extents")

    def __init__(self, handle_id: int, name: str,
                 extents: Sequence[PhysAddr]):
        self.handle_id = handle_id
        self.name = name
        self.extents = list(extents)

    @property
    def num_pages(self) -> int:
        return len(self.extents)

    def translate(self, page_offset: int) -> PhysAddr:
        if not 0 <= page_offset < len(self.extents):
            raise IndexError(
                f"page offset {page_offset} out of range for "
                f"{self.name!r} ({len(self.extents)} pages)")
        return self.extents[page_offset]


class FlashServer:
    """In-order request/response flash access for in-store processors."""

    def __init__(self, sim: Simulator, port: SplitterPort,
                 queue_depth: int = 16):
        if queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {queue_depth}")
        self.sim = sim
        self.port = port
        self.queue_depth = queue_depth
        self._files: Dict[int, FileHandle] = {}
        self._next_handle = 0

    # -- Address Translation Unit ------------------------------------------
    def register_file(self, name: str,
                      extents: Sequence[PhysAddr]) -> FileHandle:
        """Install a file's physical extents; returns its handle."""
        handle = FileHandle(self._next_handle, name, extents)
        self._files[handle.handle_id] = handle
        self._next_handle += 1
        return handle

    def lookup(self, handle_id: int) -> FileHandle:
        if handle_id not in self._files:
            raise KeyError(f"unknown file handle {handle_id}")
        return self._files[handle_id]

    def translate(self, handle_id: int, page_offset: int) -> PhysAddr:
        return self.lookup(handle_id).translate(page_offset)

    @property
    def tracer(self):
        """The request tracer attached to the underlying splitter."""
        return self.port.splitter.tracer

    # -- in-order access -----------------------------------------------------
    def read_page(self, addr: PhysAddr, request: Optional[IORequest] = None):
        """Single in-order read (blocking request/response)."""
        result = yield self.sim.process(
            self.port.read_page(addr, request=request))
        return result

    def read_file_page(self, handle_id: int, page_offset: int,
                       request: Optional[IORequest] = None):
        """Read one page of a registered file by (handle, offset)."""
        addr = self.translate(handle_id, page_offset)
        result = yield self.sim.process(
            self.port.read_page(addr, request=request))
        return result

    def _stream_read(self, addr: PhysAddr, request: Optional[IORequest]):
        """One stream element: read, then wait in a page buffer.

        The time between the tagged read completing and the in-order
        stream consuming it is the cost of restoring FIFO order; it is
        charged to the request's ``reorder`` stage (closed by
        :meth:`stream_pages` when the element is emitted).
        """
        result = yield self.sim.process(
            self.port.read_page(addr, request=request))
        if request:
            request.enter("reorder", self.sim.now)
        return result

    def stream_pages(self, addrs: Sequence[PhysAddr], out: Store):
        """Pipelined in-order streaming read.

        Issues up to ``queue_depth`` tagged reads concurrently, reorders
        completions in page buffers, and puts :class:`ReadResult` objects
        into ``out`` in request order.  This is the FIFO-restoring
        completion buffer of Section 3.1.1/3.1.2.

        When the splitter has a tracer, each page becomes a traced
        :class:`~repro.io.request.IORequest` whose ``reorder`` stage
        records the page-buffer dwell time.

        Run as a process: ``sim.process(server.stream_pages(addrs, out))``.
        """
        sim = self.sim
        tracer = self.tracer
        pending: List = []

        def issue(addr):
            request = None
            if tracer is not None:
                request = tracer.start(
                    IOKind.READ, addr, self.port.splitter.page_size,
                    tenant=self.port.tenant, priority=self.port.priority)
            pending.append(
                (sim.process(self._stream_read(addr, request)), request))

        def emit(result, request):
            if request:
                request.exit("reorder", sim.now)
                tracer.complete(request)
            return result

        for addr in addrs:
            issue(addr)
            # Bound the number of outstanding requests (page buffers).
            while len(pending) >= self.queue_depth:
                process, request = pending.pop(0)
                result = yield process
                yield out.put(emit(result, request))
        while pending:
            process, request = pending.pop(0)
            result = yield process
            yield out.put(emit(result, request))

    def stream_file(self, handle_id: int, out: Store,
                    offsets: Optional[Iterable[int]] = None):
        """Stream a registered file (or selected page offsets) in order."""
        handle = self.lookup(handle_id)
        if offsets is None:
            addrs = list(handle.extents)
        else:
            addrs = [handle.translate(off) for off in offsets]
        yield from self.stream_pages(addrs, out)
