"""Flash health bookkeeping: wear (P/E cycles) and bad blocks.

NAND "has limited program/erase cycles and frequent errors" (Section 3.1);
the controller stack therefore tracks per-block erase counts, a factory
bad-block list, and blocks that go bad in service.  The FTL's wear
leveler and the chip model's error injector both consume this state.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Set, Tuple

from .geometry import FlashGeometry, PhysAddr

__all__ = ["WearTracker", "BadBlockTable"]

_BlockKey = Tuple[int, int, int, int, int]


def _block_key(addr: PhysAddr) -> _BlockKey:
    return (addr.node, addr.card, addr.bus, addr.chip, addr.block)


class WearTracker:
    """Per-block program/erase cycle accounting.

    ``endurance`` is the rated P/E cycle budget (default 3000, typical for
    the era's MLC NAND).  Blocks past endurance are candidates for
    retirement, and the chip error model scales its bit-error rate with
    ``wear_fraction``.
    """

    def __init__(self, endurance: int = 3000):
        if endurance < 1:
            raise ValueError(f"endurance must be >= 1, got {endurance}")
        self.endurance = endurance
        self._erases: Dict[_BlockKey, int] = {}

    def record_erase(self, addr: PhysAddr) -> int:
        """Count one erase of ``addr``'s block; returns the new count."""
        key = _block_key(addr)
        count = self._erases.get(key, 0) + 1
        self._erases[key] = count
        return count

    def erase_count(self, addr: PhysAddr) -> int:
        return self._erases.get(_block_key(addr), 0)

    def wear_fraction(self, addr: PhysAddr) -> float:
        """Erase count relative to rated endurance (may exceed 1.0)."""
        return self.erase_count(addr) / self.endurance

    def is_worn_out(self, addr: PhysAddr) -> bool:
        return self.erase_count(addr) >= self.endurance

    @property
    def total_erases(self) -> int:
        return sum(self._erases.values())

    @property
    def max_erase_count(self) -> int:
        return max(self._erases.values(), default=0)

    @property
    def min_erase_count_touched(self) -> int:
        """Minimum erase count among blocks erased at least once."""
        return min(self._erases.values(), default=0)

    def spread(self) -> int:
        """Max − min erase count over *touched* blocks (0 if none).

        The static wear leveler's trigger: a large spread means hot
        blocks are burning through their endurance while cold blocks
        sit on cycles the device will never reclaim on its own.
        """
        if not self._erases:
            return 0
        counts = self._erases.values()
        return max(counts) - min(counts)

    def chip_summaries(self) -> Dict[Tuple[int, int, int, int],
                                     Dict[str, int]]:
        """Per-chip erase-count summaries over touched blocks.

        Maps ``(node, card, bus, chip)`` to ``blocks_touched`` /
        ``total_erases`` / ``min_erase_count`` / ``max_erase_count``,
        in deterministic (sorted) chip order.
        """
        summaries: Dict[Tuple[int, int, int, int], Dict[str, int]] = {}
        for key in sorted(self._erases):
            node, card, bus, chip, _block = key
            count = self._erases[key]
            entry = summaries.setdefault(
                (node, card, bus, chip),
                {"blocks_touched": 0, "total_erases": 0,
                 "min_erase_count": count, "max_erase_count": count})
            entry["blocks_touched"] += 1
            entry["total_erases"] += count
            entry["min_erase_count"] = min(entry["min_erase_count"], count)
            entry["max_erase_count"] = max(entry["max_erase_count"], count)
        return summaries


class BadBlockTable:
    """Factory and grown bad blocks.

    Factory-bad blocks are chosen deterministically from a seed by hashing
    the block identity, at a configurable rate (NAND datasheets allow up
    to ~2 % factory-bad).  Grown bad blocks are added when the controller
    sees uncorrectable errors or erase failures.
    """

    def __init__(self, geometry: FlashGeometry,
                 factory_bad_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= factory_bad_rate < 1.0:
            raise ValueError(
                f"factory_bad_rate must be in [0, 1), got {factory_bad_rate}")
        self.geometry = geometry
        self.factory_bad_rate = factory_bad_rate
        self.seed = seed
        self._grown: Set[_BlockKey] = set()

    def _factory_bad(self, key: _BlockKey) -> bool:
        if self.factory_bad_rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{key}".encode()).digest()
        # First 8 bytes as a uniform fraction in [0, 1).
        fraction = int.from_bytes(digest[:8], "big") / (1 << 64)
        return fraction < self.factory_bad_rate

    @property
    def pristine(self) -> bool:
        """True when no block anywhere can be bad (hot-path fast test).

        With a zero factory-bad rate and no grown failures, per-address
        ``is_bad`` checks are pure overhead; multi-page commands skip
        them wholesale while this holds.
        """
        return not self._grown and self.factory_bad_rate <= 0.0

    def is_bad(self, addr: PhysAddr) -> bool:
        key = _block_key(addr)
        return key in self._grown or self._factory_bad(key)

    def mark_bad(self, addr: PhysAddr) -> None:
        """Retire a block that failed in service (grown bad block)."""
        self._grown.add(_block_key(addr))

    @property
    def grown_bad_count(self) -> int:
        return len(self._grown)

    def good_blocks(self, node: int, card: int,
                    buses: Iterable[int] = None) -> Iterable[PhysAddr]:
        """Yield block addresses (page 0) of all good blocks on a card."""
        geo = self.geometry
        bus_range = range(geo.buses_per_card) if buses is None else buses
        for bus in bus_range:
            for chip in range(geo.chips_per_bus):
                for block in range(geo.blocks_per_chip):
                    addr = PhysAddr(node=node, card=card, bus=bus,
                                    chip=chip, block=block, page=0)
                    if not self.is_bad(addr):
                        yield addr
