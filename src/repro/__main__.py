"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Print the modeled appliance's configuration and derived limits.
``demo``
    Run a one-minute tour: node assembly, a file through the FS, an
    in-store stream, and a remote read over the integrated network.
``experiments``
    List every reproduced table/figure and the benchmark that
    regenerates it.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .flash import DEFAULT_GEOMETRY, FlashTiming
from .host import HostConfig
from .network import NetworkConfig
from .reporting import NodePower, PowerModel

EXPERIMENTS = [
    ("Table 1", "Artix-7 flash controller resources",
     "benchmarks/test_table1_flash_resources.py"),
    ("Table 2", "Virtex-7 host resources",
     "benchmarks/test_table2_host_resources.py"),
    ("Table 3", "node power (240 W, <20% added)",
     "benchmarks/test_table3_power.py"),
    ("Figure 11", "network bandwidth/latency vs hops",
     "benchmarks/test_fig11_network.py"),
    ("Figure 12", "remote access latency breakdown",
     "benchmarks/test_fig12_latency.py"),
    ("Figure 13", "storage bandwidth (4 scenarios)",
     "benchmarks/test_fig13_bandwidth.py"),
    ("Figure 16", "nearest neighbour vs host DRAM",
     "benchmarks/test_fig16_nn_scaling.py"),
    ("Figure 17", "the RAMCloud cliff",
     "benchmarks/test_fig17_nn_dram_cliff.py"),
    ("Figure 18", "commodity SSD random vs sequential",
     "benchmarks/test_fig18_nn_ssd.py"),
    ("Figure 19", "in-store processing advantage",
     "benchmarks/test_fig19_nn_isp.py"),
    ("Figure 20", "distributed graph traversal",
     "benchmarks/test_fig20_graph.py"),
    ("Figure 21", "string search vs grep",
     "benchmarks/test_fig21_strsearch.py"),
    ("Ablations", "tags / routing / FTL / striping",
     "benchmarks/test_ablation_*.py"),
    ("Extension", "aggregate bandwidth vs node count",
     "benchmarks/test_ext_scaling.py"),
    ("Extension", "SQL offload vs selectivity",
     "benchmarks/test_ext_sql_offload.py"),
    ("QoS", "multi-tenant scheduler policies",
     "benchmarks/test_qos_multitenant.py"),
]


def cmd_info() -> int:
    geometry = DEFAULT_GEOMETRY
    timing = FlashTiming()
    host = HostConfig()
    net = NetworkConfig()
    power = NodePower()
    print(f"BlueDBM reproduction v{__version__} (ISCA 2015)")
    print("\nper node:")
    print(f"  flash           : {geometry.node_bytes / 1e12:.1f} TB in "
          f"{geometry.cards_per_node} cards x {geometry.buses_per_card} "
          f"buses x {geometry.chips_per_bus} chips")
    print(f"  page / block    : {geometry.page_size} B / "
          f"{geometry.pages_per_block} pages")
    print(f"  flash bandwidth : "
          f"{timing.bus_bytes_per_ns * geometry.buses_per_card * geometry.cards_per_node:.1f} GB/s "
          f"(read latency {timing.t_read_ns / 1000:.0f} us)")
    print(f"  PCIe            : {host.pcie_dev_to_host_gbs} GB/s to host, "
          f"{host.pcie_host_to_dev_gbs} GB/s to device")
    print(f"  page buffers    : {host.read_buffers} read + "
          f"{host.write_buffers} write")
    print(f"  power           : {power.total_w:.0f} W "
          f"({power.added_fraction:.0%} added by BlueDBM)")
    print("\nnetwork:")
    print(f"  link            : {net.link_gbps:.0f} Gb/s, "
          f"{net.hop_latency_ns / 1000:.2f} us/hop, "
          f"{net.protocol_efficiency:.0%} payload efficiency")
    print(f"  ports per node  : 8 (ring/mesh/star/fat-tree topologies)")
    rack = PowerModel(n_nodes=20)
    print(f"\n20-node rack    : {rack.capacity_bytes / 1e12:.0f} TB, "
          f"{rack.cluster_w / 1000:.1f} kW")
    return 0


def cmd_demo() -> int:
    from .core import BlueDBMCluster
    from .flash import FlashGeometry, PhysAddr
    from .sim import Simulator, Store, units

    geometry = FlashGeometry(buses_per_card=8, chips_per_bus=8,
                             blocks_per_chip=16, pages_per_block=32,
                             page_size=8192, cards_per_node=2)
    sim = Simulator()
    cluster = BlueDBMCluster(sim, 3, node_kwargs=dict(geometry=geometry))
    node = cluster.nodes[0]
    print("built a 3-node cluster (ring, 4 lanes/side)")

    def tour(sim):
        yield from node.fs.write_file("tour.dat", b"hello flash" * 3000)
        extents = node.fs.physical_extents("tour.dat")
        print(f"wrote tour.dat -> {len(extents)} pages at "
              f"{[str(a) for a in extents[:2]]}...")
        handle = node.flash_server.register_file("tour.dat", extents)
        out = Store(sim)
        sim.process(node.flash_server.stream_file(handle.handle_id, out))
        t0 = sim.now
        for _ in range(len(extents)):
            yield out.get()
        print(f"ISP streamed it in {units.to_us(sim.now - t0):.1f} us")
        remote = PhysAddr(node=1, page=3)
        cluster.nodes[1].device.store.program(remote, b"remote page")
        t0 = sim.now
        data, breakdown = yield from cluster.isp_remote_flash(0, remote)
        print(f"remote ISP-F read: {data[:11]!r} in "
              f"{units.to_us(breakdown.total):.1f} us "
              f"(network part {units.to_us(breakdown.network):.2f} us)")

    sim.run_process(tour(sim))
    print(f"total simulated time: {units.to_ms(sim.now):.2f} ms")
    return 0


def cmd_experiments() -> int:
    width = max(len(r[0]) for r in EXPERIMENTS)
    for exp_id, title, path in EXPERIMENTS:
        print(f"{exp_id:{width}s}  {title:40s} {path}")
    print("\nrun them all: pytest benchmarks/ --benchmark-only -s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="BlueDBM reproduction toolkit")
    parser.add_argument("command", nargs="?", default="info",
                        choices=["info", "demo", "experiments"])
    args = parser.parse_args(argv)
    return {"info": cmd_info, "demo": cmd_demo,
            "experiments": cmd_experiments}[args.command]()


if __name__ == "__main__":
    sys.exit(main())
