"""Command-line entry point: ``python -m repro <command>`` / ``repro``.

Commands
--------
``info``
    Print the modeled appliance's configuration and derived limits.
``demo``
    Run a one-minute tour: node assembly, a file through the FS, an
    in-store stream, and a remote read over the integrated network.
``list`` (alias: ``experiments``)
    Print the experiment registry: every reproduced table/figure, its
    id, and the benchmark that asserts it.
``run <id> [--json PATH] [--jobs N]``
    Run one registered experiment, print its tables, and optionally
    save the machine-readable :class:`~repro.api.RunResult` as JSON.
    ``--jobs N`` fans the experiment's sweep points across N worker
    processes; the result is byte-identical to ``--jobs 1``.
``bench [--out PATH] [--baseline PATH] [--wall-clock-only] [--jobs N]
[ids...]``
    Run the fixed perf-snapshot experiment set and write one
    machine-readable JSON file (wall-clock + key metrics per
    experiment) — the artifact CI archives per commit so the bench
    trajectory is comparable over time.  ``--baseline`` diffs wall
    clocks against a committed snapshot, worst slowdown first (exit 1
    past a generous ``--threshold``); ``--wall-clock-only`` drops the
    metrics payload.  ``--jobs N`` shares one worker pool across all
    sweep points and overlaps whole independent experiments; the
    snapshot records the jobs count so serial and parallel baselines
    are never silently compared.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .flash import DEFAULT_GEOMETRY, FlashTiming
from .host import HostConfig
from .network import NetworkConfig
from .reporting import NodePower, PowerModel


def cmd_info(args=None) -> int:
    geometry = DEFAULT_GEOMETRY
    timing = FlashTiming()
    host = HostConfig()
    net = NetworkConfig()
    power = NodePower()
    print(f"BlueDBM reproduction v{__version__} (ISCA 2015)")
    print("\nper node:")
    print(f"  flash           : {geometry.node_bytes / 1e12:.1f} TB in "
          f"{geometry.cards_per_node} cards x {geometry.buses_per_card} "
          f"buses x {geometry.chips_per_bus} chips")
    print(f"  page / block    : {geometry.page_size} B / "
          f"{geometry.pages_per_block} pages")
    print(f"  flash bandwidth : "
          f"{timing.bus_bytes_per_ns * geometry.buses_per_card * geometry.cards_per_node:.1f} GB/s "
          f"(read latency {timing.t_read_ns / 1000:.0f} us)")
    print(f"  PCIe            : {host.pcie_dev_to_host_gbs} GB/s to host, "
          f"{host.pcie_host_to_dev_gbs} GB/s to device")
    print(f"  page buffers    : {host.read_buffers} read + "
          f"{host.write_buffers} write")
    print(f"  power           : {power.total_w:.0f} W "
          f"({power.added_fraction:.0%} added by BlueDBM)")
    print("\nnetwork:")
    print(f"  link            : {net.link_gbps:.0f} Gb/s, "
          f"{net.hop_latency_ns / 1000:.2f} us/hop, "
          f"{net.protocol_efficiency:.0%} payload efficiency")
    print(f"  ports per node  : 8 (ring/mesh/star/fat-tree topologies)")
    rack = PowerModel(n_nodes=20)
    print(f"\n20-node rack    : {rack.capacity_bytes / 1e12:.0f} TB, "
          f"{rack.cluster_w / 1000:.1f} kW")
    return 0


def cmd_demo(args=None) -> int:
    from .api import BENCH_GEOMETRY, ScenarioSpec, Session
    from .flash import PhysAddr
    from .sim import Store, units

    session = Session(ScenarioSpec(name="demo", n_nodes=3,
                                   geometry=BENCH_GEOMETRY))
    sim, cluster = session.sim, session.cluster
    node = session.node
    print("built a 3-node cluster (ring, 4 lanes/side)")

    def tour(sim):
        yield from node.fs.write_file("tour.dat", b"hello flash" * 3000)
        extents = node.fs.physical_extents("tour.dat")
        print(f"wrote tour.dat -> {len(extents)} pages at "
              f"{[str(a) for a in extents[:2]]}...")
        handle = node.flash_server.register_file("tour.dat", extents)
        out = Store(sim)
        sim.process(node.flash_server.stream_file(handle.handle_id, out))
        t0 = sim.now
        for _ in range(len(extents)):
            yield out.get()
        print(f"ISP streamed it in {units.to_us(sim.now - t0):.1f} us")
        remote = PhysAddr(node=1, page=3)
        cluster.nodes[1].device.store.program(remote, b"remote page")
        t0 = sim.now
        data, breakdown = yield from cluster.isp_remote_flash(0, remote)
        print(f"remote ISP-F read: {data[:11]!r} in "
              f"{units.to_us(breakdown.total):.1f} us "
              f"(network part {units.to_us(breakdown.network):.2f} us)")

    sim.run_process(tour(sim))
    print(f"total simulated time: {units.to_ms(sim.now):.2f} ms")
    return 0


def cmd_list(args=None) -> int:
    from .api import all_experiments

    experiments = all_experiments()
    id_width = max(len(e.exp_id) for e in experiments)
    label_width = max(len(e.label) for e in experiments)
    for exp in experiments:
        print(f"{exp.exp_id:{id_width}s}  {exp.label:{label_width}s}  "
              f"{exp.title:40s} {exp.produces}")
    print(f"\nrun one: repro run <id> [--json PATH]; "
          f"run them all: pytest benchmarks/ --benchmark-only -s")
    return 0


def cmd_run(args) -> int:
    from .api import get_experiment, run_experiment
    from .faults import set_fault_seed_override

    try:
        exp = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.fault_seed is not None:
        set_fault_seed_override(args.fault_seed)
    # Outside the try: a KeyError raised by the experiment itself is a
    # bug that must surface as a traceback, not an unknown-id message.
    result = run_experiment(exp.exp_id, jobs=args.jobs)
    print(result.render())
    if args.json:
        result.save(args.json)
        print(f"\nsaved machine-readable result to {args.json}")
    return 0


#: The fixed experiment set every ``repro bench`` snapshot covers:
#: the latency and bandwidth figures, the async-path extensions, the
#: logical-volume write path, the distributed-volume cluster path, and
#: the reliability subsystem (wear-out lifetime + failure-burst
#: recovery) — small enough to run on every commit, broad enough that
#: a hot-path regression in any layer moves at least one number.
BENCH_SET = ("fig12", "fig13", "qd_sweep", "batching",
             "volume_scan", "write_burst", "gc_steady",
             "dvol_scan", "dvol_qd_sweep", "lifetime", "fault_storm")


def _write_section(results: dict) -> dict:
    """The snapshot's ``write`` section: the write path's key numbers.

    Extracted from the volume experiments when the bench set ran them —
    sequential program-coalescing bandwidth/speedup, the logical-scan
    bandwidth through the FTL map, and steady-state write
    amplification per fill level.
    """
    section: dict = {}
    burst = results.get("write_burst")
    if burst is not None:
        scenarios = burst.metrics["scenarios"]
        section["burst"] = {
            "sequential_on_gbs":
                scenarios["sequential-on"]["bandwidth_gbs"],
            "sequential_off_gbs":
                scenarios["sequential-off"]["bandwidth_gbs"],
            "speedup": burst.metrics["speedup"],
            "pages_per_command":
                scenarios["sequential-on"]["write_coalescing"]
                ["pages_per_command"],
        }
    scan = results.get("volume_scan")
    if scan is not None:
        section["scan"] = {
            "scan_on_gbs":
                scan.metrics["scenarios"]["scan-on"]["bandwidth_gbs"],
            "scan_vs_reference": scan.metrics["scan_vs_reference"],
        }
    gc = results.get("gc_steady")
    if gc is not None:
        section["gc"] = {
            policy: {str(fill): stats["write_amplification"]
                     for fill, stats in by_fill.items()}
            for policy, by_fill in gc.metrics["policies"].items()
        }
    return section


def _compare_baseline(snapshot: dict, baseline: dict,
                      threshold: float) -> int:
    """Print the wall-clock diff vs a baseline snapshot, worst first.

    Wall clock on shared CI runners is noisy, so the threshold is
    deliberately generous: only a sustained blow-up (an experiment
    ``threshold``x slower than the committed baseline) fails the
    check.  Returns the number of such regressions.

    A serial snapshot diffed against a parallel baseline (or vice
    versa) compares apples to oranges, so a ``jobs`` mismatch is
    called out loudly — but never fails the check on its own.
    """
    base_jobs = baseline.get("jobs", 1)
    now_jobs = snapshot.get("jobs", 1)
    if base_jobs != now_jobs:
        print(f"\nWARNING: baseline ran with --jobs {base_jobs}, this "
              f"run with --jobs {now_jobs}; wall clocks are not "
              f"directly comparable", file=sys.stderr)
    regressions = 0
    comparison: dict = {}
    scored = []
    fresh = []
    for exp_id, entry in snapshot["experiments"].items():
        base = baseline.get("experiments", {}).get(exp_id)
        if base is None:
            fresh.append((exp_id, entry))
            continue
        base_s = base["wall_clock_s"]
        now_s = entry["wall_clock_s"]
        speedup = base_s / now_s if now_s else float("inf")
        slow = now_s > threshold * base_s
        comparison[exp_id] = {"baseline_wall_clock_s": base_s,
                              "speedup": round(speedup, 3)}
        scored.append((speedup, exp_id, base_s, now_s, slow))
        if slow:
            regressions += 1
    print(f"\n{'experiment':14s} {'base':>8s} {'now':>8s} {'speedup':>8s}")
    # Worst regression first: the line CI readers care about is on top.
    for speedup, exp_id, base_s, now_s, slow in sorted(scored):
        flag = "  REGRESSION" if slow else ""
        print(f"{exp_id:14s} {base_s:7.2f}s {now_s:7.2f}s "
              f"{speedup:7.2f}x{flag}")
    for exp_id, entry in fresh:
        print(f"{exp_id:14s} {'-':>8s} {entry['wall_clock_s']:7.2f}s "
              f"{'new':>8s}")
    snapshot["baseline"] = {"threshold": threshold,
                            "jobs": base_jobs,
                            "experiments": comparison}
    return regressions


def _bench_one(exp_id: str, jobs: int):
    """Run one bench experiment; return (result, wall seconds)."""
    import time

    from .api import run_experiment

    start = time.perf_counter()
    result = run_experiment(exp_id, jobs=jobs)
    return result, time.perf_counter() - start


def cmd_bench(args) -> int:
    import json
    import platform
    import time

    from . import __version__ as version

    experiments = list(args.experiments) or list(BENCH_SET)
    snapshot = {
        "schema": 6,
        "version": version,
        "python": platform.python_version(),
        "jobs": args.jobs,
        "experiments": {},
    }
    start_all = time.perf_counter()
    if args.jobs > 1:
        # One shared worker pool for every sweep point, plus a thread
        # per experiment so whole independent experiments overlap too
        # (threads spend their time blocked on pool futures, so the
        # process count stays capped at --jobs).
        from concurrent.futures import ThreadPoolExecutor

        from .parallel import WorkerPool, active_pool

        with WorkerPool(args.jobs) as pool, active_pool(pool), \
                ThreadPoolExecutor(len(experiments)) as threads:
            futures = [threads.submit(_bench_one, exp_id, args.jobs)
                       for exp_id in experiments]
            outcomes = [future.result() for future in futures]
    else:
        outcomes = [_bench_one(exp_id, args.jobs)
                    for exp_id in experiments]
    total = time.perf_counter() - start_all
    results = {}
    for exp_id, (result, wall) in zip(experiments, outcomes):
        results[exp_id] = result
        sim_rate = result.elapsed_ns / wall if wall else 0.0
        entry = {
            "wall_clock_s": round(wall, 3),
            "simulated_ns": result.elapsed_ns,
            "sim_ns_per_wall_s": round(sim_rate),
        }
        if not args.wall_clock_only:
            entry["metrics"] = result.to_dict()["metrics"]
        snapshot["experiments"][exp_id] = entry
        print(f"{exp_id:14s} {wall:7.2f}s wall  "
              f"{sim_rate / 1e6:8.2f}M sim-ns/s")
    if not args.wall_clock_only:
        write_section = _write_section(results)
        if write_section:
            snapshot["write"] = write_section
    snapshot["total_wall_clock_s"] = round(total, 3)
    regressions = 0
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        regressions = _compare_baseline(snapshot, baseline,
                                        args.threshold)
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote perf snapshot ({len(experiments)} experiments, "
          f"{total:.1f}s) to {args.out}")
    if regressions:
        print(f"{regressions} experiment(s) regressed past "
              f"{args.threshold:.1f}x the baseline", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="BlueDBM reproduction toolkit")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="appliance configuration and limits")
    sub.add_parser("demo", help="one-minute tour of the appliance")
    sub.add_parser("list", help="list every registered experiment")
    # Backwards-compatible alias for ``list``.
    sub.add_parser("experiments", help=argparse.SUPPRESS)
    run_parser = sub.add_parser("run", help="run a registered experiment")
    run_parser.add_argument("experiment", help="experiment id (see list)")
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="save the RunResult as JSON to PATH")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for sweep points "
                                 "(results byte-identical to --jobs 1; "
                                 "default: 1)")
    run_parser.add_argument("--fault-seed", type=int, default=None,
                            metavar="N",
                            help="override every FaultSpec's seed (only "
                                 "affects experiments that inject "
                                 "faults; propagates to --jobs workers)")
    bench_parser = sub.add_parser(
        "bench", help="run the perf-snapshot set, write one JSON file")
    bench_parser.add_argument("experiments", nargs="*",
                              help=f"experiment ids (default: "
                                   f"{' '.join(BENCH_SET)})")
    bench_parser.add_argument("--out", metavar="PATH",
                              default="BENCH_pipeline.json",
                              help="snapshot path "
                                   "(default: BENCH_pipeline.json)")
    bench_parser.add_argument("--wall-clock-only", action="store_true",
                              help="record only wall clock per "
                                   "experiment (skip the metrics "
                                   "payload)")
    bench_parser.add_argument("--baseline", metavar="PATH", default=None,
                              help="compare wall clocks against a prior "
                                   "snapshot; exit 1 on regression")
    bench_parser.add_argument("--threshold", type=float, default=3.0,
                              help="regression factor for --baseline "
                                   "(default: 3.0 -- generous, CI "
                                   "runners are noisy)")
    bench_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes shared across "
                                   "experiments; independent "
                                   "experiments also overlap "
                                   "(per-experiment results "
                                   "byte-identical to --jobs 1; "
                                   "default: 1)")
    args = parser.parse_args(argv)
    handlers = {"info": cmd_info, "demo": cmd_demo, "list": cmd_list,
                "experiments": cmd_list, "run": cmd_run,
                "bench": cmd_bench, None: cmd_info}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
