"""The BlueDBM rack: nodes wired by the integrated storage network.

Implements the four remote-access paths measured in Figure 12 (and used
by Figures 13 and 20):

* **ISP-F** — a local in-store processor requests a page from a *remote
  flash controller* directly over the integrated network; no host
  software anywhere.
* **H-F** — local *host software* issues the request; the remote side is
  still served entirely by its storage device; data returns over the
  integrated network and crosses the local PCIe once.
* **H-RH-F** — the request detours through the *remote host's software*
  (Ethernet RPC), which commands its flash; data still returns over the
  integrated network.
* **H-D** — like H-RH-F but served from the remote node's DRAM.

The request/response protocol runs on logical endpoints: endpoint 0
carries requests; responses are spread over the remaining endpoints so
that parallel serial lanes between nodes can all be used (deterministic
per-endpoint routing, Section 3.2.3).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..flash import PhysAddr
from ..io import IOKind, IORequest, RequestTracer, StageSpan
from ..network import EthernetFabric, NetworkConfig, StorageNetwork, Topology, ring
from ..sim import Event, Simulator, Store
from .node import BlueDBMNode

__all__ = ["BlueDBMCluster", "LatencyBreakdown"]

REQUEST_EP = 0
_REQUEST_BYTES = 32  # a flash command: address + tag + reply route


class LatencyBreakdown:
    """Figure 12's four latency components, in nanoseconds."""

    __slots__ = ("software", "storage", "transfer", "network")

    def __init__(self, software: int = 0, storage: int = 0,
                 transfer: int = 0, network: int = 0):
        self.software = software
        self.storage = storage
        self.transfer = transfer
        self.network = network

    @property
    def total(self) -> int:
        return self.software + self.storage + self.transfer + self.network

    def as_dict(self) -> Dict[str, int]:
        return {"software": self.software, "storage": self.storage,
                "transfer": self.transfer, "network": self.network}


class BlueDBMCluster:
    """N BlueDBM nodes + storage network + host Ethernet."""

    #: NIC interrupt + scheduler wakeup when an Ethernet RPC arrives.
    NIC_WAKEUP_NS = 15_000
    #: Kernel block-I/O tax of a cold synchronous flash read on the
    #: remote host: context switch out and back in around the device
    #: interrupt, request queueing, cold caches.  Calibrated so the
    #: H-RH-F path totals ~330 us as in Figure 12's tallest bar.
    REMOTE_BLOCKIO_NS = 100_000

    def __init__(self, sim: Simulator, n_nodes: int,
                 topology: Optional[Topology] = None,
                 network_config: Optional[NetworkConfig] = None,
                 n_endpoints: int = 4, app_endpoints: int = 0,
                 node_kwargs: Optional[dict] = None,
                 tracer: Optional[RequestTracer] = None):
        """``app_endpoints`` reserves endpoints 1..app_endpoints for
        applications (e.g. MapReduce shuffle); the cluster's own
        request/response protocol uses endpoint 0 plus the rest.

        ``tracer`` attaches unified-pipeline tracing to the four remote
        access paths: each becomes an :class:`~repro.io.IORequest` that
        travels with the protocol message, so remote flash service time
        lands on the same request the source issued."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if app_endpoints < 0:
            raise ValueError("negative app_endpoints")
        if n_endpoints < 2 + app_endpoints:
            raise ValueError(
                "need >= 2 endpoints beyond the reserved application "
                "endpoints (requests + responses)")
        self.sim = sim
        self.n_nodes = n_nodes
        self.tracer = tracer
        node_kwargs = node_kwargs or {}
        self.nodes: List[BlueDBMNode] = [
            BlueDBMNode(sim, node_id=i, **node_kwargs)
            for i in range(n_nodes)
        ]
        if topology is None:
            topology = (ring(n_nodes, lanes=4) if n_nodes >= 3
                        else _direct(n_nodes))
        self.topology = topology
        self.network = StorageNetwork(sim, topology,
                                      config=network_config,
                                      n_endpoints=n_endpoints)
        self.ethernet = EthernetFabric(sim, n_nodes)
        self.app_endpoints = app_endpoints
        self._first_response_ep = 1 + app_endpoints
        self.n_response_eps = n_endpoints - self._first_response_ep

        self._req_ids = itertools.count()
        self._pending: Dict[int, Event] = {}
        # Non-protocol Ethernet traffic (application messages) per node.
        self.app_inbox: List[Store] = [
            Store(sim, name=f"app-inbox-{n}") for n in range(n_nodes)]
        for node in range(n_nodes):
            sim.process(self._flash_service(node),
                        name=f"flash-service-{node}")
            for ep in range(self._first_response_ep, n_endpoints):
                sim.process(self._response_dispatcher(node, ep),
                            name=f"resp-dispatch-{node}-{ep}")
            sim.process(self._ethernet_service(node),
                        name=f"eth-service-{node}")

    @property
    def page_size(self) -> int:
        return self.nodes[0].geometry.page_size

    # ------------------------------------------------------------------
    # Remote flash/DRAM service (runs on every storage device)
    # ------------------------------------------------------------------
    def _flash_service(self, node_id: int):
        """Serve remote page requests arriving on the request endpoint."""
        endpoint = self.network.endpoint(node_id, REQUEST_EP)
        while True:
            message = yield self.sim.process(endpoint.receive())
            self.sim.process(
                self._serve(node_id, message.src, message.payload),
                name=f"serve-{node_id}")

    def _serve(self, node_id: int, requester: int, request: Dict[str, Any]):
        node = self.nodes[node_id]
        io_req = request.get("request")
        if request["kind"] == "flash":
            result = yield self.sim.process(
                node.net_read(request["addr"], request=io_req))
            data = result.data
        elif request["kind"] == "dram":
            data = yield self.sim.process(
                _gen(node.dram.read(request["page"])))
        else:
            raise ValueError(f"unknown request kind {request['kind']!r}")
        reply_ep = self.network.endpoint(node_id, request["reply_ep"])
        yield self.sim.process(reply_ep.send(
            requester,
            {"req_id": request["req_id"], "data": data},
            self.page_size))

    def _response_dispatcher(self, node_id: int, ep_id: int):
        endpoint = self.network.endpoint(node_id, ep_id)
        while True:
            message = yield self.sim.process(endpoint.receive())
            event = self._pending.pop(message.payload["req_id"], None)
            if event is not None:
                event.succeed(message.payload["data"])

    def _remote_request(self, src: int, dst: int,
                        request: Dict[str, Any],
                        io_request: Optional[IORequest] = None):
        """Issue a request over the integrated network; wait for data.

        ``io_request`` rides along in the protocol message so the
        remote flash service charges its stages to the same request.
        """
        req_id = next(self._req_ids)
        reply_ep = self._first_response_ep + (req_id % self.n_response_eps)
        request = dict(request, req_id=req_id, reply_ep=reply_ep,
                       request=io_request)
        event = self.sim.event()
        self._pending[req_id] = event
        endpoint = self.network.endpoint(src, REQUEST_EP)
        yield self.sim.process(
            endpoint.send(dst, request, _REQUEST_BYTES))
        data = yield event
        return data

    # -- tracing helpers -----------------------------------------------
    def _trace_start(self, kind: IOKind, addr: Any, tenant: str,
                     size: Optional[int] = None) -> Optional[IORequest]:
        if self.tracer is None:
            return None
        return self.tracer.start(kind, addr,
                                 self.page_size if size is None else size,
                                 tenant=tenant)

    def _trace_finish(self, request: Optional[IORequest],
                      src: int, dst: int) -> None:
        """Annotate analytic network propagation and complete the trace.

        Propagation is deterministic per route (Section 3.2.3), so it is
        recorded as an annotation — the same ``2 * hops * hop_latency``
        term :meth:`_attribute` uses — rather than a timed span.
        """
        if not request:
            return
        hops = self.network.hop_count(src, dst) if src != dst else 0
        request.annotate("network",
                         2 * hops * self.network.config.hop_latency_ns)
        self.tracer.complete(request)

    # ------------------------------------------------------------------
    # Remote host service (Ethernet-reached, for H-RH-F / H-D)
    # ------------------------------------------------------------------
    def _ethernet_service(self, node_id: int):
        """Remote host software: take Ethernet RPCs, command storage.

        Messages that are not cluster-protocol requests (no ``kind``
        field) are application traffic and land in the node's
        :attr:`app_inbox` for whoever is listening (e.g. a MapReduce
        collector).
        """
        while True:
            message = yield self.sim.process(self.ethernet.receive(node_id))
            payload = message.payload
            if isinstance(payload, dict) and "kind" in payload:
                self.sim.process(
                    self._serve_via_host(node_id, payload),
                    name=f"eth-serve-{node_id}")
            else:
                yield self.app_inbox[node_id].put(message)

    def _serve_via_host(self, node_id: int, request: Dict[str, Any]):
        """The generic-cluster data path the integrated network avoids.

        The remote *host software* performs the read: the data crosses
        the remote PCIe link up into host DRAM (a full HostInterface
        read), then is pushed back down over PCIe to be injected into
        the storage network toward the requester.  These two extra PCIe
        crossings plus the kernel costs are exactly what ISP-F (and H-F)
        skip.
        """
        node = self.nodes[node_id]
        io_req = request.get("request")
        # NIC interrupt + scheduler wakeup before the host can serve.
        with StageSpan(self.sim, io_req, "software"):
            yield self.sim.timeout(self.NIC_WAKEUP_NS)
        if request["kind"] == "flash":
            data = yield self.sim.process(
                node.host_read(request["addr"], request=io_req))
            # Kernel block-I/O overhead of the synchronous read.
            with StageSpan(self.sim, io_req, "software"):
                yield self.sim.timeout(self.REMOTE_BLOCKIO_NS)
        elif request["kind"] == "dram":
            with StageSpan(self.sim, io_req, "software"):
                yield self.sim.process(
                    node.cpu.compute(node.host_config.software_request_ns))
            data = yield self.sim.process(
                _gen(node.dram.read(request["page"])))
        else:
            raise ValueError(f"unknown request kind {request['kind']!r}")
        # Response software cost + push the page back into the device.
        with StageSpan(self.sim, io_req, "software"):
            yield self.sim.process(
                node.cpu.compute(node.host_config.software_request_ns))
        with StageSpan(self.sim, io_req, "pcie"):
            yield self.sim.process(node.pcie.host_to_device(self.page_size))
        reply_ep = self.network.endpoint(node_id, request["reply_ep"])
        yield self.sim.process(reply_ep.send(
            request["requester"],
            {"req_id": request["req_id"], "data": data},
            self.page_size))

    # ------------------------------------------------------------------
    # The four measured access paths (all DES generators -> (data, bd))
    # ------------------------------------------------------------------
    def isp_remote_flash(self, src: int, addr: PhysAddr):
        """ISP-F: in-store processor reads remote flash directly."""
        io_req = self._trace_start(IOKind.READ, addr, f"isp-n{src}")
        t0 = self.sim.now
        data = yield from self._remote_request(
            src, addr.node, {"kind": "flash", "addr": addr},
            io_request=io_req)
        breakdown = self._attribute(src, addr.node, self.sim.now - t0,
                                    software=0)
        self._trace_finish(io_req, src, addr.node)
        return data, breakdown

    def host_remote_flash(self, src: int, addr: PhysAddr):
        """H-F: local host software reads remote flash over the
        integrated network (one local software + PCIe crossing)."""
        node = self.nodes[src]
        io_req = self._trace_start(IOKind.READ, addr, f"host-n{src}")
        t0 = self.sim.now
        with StageSpan(self.sim, io_req, "software"):
            yield self.sim.process(
                node.cpu.compute(node.host_config.software_request_ns))
            yield self.sim.timeout(node.host_config.rpc_ns)
        software = self.sim.now - t0
        data = yield from self._remote_request(
            src, addr.node, {"kind": "flash", "addr": addr},
            io_request=io_req)
        with StageSpan(self.sim, io_req, "pcie"):
            yield self.sim.process(node.pcie.device_to_host(self.page_size))
        with StageSpan(self.sim, io_req, "interrupt"):
            yield self.sim.timeout(node.host_config.interrupt_ns)
        breakdown = self._attribute(src, addr.node, self.sim.now - t0,
                                    software=software)
        self._trace_finish(io_req, src, addr.node)
        return data, breakdown

    def host_remote_via_host(self, src: int, addr: PhysAddr):
        """H-RH-F: request detours through the remote host's software."""
        node = self.nodes[src]
        io_req = self._trace_start(IOKind.READ, addr, f"host-n{src}")
        t0 = self.sim.now
        with StageSpan(self.sim, io_req, "software"):
            yield self.sim.process(
                node.cpu.compute(node.host_config.software_request_ns))
        software = self.sim.now - t0
        req_id = next(self._req_ids)
        reply_ep = self._first_response_ep + (req_id % self.n_response_eps)
        event = self.sim.event()
        self._pending[req_id] = event
        yield self.sim.process(self.ethernet.send(
            src, addr.node,
            {"kind": "flash", "addr": addr, "req_id": req_id,
             "reply_ep": reply_ep, "requester": src, "request": io_req},
            _REQUEST_BYTES))
        data = yield event
        with StageSpan(self.sim, io_req, "pcie"):
            yield self.sim.process(node.pcie.device_to_host(self.page_size))
        with StageSpan(self.sim, io_req, "interrupt"):
            yield self.sim.timeout(node.host_config.interrupt_ns)
        remote_sw = (self.nodes[addr.node].host_config.software_request_ns
                     + self.NIC_WAKEUP_NS + self.REMOTE_BLOCKIO_NS)
        breakdown = self._attribute(
            src, addr.node, self.sim.now - t0,
            software=software + self.ethernet.rpc_latency_ns + remote_sw)
        self._trace_finish(io_req, src, addr.node)
        return data, breakdown

    def host_remote_dram(self, src: int, dst: int, page: int):
        """H-D: like H-RH-F but served from the remote node's DRAM."""
        node = self.nodes[src]
        io_req = self._trace_start(IOKind.READ, page, f"host-n{src}")
        t0 = self.sim.now
        with StageSpan(self.sim, io_req, "software"):
            yield self.sim.process(
                node.cpu.compute(node.host_config.software_request_ns))
        software = self.sim.now - t0
        req_id = next(self._req_ids)
        reply_ep = self._first_response_ep + (req_id % self.n_response_eps)
        event = self.sim.event()
        self._pending[req_id] = event
        yield self.sim.process(self.ethernet.send(
            src, dst,
            {"kind": "dram", "page": page, "req_id": req_id,
             "reply_ep": reply_ep, "requester": src, "request": io_req},
            _REQUEST_BYTES))
        data = yield event
        with StageSpan(self.sim, io_req, "pcie"):
            yield self.sim.process(node.pcie.device_to_host(self.page_size))
        with StageSpan(self.sim, io_req, "interrupt"):
            yield self.sim.timeout(node.host_config.interrupt_ns)
        remote_sw = (self.nodes[dst].host_config.software_request_ns
                     + self.NIC_WAKEUP_NS)
        breakdown = self._attribute(
            src, dst, self.sim.now - t0, storage_override=0,
            software=software + self.ethernet.rpc_latency_ns + remote_sw)
        self._trace_finish(io_req, src, dst)
        return data, breakdown

    # ------------------------------------------------------------------
    def _attribute(self, src: int, dst: int, total: int, software: int,
                   storage_override: Optional[int] = None
                   ) -> LatencyBreakdown:
        """Split a measured total into Figure 14's four components.

        Storage is the device's first-byte latency (command + array
        read); network is the propagation of request + response; the
        rest of the measured time is data transfer.
        """
        timing = self.nodes[dst].flash_timing
        storage = (storage_override if storage_override is not None
                   else timing.cmd_overhead_ns + timing.t_read_ns)
        hops = self.network.hop_count(src, dst) if src != dst else 0
        network = 2 * hops * self.network.config.hop_latency_ns
        transfer = max(0, total - software - storage - network)
        return LatencyBreakdown(software=software, storage=storage,
                                transfer=transfer, network=network)


def _direct(n_nodes: int) -> Topology:
    """Line topology for 1-2 node clusters (ring needs 3)."""
    topo = Topology(n_nodes)
    for i in range(n_nodes - 1):
        topo.connect(i, i + 1)
    return topo


def _gen(generator):
    """Adapter: run a plain generator as a subprocess-compatible one."""
    result = yield from generator
    return result
