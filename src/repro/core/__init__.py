"""The BlueDBM appliance: node/cluster assembly and the ISP framework.

* :mod:`~repro.core.accel` — :class:`Engine`/:class:`EngineArray`
  in-store processor framework and the ``stream_job`` dataflow.
* :mod:`~repro.core.node` — :class:`BlueDBMNode` (Figure 2).
* :mod:`~repro.core.cluster` — :class:`BlueDBMCluster` with the four
  remote access paths of Figure 12 (ISP-F, H-F, H-RH-F, H-D).
"""

from .accel import Engine, EngineArray, stream_job
from .cluster import BlueDBMCluster, LatencyBreakdown
from .node import BlueDBMNode

__all__ = [
    "Engine",
    "EngineArray",
    "stream_job",
    "BlueDBMNode",
    "BlueDBMCluster",
    "LatencyBreakdown",
]
