"""In-store processor framework (the hardware-software codesign layer).

The paper's in-store processors are Bluespec modules wired to the four
node services (flash, network, host, DRAM) through latency-insensitive
FIFOs.  Here an :class:`Engine` is a Python object with

* a **functional core** — :meth:`process_page` computes the real answer
  on real page bytes, and
* a **timing contract** — the engine consumes its input stream at a
  configured ``bytes_per_ns``, occupying its unit for the corresponding
  simulated time.

:class:`EngineArray` models the replicated engines the paper deploys
("we use 4 engines per bus to maximize the flash bandwidth", Section
7.3); :func:`stream_job` wires a Flash Server page stream through an
array and collects results, which is the canonical ISP dataflow.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..sim import Counter, Resource, Simulator, Store, units

__all__ = ["Engine", "EngineArray", "stream_job"]


class Engine:
    """One in-store processing engine instance."""

    def __init__(self, sim: Simulator, bytes_per_ns: float,
                 name: str = "engine", setup_ns: int = 0):
        if bytes_per_ns <= 0:
            raise ValueError("engine throughput must be positive")
        if setup_ns < 0:
            raise ValueError("negative setup time")
        self.sim = sim
        self.bytes_per_ns = bytes_per_ns
        self.name = name
        self.setup_ns = setup_ns
        self.unit = Resource(sim, capacity=1, name=name)
        self.pages_processed = Counter(f"{name}-pages")
        self.bytes_processed = Counter(f"{name}-bytes")

    # -- functional core (override me) --------------------------------------
    def process_page(self, data: bytes, context: Any = None) -> Any:
        """Compute this engine's real result for one page of data."""
        raise NotImplementedError

    # -- timed execution -------------------------------------------------------
    def run_page(self, data: bytes, context: Any = None):
        """Process one page at engine speed (DES generator -> result)."""
        yield self.unit.request()
        try:
            yield self.sim.timeout(
                self.setup_ns
                + units.transfer_ns(len(data), self.bytes_per_ns))
        finally:
            self.unit.release()
        result = self.process_page(data, context)
        self.pages_processed.add()
        self.bytes_processed.add(len(data))
        return result


class EngineArray:
    """A bank of identical engines fed round-robin."""

    def __init__(self, engines: Sequence[Engine]):
        if not engines:
            raise ValueError("engine array cannot be empty")
        self.engines = list(engines)
        self._next = 0

    def __len__(self) -> int:
        return len(self.engines)

    def pick(self) -> Engine:
        """Round-robin engine selection (static dispatch, as in hardware)."""
        engine = self.engines[self._next]
        self._next = (self._next + 1) % len(self.engines)
        return engine

    @property
    def aggregate_bytes_per_ns(self) -> float:
        return sum(e.bytes_per_ns for e in self.engines)

    @property
    def pages_processed(self) -> int:
        return sum(e.pages_processed.value for e in self.engines)


def stream_job(sim: Simulator, pages: Store, array: EngineArray,
               n_pages: int, context: Any = None,
               on_result: Optional[Callable[[Any], None]] = None):
    """The canonical ISP dataflow (DES generator -> list of results).

    Pulls ``n_pages`` :class:`~repro.flash.controller.ReadResult` items
    from ``pages`` (typically fed by ``FlashServer.stream_pages``),
    dispatches each to an engine, and gathers results.  Pages overlap
    freely across engines; results are returned in completion order.
    """
    if n_pages < 0:
        raise ValueError("negative page count")
    results: List[Any] = []
    in_flight: List = []

    def _one(result_page):
        engine = array.pick()
        value = yield sim.process(
            engine.run_page(result_page.data, context))
        if on_result is not None:
            on_result(value)
        results.append(value)

    for _ in range(n_pages):
        page = yield pages.get()
        in_flight.append(sim.process(_one(page)))
        # Keep the in-flight list from growing without bound.
        if len(in_flight) >= 4 * len(array):
            yield in_flight.pop(0)
    for proc in in_flight:
        yield proc
    return results
