"""One BlueDBM node (Figure 2): host server + storage device.

Assembles, around a two-card :class:`~repro.flash.device.StorageDevice`:

* a :class:`~repro.flash.splitter.FlashSplitter` multiplexing the flash
  between the in-store processor, the host, and the network service;
* a :class:`~repro.flash.server.FlashServer` (in-order streams + address
  translation) for in-store processors;
* the host side — CPU, PCIe link, and the RPC/DMA
  :class:`~repro.host.iface.HostInterface`;
* the on-board DRAM buffer;
* an RFS file system instance and the FIFO accelerator scheduler.

Network endpoints are attached by the cluster when it wires nodes into
the storage fabric.
"""

from __future__ import annotations

from typing import Optional

from ..devices import DRAMStore
from ..faults import FaultInjector
from ..flash import (
    DEFAULT_GEOMETRY,
    ErrorModel,
    FlashGeometry,
    FlashServer,
    FlashSplitter,
    FlashTiming,
    PhysAddr,
)
from ..flash.device import StorageDevice
from ..fs import RFS
from ..host import (
    AcceleratorScheduler,
    HostConfig,
    HostCPU,
    HostInterface,
    PCIeLink,
)
from ..io import RequestTracer
from ..sim import Simulator

__all__ = ["BlueDBMNode"]


class BlueDBMNode:
    """A host server coupled with its BlueDBM storage device.

    QoS wiring: ``splitter_policy`` (a name from
    :data:`repro.io.scheduler.POLICIES` or a policy instance) enables
    policy-arbitrated admission across the node's three splitter ports
    (ISP / host / network service), bounded to ``splitter_in_flight``
    outstanding commands; ``scheduler_policy`` selects the accelerator
    scheduler's discipline; ``tracer`` attaches end-to-end request
    tracing to every path through the node.  ``coalesce`` /
    ``coalesce_max_pages`` enable the splitter's admission-side
    coalescing stage (stripe-adjacent reads merge into multi-page
    commands); ``host_queue_depth`` is the default in-flight bound of
    the host interface's asynchronous ``submit`` path.
    """

    def __init__(self, sim: Simulator, node_id: int = 0,
                 geometry: FlashGeometry = DEFAULT_GEOMETRY,
                 flash_timing: Optional[FlashTiming] = None,
                 errors: Optional[ErrorModel] = None,
                 host_config: Optional[HostConfig] = None,
                 isp_queue_depth: int = 32,
                 accelerator_units: int = 8,
                 onboard_dram_gbs: float = 10.0,
                 seed: int = 0,
                 splitter_policy=None,
                 splitter_in_flight: Optional[int] = None,
                 scheduler_policy=None,
                 tracer: Optional[RequestTracer] = None,
                 port_qos: Optional[dict] = None,
                 bandwidth_window_ns: int = 1_000_000,
                 coalesce: bool = False,
                 coalesce_max_pages: int = 8,
                 host_queue_depth: int = 8,
                 endurance: int = 3000,
                 factory_bad_rate: float = 0.0,
                 fault_plan=None):
        self.sim = sim
        self.node_id = node_id
        self.geometry = geometry
        self.host_config = host_config or HostConfig()
        self.flash_timing = flash_timing or FlashTiming()
        self.tracer = tracer

        # Storage device: two custom flash cards with shared management.
        self.device = StorageDevice(sim, geometry=geometry,
                                    timing=flash_timing, errors=errors,
                                    node=node_id, seed=seed,
                                    factory_bad_rate=factory_bad_rate,
                                    endurance=endurance)
        #: The node's fault injector (None = ideal hardware).  Built
        #: here so each node's read-disturb/failure state is private.
        self.faults = None
        if fault_plan is not None:
            self.faults = FaultInjector(fault_plan, node=node_id)
            self.device.install_faults(self.faults)
        self.splitter = FlashSplitter(sim, self.device,
                                      policy=splitter_policy,
                                      total_in_flight=splitter_in_flight,
                                      tracer=tracer,
                                      bandwidth_window_ns=bandwidth_window_ns,
                                      coalesce=coalesce,
                                      coalesce_max_pages=coalesce_max_pages)
        # Port 0: local in-store processors; port 1: host software;
        # port 2: remote requests arriving over the storage network.
        # ``port_qos`` maps tenant name -> add_port kwargs (priority,
        # deadline_ns, max_in_flight) for QoS experiments.
        port_qos = port_qos or {}
        self.isp_port = self.splitter.add_port(
            tenant="isp", **port_qos.get("isp", {}))
        self.host_port = self.splitter.add_port(
            tenant="host", **port_qos.get("host", {}))
        self.net_port = self.splitter.add_port(
            tenant="net", **port_qos.get("net", {}))
        self.flash_server = FlashServer(sim, self.isp_port,
                                        queue_depth=isp_queue_depth)

        # Host server.
        self.cpu = HostCPU(sim, self.host_config)
        self.pcie = PCIeLink(sim, self.host_config)
        self.host = HostInterface(sim, self.host_config, self.cpu,
                                  self.pcie, self.host_port,
                                  geometry.page_size, tracer=tracer,
                                  queue_depth=host_queue_depth)

        # On-board DRAM buffer (Figure 2's fourth service).
        self.dram = DRAMStore(sim, page_size=geometry.page_size,
                              bandwidth_gbs=onboard_dram_gbs)

        # File system + accelerator sharing.
        self.fs = RFS(sim, self.device)
        self.scheduler = AcceleratorScheduler(sim, accelerator_units,
                                              name=f"accel-n{node_id}",
                                              policy=scheduler_policy)

    # -- access paths -----------------------------------------------------
    def isp_read(self, addr: PhysAddr, request=None):
        """In-store processor read: no host software or PCIe involved."""
        result = yield self.sim.process(
            self.isp_port.read_page(addr, request=request))
        return result

    def net_read(self, addr: PhysAddr, request=None):
        """Read on behalf of a remote node (network service port)."""
        result = yield self.sim.process(
            self.net_port.read_page(addr, request=request))
        return result

    def host_read(self, addr: PhysAddr, software_path: bool = True,
                  request=None):
        """Host software read: syscall + RPC + flash + DMA + interrupt."""
        data = yield self.sim.process(
            self.host.read_page(addr, software_path=software_path,
                                request=request))
        return data

    def host_write(self, addr: PhysAddr, data: bytes, request=None):
        """Host software write path."""
        yield self.sim.process(
            self.host.write_page(addr, data, request=request))

    def peak_flash_bandwidth(self) -> float:
        """The node's native flash ceiling (2.4 GB/s with paper values)."""
        return self.device.peak_read_bandwidth()
