"""One BlueDBM node (Figure 2): host server + storage device.

Assembles, around a two-card :class:`~repro.flash.device.StorageDevice`:

* a :class:`~repro.flash.splitter.FlashSplitter` multiplexing the flash
  between the in-store processor, the host, and the network service;
* a :class:`~repro.flash.server.FlashServer` (in-order streams + address
  translation) for in-store processors;
* the host side — CPU, PCIe link, and the RPC/DMA
  :class:`~repro.host.iface.HostInterface`;
* the on-board DRAM buffer;
* an RFS file system instance and the FIFO accelerator scheduler.

Network endpoints are attached by the cluster when it wires nodes into
the storage fabric.
"""

from __future__ import annotations

from typing import Optional

from ..devices import DRAMStore
from ..flash import (
    DEFAULT_GEOMETRY,
    ErrorModel,
    FlashGeometry,
    FlashServer,
    FlashSplitter,
    FlashTiming,
    PhysAddr,
)
from ..flash.device import StorageDevice
from ..fs import RFS
from ..host import (
    AcceleratorScheduler,
    HostConfig,
    HostCPU,
    HostInterface,
    PCIeLink,
)
from ..sim import Simulator

__all__ = ["BlueDBMNode"]


class BlueDBMNode:
    """A host server coupled with its BlueDBM storage device."""

    def __init__(self, sim: Simulator, node_id: int = 0,
                 geometry: FlashGeometry = DEFAULT_GEOMETRY,
                 flash_timing: Optional[FlashTiming] = None,
                 errors: Optional[ErrorModel] = None,
                 host_config: Optional[HostConfig] = None,
                 isp_queue_depth: int = 32,
                 accelerator_units: int = 8,
                 onboard_dram_gbs: float = 10.0,
                 seed: int = 0):
        self.sim = sim
        self.node_id = node_id
        self.geometry = geometry
        self.host_config = host_config or HostConfig()
        self.flash_timing = flash_timing or FlashTiming()

        # Storage device: two custom flash cards with shared management.
        self.device = StorageDevice(sim, geometry=geometry,
                                    timing=flash_timing, errors=errors,
                                    node=node_id, seed=seed)
        self.splitter = FlashSplitter(sim, self.device)
        # Port 0: local in-store processors; port 1: host software;
        # port 2: remote requests arriving over the storage network.
        self.isp_port = self.splitter.add_port()
        self.host_port = self.splitter.add_port()
        self.net_port = self.splitter.add_port()
        self.flash_server = FlashServer(sim, self.isp_port,
                                        queue_depth=isp_queue_depth)

        # Host server.
        self.cpu = HostCPU(sim, self.host_config)
        self.pcie = PCIeLink(sim, self.host_config)
        self.host = HostInterface(sim, self.host_config, self.cpu,
                                  self.pcie, self.host_port,
                                  geometry.page_size)

        # On-board DRAM buffer (Figure 2's fourth service).
        self.dram = DRAMStore(sim, page_size=geometry.page_size,
                              bandwidth_gbs=onboard_dram_gbs)

        # File system + accelerator sharing.
        self.fs = RFS(sim, self.device)
        self.scheduler = AcceleratorScheduler(sim, accelerator_units,
                                              name=f"accel-n{node_id}")

    # -- access paths -----------------------------------------------------
    def isp_read(self, addr: PhysAddr):
        """In-store processor read: no host software or PCIe involved."""
        result = yield self.sim.process(self.isp_port.read_page(addr))
        return result

    def net_read(self, addr: PhysAddr):
        """Read on behalf of a remote node (network service port)."""
        result = yield self.sim.process(self.net_port.read_page(addr))
        return result

    def host_read(self, addr: PhysAddr, software_path: bool = True):
        """Host software read: syscall + RPC + flash + DMA + interrupt."""
        data = yield self.sim.process(
            self.host.read_page(addr, software_path=software_path))
        return data

    def host_write(self, addr: PhysAddr, data: bytes):
        """Host software write path."""
        yield self.sim.process(self.host.write_page(addr, data))

    def peak_flash_bandwidth(self) -> float:
        """The node's native flash ceiling (2.4 GB/s with paper values)."""
        return self.device.peak_read_bandwidth()
