"""File system layer: RFS-style log-structured FS with physical-address
queries for in-store processors (Section 4)."""

from .rfs import RFS, Inode

__all__ = ["RFS", "Inode"]
