"""RFS-style log-structured flash file system (Section 4).

"Unlike conventional FTL designs where the flash characteristics are
hidden from the file system, RFS performs some functionality of an FTL,
including logical-to-physical address mapping and garbage collection.
This achieves better garbage collection efficiency at much lower memory
requirement."

Crucially for BlueDBM, the file system *knows where files physically
live*: "user-level applications can query the file system for the
physical locations of files on the flash ... Applications can then
provide in-storage processors with a stream of physical addresses" —
reproduced by :meth:`RFS.physical_extents`, which feeds the Flash
Server's Address Translation Unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..flash import PhysAddr
from ..flash.device import StorageDevice
from ..ftl.log import LogStructuredCore
from ..sim import Simulator

__all__ = ["RFS", "Inode"]


class Inode:
    """File metadata: name, byte size, and the logical pages backing it."""

    __slots__ = ("name", "size", "lpns")

    def __init__(self, name: str):
        self.name = name
        self.size = 0
        self.lpns: List[int] = []

    @property
    def num_pages(self) -> int:
        return len(self.lpns)


class RFS:
    """A flat-namespace log-structured file system on raw flash."""

    def __init__(self, sim: Simulator, device: StorageDevice,
                 gc_low_watermark: int = 2):
        self.sim = sim
        self.device = device
        self.core = LogStructuredCore(sim, device,
                                      gc_low_watermark=gc_low_watermark,
                                      name="rfs")
        self.page_size = device.geometry.page_size
        self._files: Dict[str, Inode] = {}
        self._next_lpn = 0

    # -- namespace -----------------------------------------------------------
    def create(self, name: str) -> Inode:
        """Create an empty file; error if it exists."""
        if name in self._files:
            raise FileExistsError(f"file {name!r} already exists")
        inode = Inode(name)
        self._files[name] = inode
        return inode

    def exists(self, name: str) -> bool:
        return name in self._files

    def stat(self, name: str) -> Inode:
        if name not in self._files:
            raise FileNotFoundError(f"no such file: {name!r}")
        return self._files[name]

    def list_files(self) -> List[str]:
        return sorted(self._files)

    # -- data path (DES generators) -------------------------------------------
    def write_file(self, name: str, data: bytes):
        """Write ``data`` as the file's full contents (truncate + write)."""
        inode = self._files.get(name) or self.create(name)
        # Invalidate the old version's pages (log-structured overwrite).
        for lpn in inode.lpns:
            yield from self.core.trim_lpn(lpn)
        inode.lpns = []
        inode.size = len(data)
        for offset in range(0, max(len(data), 1), self.page_size):
            chunk = data[offset:offset + self.page_size]
            lpn = self._next_lpn
            self._next_lpn += 1
            yield from self.core.write_lpn(lpn, chunk)
            inode.lpns.append(lpn)

    def append_page(self, name: str, data: bytes):
        """Append one page worth of data (the log FS's natural unit)."""
        if len(data) > self.page_size:
            raise ValueError(
                f"append_page takes at most {self.page_size} bytes")
        inode = self.stat(name)
        lpn = self._next_lpn
        self._next_lpn += 1
        yield from self.core.write_lpn(lpn, data)
        inode.lpns.append(lpn)
        inode.size += len(data)

    def read_file(self, name: str):
        """Read back a file's exact contents -> bytes."""
        inode = self.stat(name)
        chunks: List[bytes] = []
        for lpn in inode.lpns:
            data = yield from self.core.read_lpn(lpn)
            chunks.append(data)
        joined = b"".join(chunks)
        return joined[:inode.size]

    def read_page(self, name: str, page_index: int):
        """Read one page of a file -> bytes (page-size padded)."""
        inode = self.stat(name)
        if not 0 <= page_index < len(inode.lpns):
            raise IndexError(
                f"page {page_index} out of range for {name!r}")
        data = yield from self.core.read_lpn(inode.lpns[page_index])
        return data

    def delete(self, name: str):
        """Delete a file, invalidating its pages for GC."""
        inode = self.stat(name)
        for lpn in inode.lpns:
            yield from self.core.trim_lpn(lpn)
        del self._files[name]

    # -- the BlueDBM-specific query (Section 4, step 1) -----------------------
    def physical_extents(self, name: str) -> List[PhysAddr]:
        """Current physical page addresses of a file, in file order.

        This is what applications hand to in-store processors; it stays
        correct across GC because it is re-queried per job.
        """
        inode = self.stat(name)
        extents = []
        for lpn in inode.lpns:
            addr = self.core.physical_of(lpn)
            if addr is None:
                raise RuntimeError(
                    f"file {name!r} page lpn={lpn} has no mapping "
                    f"(filesystem corruption)")
            extents.append(addr)
        return extents

    # -- telemetry ---------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        return self.core.write_amplification

    @property
    def gc_runs(self) -> int:
        return self.core.gc_runs

    @property
    def gc_stale_moves(self) -> int:
        """GC copies abandoned because a concurrent write/TRIM won."""
        return self.core.gc_stale_moves
