"""Hamming-distance engine for LSH nearest-neighbour search (Section 7.1).

"We have built a LSH query accelerator, where all of the data is stored
in flash and the distance calculation is done by the in-store processor
on the storage device.  For simplicity, we assume 8KB data items, and
calculate the hamming distance between the query data and each of the
items in the hash bucket."

The functional core really computes the Hamming distance over full page
bytes; timing-wise one engine bank keeps up with the node's full flash
bandwidth, which is the architectural claim the figures rest on.
"""

from __future__ import annotations

from typing import Optional

from ..core.accel import Engine
from ..sim import Simulator

__all__ = ["hamming_distance", "HammingEngine"]


def hamming_distance(a: bytes, b: bytes) -> int:
    """Bit-level Hamming distance; shorter input is zero-padded."""
    if len(a) < len(b):
        a = a + b"\x00" * (len(b) - len(a))
    elif len(b) < len(a):
        b = b + b"\x00" * (len(a) - len(b))
    return (int.from_bytes(a, "little")
            ^ int.from_bytes(b, "little")).bit_count()


class HammingEngine(Engine):
    """One in-store distance calculator holding the query page."""

    def __init__(self, sim: Simulator, query: bytes,
                 bytes_per_ns: float = 0.4, name: str = "hamming-engine"):
        super().__init__(sim, bytes_per_ns, name=name)
        self.query = bytes(query)

    def set_query(self, query: bytes) -> None:
        """Load a new query page (software does this over DMA)."""
        self.query = bytes(query)

    def process_page(self, data: bytes, context=None) -> int:
        """Hamming distance between the stored query and this item."""
        return hamming_distance(self.query, data)
