"""Sparse matrix-vector multiply accelerator (Section 8 future work).

"Sparse-Matrix Based Linear Algebra Acceleration" built on the BlueDBM
accelerator framework: the matrix lives in flash as page-packed CSR row
chunks; the dense vector is preloaded into the storage device's on-board
DRAM (Figure 2's fourth service); the engine streams matrix pages at
flash speed and emits only the dense partial results — the same
move-compute-to-data shape as the paper's other accelerators, and SpMV
is the canonical memory-bandwidth-bound kernel that benefits.

The codec and engine are functionally real: pages round-trip exact
float64 values and the engine's output matches ``A @ x`` to numerical
precision.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.accel import Engine
from ..sim import Simulator

__all__ = ["encode_rows", "decode_rows", "pack_csr_pages", "SpMVEngine"]

_HEADER = struct.Struct("<I")          # number of rows in the page
_ROW_HEADER = struct.Struct("<QI")     # row index, number of entries
_ENTRY = struct.Struct("<Qd")          # column index, float64 value

Row = Tuple[int, Sequence[Tuple[int, float]]]


def encode_rows(rows: Sequence[Row], page_size: int) -> bytes:
    """Pack CSR rows (row_id, [(col, value), ...]) into one page."""
    blob = bytearray(_HEADER.pack(len(rows)))
    for row_id, entries in rows:
        if row_id < 0:
            raise ValueError("negative row index")
        blob += _ROW_HEADER.pack(row_id, len(entries))
        for column, value in entries:
            if column < 0:
                raise ValueError("negative column index")
            blob += _ENTRY.pack(column, value)
    if len(blob) > page_size:
        raise ValueError(
            f"rows need {len(blob)} bytes; page is {page_size}")
    return bytes(blob)


def decode_rows(data: bytes) -> List[Row]:
    """Inverse of :func:`encode_rows`."""
    (n_rows,) = _HEADER.unpack_from(data, 0)
    offset = _HEADER.size
    rows: List[Row] = []
    for _ in range(n_rows):
        row_id, n_entries = _ROW_HEADER.unpack_from(data, offset)
        offset += _ROW_HEADER.size
        entries = []
        for _ in range(n_entries):
            column, value = _ENTRY.unpack_from(data, offset)
            offset += _ENTRY.size
            entries.append((column, value))
        rows.append((row_id, entries))
    return rows


def pack_csr_pages(matrix, page_size: int) -> List[bytes]:
    """Split a scipy-style sparse matrix (or dense array) into pages.

    Rows are packed greedily; a row must fit one page (true for any
    realistic page size and row density).
    """
    dense = np.asarray(matrix.todense() if hasattr(matrix, "todense")
                       else matrix, dtype=np.float64)
    pages: List[bytes] = []
    current: List[Row] = []
    current_bytes = _HEADER.size
    for row_id in range(dense.shape[0]):
        cols = np.nonzero(dense[row_id])[0]
        entries = [(int(c), float(dense[row_id, c])) for c in cols]
        row_bytes = _ROW_HEADER.size + len(entries) * _ENTRY.size
        if row_bytes + _HEADER.size > page_size:
            raise ValueError(f"row {row_id} does not fit one page")
        if current_bytes + row_bytes > page_size:
            pages.append(encode_rows(current, page_size))
            current, current_bytes = [], _HEADER.size
        current.append((row_id, entries))
        current_bytes += row_bytes
    if current:
        pages.append(encode_rows(current, page_size))
    return pages


class SpMVEngine(Engine):
    """Streams CSR pages and accumulates y[row] += A[row,:] . x."""

    def __init__(self, sim: Simulator, x: np.ndarray,
                 bytes_per_ns: float = 0.4, name: str = "spmv-engine"):
        super().__init__(sim, bytes_per_ns, name=name)
        self.x = np.asarray(x, dtype=np.float64)

    def set_vector(self, x: np.ndarray) -> None:
        """Load a new dense vector (lives in on-board DRAM)."""
        self.x = np.asarray(x, dtype=np.float64)

    def process_page(self, data: bytes, context=None) -> Dict[int, float]:
        partial: Dict[int, float] = {}
        for row_id, entries in decode_rows(data):
            acc = 0.0
            for column, value in entries:
                acc += value * self.x[column]
            if entries:
                partial[row_id] = acc
        return partial
