"""Graph traversal engine: dependent page lookups (Section 7.2).

"Graph traversal algorithms often involve dependent lookups.  That is,
the data from the first request determines the next request, like a
linked-list traversal at the page level."

Vertices are serialized one per flash page; the engine's functional core
parses the page and picks the next vertex to visit.  Because each lookup
cannot start until the previous one returned, this workload is purely
latency-bound — exactly why the integrated network + ISP placement wins
in Figure 20.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..core.accel import Engine
from ..sim import Simulator

__all__ = ["encode_vertex", "decode_vertex", "GraphWalkEngine"]

_MAGIC = b"GRPH"
_HEADER = struct.Struct("<4sQI")  # magic, vertex id, degree
_NEIGHBOR = struct.Struct("<Q")


def encode_vertex(vertex_id: int, neighbors: List[int],
                  page_size: int) -> bytes:
    """Serialize a vertex into one flash page."""
    if vertex_id < 0:
        raise ValueError("negative vertex id")
    blob = _HEADER.pack(_MAGIC, vertex_id, len(neighbors))
    blob += b"".join(_NEIGHBOR.pack(n) for n in neighbors)
    if len(blob) > page_size:
        raise ValueError(
            f"vertex {vertex_id} with {len(neighbors)} neighbors does not "
            f"fit a {page_size}-byte page")
    return blob


def decode_vertex(data: bytes) -> Tuple[int, List[int]]:
    """Parse a vertex page -> (vertex_id, neighbors)."""
    magic, vertex_id, degree = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not a vertex page")
    neighbors = [
        _NEIGHBOR.unpack_from(data, _HEADER.size + i * _NEIGHBOR.size)[0]
        for i in range(degree)
    ]
    return vertex_id, neighbors


class GraphWalkEngine(Engine):
    """Parses a vertex page and selects the next hop.

    The per-page work is header parsing, so the engine runs at a high
    stream rate; the walk's cost is dominated by storage latency, not
    compute.  ``pick`` selects deterministically among neighbors so runs
    are reproducible: neighbor ``step % degree`` at each step.
    """

    def __init__(self, sim: Simulator, bytes_per_ns: float = 2.0,
                 name: str = "graphwalk-engine"):
        super().__init__(sim, bytes_per_ns, name=name)
        self.step = 0

    def process_page(self, data: bytes,
                     context=None) -> Tuple[int, Optional[int]]:
        """-> (vertex_id, next_vertex or None at a sink)."""
        vertex_id, neighbors = decode_vertex(data)
        if not neighbors:
            return vertex_id, None
        nxt = neighbors[self.step % len(neighbors)]
        self.step += 1
        return vertex_id, nxt
