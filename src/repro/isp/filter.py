"""In-store SQL filter engine: selection + projection offload.

Section 8 lists "SQL Database Acceleration by offloading query
processing and filtering to in-store processors" as the system's next
application; the related-work systems it cites (Ibex, IBM/Netezza) do
exactly this — evaluate relational selection near storage and ship only
matching rows.  This module implements that engine on the BlueDBM
accelerator framework:

* a fixed-width row codec (:class:`Schema`) that packs rows into flash
  pages;
* a small predicate language (:class:`Predicate` trees over column
  comparisons, with AND/OR/NOT) evaluated *for real* against row bytes;
* :class:`FilterEngine`, which scans pages at stream rate and returns
  only the selected, projected rows — the property that makes offload
  pay: result traffic shrinks with selectivity while a host scan always
  moves every page over PCIe.
"""

from __future__ import annotations

import operator
import struct
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.accel import Engine
from ..sim import Simulator

__all__ = ["Column", "Schema", "Predicate", "col", "FilterEngine"]

_INT = "int64"
_STR_PREFIX = "str"


class Column:
    """One fixed-width column: ``int64`` or ``strN`` (N-byte text)."""

    __slots__ = ("name", "kind", "width")

    def __init__(self, name: str, kind: str):
        if not name:
            raise ValueError("empty column name")
        if kind == _INT:
            width = 8
        elif kind.startswith(_STR_PREFIX):
            try:
                width = int(kind[len(_STR_PREFIX):])
            except ValueError:
                raise ValueError(f"bad column kind {kind!r}") from None
            if width < 1:
                raise ValueError(f"bad string width in {kind!r}")
        else:
            raise ValueError(f"unknown column kind {kind!r}")
        self.name = name
        self.kind = kind
        self.width = width

    def pack(self, value: Any) -> bytes:
        if self.kind == _INT:
            return struct.pack("<q", value)
        data = value.encode() if isinstance(value, str) else bytes(value)
        if len(data) > self.width:
            raise ValueError(
                f"value too wide for {self.name} ({len(data)} > "
                f"{self.width})")
        return data.ljust(self.width, b"\x00")

    def unpack(self, blob: bytes) -> Any:
        if self.kind == _INT:
            return struct.unpack("<q", blob)[0]
        return blob.rstrip(b"\x00").decode()


class Schema:
    """An ordered set of columns; rows pack to a fixed width."""

    def __init__(self, columns: Sequence[Tuple[str, str]]):
        if not columns:
            raise ValueError("schema needs at least one column")
        self.columns = [Column(name, kind) for name, kind in columns]
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        self.row_width = sum(c.width for c in self.columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        self._offsets = []
        offset = 0
        for column in self.columns:
            self._offsets.append(offset)
            offset += column.width

    def column(self, name: str) -> Column:
        if name not in self._index:
            raise KeyError(f"no column {name!r}")
        return self.columns[self._index[name]]

    def offset_of(self, name: str) -> int:
        return self._offsets[self._index[name]]

    def pack_row(self, row: Dict[str, Any]) -> bytes:
        return b"".join(c.pack(row[c.name]) for c in self.columns)

    def unpack_row(self, blob: bytes) -> Dict[str, Any]:
        if len(blob) != self.row_width:
            raise ValueError("row blob has wrong width")
        out = {}
        for column, offset in zip(self.columns, self._offsets):
            out[column.name] = column.unpack(
                blob[offset:offset + column.width])
        return out

    def rows_per_page(self, page_size: int) -> int:
        per = page_size // self.row_width
        if per < 1:
            raise ValueError("row wider than a page")
        return per

    def pack_page(self, rows: Sequence[Dict[str, Any]],
                  page_size: int) -> bytes:
        if len(rows) > self.rows_per_page(page_size):
            raise ValueError("too many rows for one page")
        # Page header: row count (so partial pages scan correctly).
        blob = struct.pack("<I", len(rows))
        blob += b"".join(self.pack_row(r) for r in rows)
        return blob

    def unpack_page(self, data: bytes) -> List[Dict[str, Any]]:
        (count,) = struct.unpack_from("<I", data, 0)
        rows = []
        offset = 4
        for _ in range(count):
            rows.append(self.unpack_row(
                data[offset:offset + self.row_width]))
            offset += self.row_width
        return rows


_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """A boolean expression tree over row values."""

    def __init__(self, kind: str, payload):
        self.kind = kind
        self.payload = payload

    # -- combinators -----------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate("and", (self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate("or", (self, other))

    def __invert__(self) -> "Predicate":
        return Predicate("not", self)

    # -- evaluation --------------------------------------------------------
    def matches(self, row: Dict[str, Any]) -> bool:
        if self.kind == "cmp":
            name, op, value = self.payload
            return _OPS[op](row[name], value)
        if self.kind == "and":
            left, right = self.payload
            return left.matches(row) and right.matches(row)
        if self.kind == "or":
            left, right = self.payload
            return left.matches(row) or right.matches(row)
        if self.kind == "not":
            return not self.payload.matches(row)
        raise ValueError(f"unknown predicate kind {self.kind!r}")


class _ColumnRef:
    """Builder: ``col("price") > 100`` makes a comparison predicate."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _cmp(self, op: str, value) -> Predicate:
        return Predicate("cmp", (self.name, op, value))

    def __eq__(self, value):  # type: ignore[override]
        return self._cmp("=", value)

    def __ne__(self, value):  # type: ignore[override]
        return self._cmp("!=", value)

    def __lt__(self, value):
        return self._cmp("<", value)

    def __le__(self, value):
        return self._cmp("<=", value)

    def __gt__(self, value):
        return self._cmp(">", value)

    def __ge__(self, value):
        return self._cmp(">=", value)


def col(name: str) -> _ColumnRef:
    """Reference a column in a predicate expression."""
    return _ColumnRef(name)


class FilterEngine(Engine):
    """Selection + projection at storage stream rate.

    ``process_page`` really decodes rows, evaluates the predicate, and
    returns only the projected columns of matching rows — the engine's
    output is what crosses the network/PCIe, not the page.
    """

    def __init__(self, sim: Simulator, schema: Schema,
                 predicate: Predicate,
                 project: Optional[Sequence[str]] = None,
                 bytes_per_ns: float = 0.4, name: str = "filter-engine"):
        super().__init__(sim, bytes_per_ns, name=name)
        self.schema = schema
        self.predicate = predicate
        self.project = list(project) if project is not None else None
        for column in self.project or []:
            schema.column(column)  # validate early

    def process_page(self, data: bytes, context=None) -> List[Dict]:
        selected = []
        for row in self.schema.unpack_page(data):
            if self.predicate.matches(row):
                if self.project is not None:
                    row = {k: row[k] for k in self.project}
                selected.append(row)
        return selected

    def result_bytes(self, rows: List[Dict]) -> int:
        """Wire size of a result batch (what gets shipped upstream)."""
        if self.project is None:
            width = self.schema.row_width
        else:
            width = sum(self.schema.column(c).width for c in self.project)
        return len(rows) * width
