"""Morris-Pratt string search engine (Section 7.3).

"We examine its performance on BlueDBM with assistance from in-store
Morris-Pratt (MP) string search engines ... The software portion of
string search initially sets up the accelerator by transferring the
target string pattern (needle) and a set of precomputed MP constants."

This is the real MP algorithm [Morris & Pratt 1970]: the *failure
function* (the "precomputed MP constants" software ships to the engine)
lets the automaton scan in a single pass with no backtracking in the
text, which is what makes it implementable as streaming hardware.  The
engine carries its automaton state across page boundaries so matches
spanning two flash pages are found.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.accel import Engine
from ..sim import Simulator

__all__ = ["failure_function", "mp_search", "MPEngine", "MPStream"]


def failure_function(needle: bytes) -> List[int]:
    """The MP failure (border) table — the constants shipped to engines.

    ``fail[i]`` is the length of the longest proper border of
    ``needle[:i+1]``.
    """
    if not needle:
        raise ValueError("empty needle")
    fail = [0] * len(needle)
    k = 0
    for i in range(1, len(needle)):
        while k > 0 and needle[i] != needle[k]:
            k = fail[k - 1]
        if needle[i] == needle[k]:
            k += 1
        fail[i] = k
    return fail


def mp_search(text: bytes, needle: bytes,
              fail: Optional[List[int]] = None, state: int = 0,
              base_offset: int = 0) -> Tuple[List[int], int]:
    """Streaming MP scan of ``text``.

    ``state`` is the automaton state carried in from the previous chunk;
    returns ``(match_end_offsets, new_state)`` where offsets are global
    positions (``base_offset`` + local index) of the *last* byte of each
    match.  Pure software reference and the engine's functional core.
    """
    if fail is None:
        fail = failure_function(needle)
    matches: List[int] = []
    k = state
    for i, byte in enumerate(text):
        while k > 0 and byte != needle[k]:
            k = fail[k - 1]
        if byte == needle[k]:
            k += 1
        if k == len(needle):
            matches.append(base_offset + i)
            k = fail[k - 1]
    return matches, k


class MPStream:
    """Mutable per-stream scan state (one haystack segment)."""

    __slots__ = ("state", "offset", "matches")

    def __init__(self):
        self.state = 0
        self.offset = 0
        self.matches: List[int] = []


class MPEngine(Engine):
    """One hardware MP search engine.

    The paper deploys 4 per bus because "4 read commands can saturate a
    single flash bus"; each engine therefore only needs ~1/4 of a bus's
    bandwidth.  Only match positions are returned to the server
    ("a tiny fraction of the file").
    """

    def __init__(self, sim: Simulator, needle: bytes,
                 bytes_per_ns: float = 0.0375, name: str = "mp-engine"):
        super().__init__(sim, bytes_per_ns, name=name)
        self.needle = bytes(needle)
        self.fail = failure_function(self.needle)

    def process_page(self, data: bytes, context: Optional[MPStream] = None):
        """Scan one page; returns the match positions found in it."""
        stream = context if context is not None else MPStream()
        matches, stream.state = mp_search(
            data, self.needle, self.fail, state=stream.state,
            base_offset=stream.offset)
        stream.offset += len(data)
        stream.matches.extend(matches)
        return matches
