"""Concrete in-store processor engines (Section 7's accelerators).

* :mod:`~repro.isp.hamming` — LSH distance engine (Hamming over pages).
* :mod:`~repro.isp.mp` — Morris-Pratt streaming string search engines.
* :mod:`~repro.isp.graphwalk` — dependent-lookup graph traversal engine.
"""

from .filter import FilterEngine, Predicate, Schema, col
from .graphwalk import GraphWalkEngine, decode_vertex, encode_vertex
from .hamming import HammingEngine, hamming_distance
from .mp import MPEngine, MPStream, failure_function, mp_search
from .spmv import SpMVEngine, pack_csr_pages

__all__ = [
    "FilterEngine",
    "Predicate",
    "Schema",
    "col",
    "SpMVEngine",
    "pack_csr_pages",
    "HammingEngine",
    "hamming_distance",
    "MPEngine",
    "MPStream",
    "failure_function",
    "mp_search",
    "GraphWalkEngine",
    "encode_vertex",
    "decode_vertex",
]
