"""Pure placement planning for distributed volumes.

One cluster-wide logical LPN space is carved into fixed-size *chunks*
of ``stripe_chunk_pages`` consecutive LPNs; chunks are dealt onto the
per-node shards round-robin (``striped``) or by a keyed permutation per
round (``hashed`` — decorrelates shard load for skewed strides while
every round still covers every shard exactly once).  Keeping whole
chunks together is what preserves stripe adjacency *within a shard*:
a logically-sequential run arrives at each shard as consecutive shard
LPNs, which sequential allocation turns into physically stripe-adjacent
pages — the shape both the local read coalescer and the network-port
:class:`~repro.dvol.coalesce.RemoteCoalescer` merge.

Everything here is pure integer math (hashing included — keyed BLAKE2s
digests, no RNG state), so the hypothesis property tests drive the
planner without a simulator and the same ``(shards, placement, chunk,
seed)`` tuple places identically on every platform and every run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

__all__ = ["PlacementPlanner", "PLACEMENT_MODES"]

#: The selectable placement disciplines.
PLACEMENT_MODES = ("striped", "hashed")


class PlacementPlanner:
    """Maps one global LPN space onto ``shards`` per-node shard spaces.

    ``shard_pages`` is each shard's logical capacity (every shard is
    the same machine); the planner only uses whole chunks of it, so
    :attr:`total_pages` is ``shards * (shard_pages // chunk) * chunk``.

    The forward map :meth:`locate`, its inverse :meth:`lpn_of`, and the
    contiguous-run splitter :meth:`split_run` are the whole interface;
    the routing tier and the session's functional prefill both consume
    exactly these.
    """

    def __init__(self, shards: int, shard_pages: int,
                 placement: str = "striped",
                 stripe_chunk_pages: int = 8, hash_seed: int = 0):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if stripe_chunk_pages < 1:
            raise ValueError(f"stripe_chunk_pages must be >= 1, "
                             f"got {stripe_chunk_pages}")
        if shard_pages < stripe_chunk_pages:
            raise ValueError(
                f"shard_pages ({shard_pages}) smaller than one chunk "
                f"({stripe_chunk_pages})")
        if placement not in PLACEMENT_MODES:
            raise ValueError(f"unknown placement {placement!r}; expected "
                             f"one of {PLACEMENT_MODES}")
        self.shards = shards
        self.shard_pages = shard_pages
        self.placement = placement
        self.chunk = stripe_chunk_pages
        self.hash_seed = hash_seed
        #: full chunks per shard (= rounds of the dealing scheme).
        self.rounds = shard_pages // self.chunk
        #: round -> (pos -> node, node -> pos) permutation pair.
        self._perms: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    @property
    def total_pages(self) -> int:
        """Usable pages of the whole distributed volume."""
        return self.shards * self.rounds * self.chunk

    # -- the per-round dealing permutation ------------------------------
    def _perm(self, round_: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(pos->node, node->pos) for one round of chunk dealing.

        ``striped`` is the identity; ``hashed`` orders the shards by a
        keyed BLAKE2s digest of (seed, round, shard) — a deterministic
        permutation per round, so every round still covers every shard
        exactly once (placement never overfills a shard).
        """
        cached = self._perms.get(round_)
        if cached is not None:
            return cached
        if self.placement == "striped":
            identity = tuple(range(self.shards))
            perm = (identity, identity)
        else:
            order = sorted(
                range(self.shards),
                key=lambda node: hashlib.blake2s(
                    f"{self.hash_seed}:{round_}:{node}".encode()
                ).digest())
            inverse = [0] * self.shards
            for pos, node in enumerate(order):
                inverse[node] = pos
            perm = (tuple(order), tuple(inverse))
        self._perms[round_] = perm
        return perm

    # -- forward / inverse maps -----------------------------------------
    def locate(self, lpn: int) -> Tuple[int, int]:
        """Global LPN -> ``(node, shard_lpn)``."""
        if not 0 <= lpn < self.total_pages:
            raise ValueError(
                f"LPN {lpn} outside the volume's {self.total_pages} pages")
        chunk = self.chunk
        global_chunk, offset = divmod(lpn, chunk)
        round_, pos = divmod(global_chunk, self.shards)
        node = self._perm(round_)[0][pos]
        return node, round_ * chunk + offset

    def lpn_of(self, node: int, shard_lpn: int) -> int:
        """``(node, shard_lpn)`` -> global LPN (inverse of :meth:`locate`)."""
        if not 0 <= node < self.shards:
            raise ValueError(f"node {node} outside {self.shards} shards")
        chunk = self.chunk
        round_, offset = divmod(shard_lpn, chunk)
        if not 0 <= round_ < self.rounds:
            raise ValueError(
                f"shard LPN {shard_lpn} outside the shard's "
                f"{self.rounds * chunk} placed pages")
        pos = self._perm(round_)[1][node]
        return (round_ * self.shards + pos) * chunk + offset

    # -- contiguous-run splitting ---------------------------------------
    def split_run(self, start: int, count: int
                  ) -> List[Tuple[int, int, int]]:
        """Split a contiguous LPN run into per-shard sub-runs.

        Returns ``(node, shard_start, length)`` triples in first-touch
        order.  Because every dealing round covers every shard exactly
        once, a contiguous global run gives each shard one contiguous
        shard-LPN run — at most ``shards`` sub-runs total, each of them
        stripe-adjacent within its shard.  This is what the session's
        functional prefill and ownership registration fan out through.
        """
        if count < 0:
            raise ValueError(f"negative run length {count}")
        if count and not (0 <= start
                          and start + count <= self.total_pages):
            raise ValueError(
                f"run [{start}, {start + count}) outside the volume's "
                f"{self.total_pages} pages")
        runs: List[List[int]] = []
        by_node: Dict[int, List[int]] = {}
        lpn = start
        end = start + count
        chunk = self.chunk
        while lpn < end:
            take = min(end, (lpn // chunk + 1) * chunk) - lpn
            node, shard_lpn = self.locate(lpn)
            run = by_node.get(node)
            if run is not None and run[1] + run[2] == shard_lpn:
                run[2] += take
            else:
                run = [node, shard_lpn, take]
                by_node[node] = run
                runs.append(run)
            lpn += take
        return [tuple(run) for run in runs]
