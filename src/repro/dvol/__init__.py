"""Distributed volumes: one logical address space across the cluster.

This package composes the node-local pieces (PR 5's
:class:`~repro.volume.LogicalVolume`, the QoS splitter, the storage
network) into the paper's headline abstraction — a rack of flash nodes
behaving as **one** storage appliance:

* :mod:`~repro.dvol.placement` — the pure planner mapping a
  cluster-wide LPN space onto per-node shards (striped or hashed, chunk
  granular so stripe adjacency survives within a shard);
* :mod:`~repro.dvol.router` — the per-node routing tier forwarding
  remote ``read_lpn``/``write_lpn`` node-to-node over
  :mod:`repro.network`, with tenant identity riding the request so the
  destination splitter arbitrates remote traffic individually;
* :mod:`~repro.dvol.coalesce` — the network-port read coalescer merging
  same-source stripe-adjacent remote reads before admission;
* :mod:`~repro.dvol.sharded` — the :class:`ShardedVolume` facade tying
  them together behind ``read_lpn``/``write_lpn``.

Declaratively, a :class:`~repro.api.DistributedVolumeSpec` plus tenants
with ``access="dvol"`` builds all of this through
:class:`~repro.api.Session`.
"""

from .coalesce import RemoteCoalescer
from .placement import PLACEMENT_MODES, PlacementPlanner
from .router import DvolRouter, ShardServiceIface
from .sharded import ShardedVolume

__all__ = [
    "PLACEMENT_MODES",
    "DvolRouter",
    "PlacementPlanner",
    "RemoteCoalescer",
    "ShardServiceIface",
    "ShardedVolume",
]
