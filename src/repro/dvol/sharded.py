"""One logical volume sharded across the cluster's nodes.

:class:`ShardedVolume` composes the three distributed-volume pieces:
the pure :class:`~repro.dvol.placement.PlacementPlanner` decides where
a logical page lives, per-node :class:`~repro.volume.LogicalVolume`
shards own the FTL/GC machinery for their slice, and per-node
:class:`~repro.dvol.router.DvolRouter` instances carry remote
operations node-to-node over the storage network.  A tenant's
:class:`~repro.host.HostInterface` drives it exactly like a local
volume — :meth:`read_lpn`/:meth:`write_lpn` — except that the volume,
not the caller, resolves which node serves each page:

* **local** pages run the interface's ordinary volume flow (software →
  buffers → splitter → device → PCIe → interrupt);
* **remote** pages pay the source host's software and RPC, ship the
  command through the routing tier (``net`` stage spans at each
  serialization point), are scheduled at the destination splitter under
  the *source tenant's* identity, and return over the network into the
  source host's PCIe + completion interrupt — the remote path of
  ``host_remote_flash``, but against a logical address space.

Ownership registration and functional prefill fan out through the
planner's contiguous-run splitting, so each shard sees its slice as
sequential shard LPNs and lays it out stripe-adjacent — the layout both
coalescers (local and remote) depend on.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..io import IOKind, IORequest, StageSpan
from ..sim import Simulator
from .placement import PlacementPlanner
from .router import DvolRouter, ShardServiceIface

__all__ = ["ShardedVolume"]


class ShardedVolume:
    """One cluster-wide LPN space over per-node volume shards."""

    def __init__(self, sim: Simulator, planner: PlacementPlanner,
                 page_size: int, name: str = "dvol"):
        self.sim = sim
        self.planner = planner
        self.page_size = page_size
        self.name = name
        self.shards: Dict[int, object] = {}
        self.services: Dict[int, ShardServiceIface] = {}
        self.routers: Dict[int, DvolRouter] = {}

    # -- assembly --------------------------------------------------------
    def add_shard(self, node: int, volume,
                  service: ShardServiceIface) -> None:
        """Register node ``node``'s shard volume and its service iface."""
        self.shards[node] = volume
        self.services[node] = service

    def add_router(self, node: int, router: DvolRouter) -> None:
        """Register node ``node``'s routing tier."""
        self.routers[node] = router
        volume = self.shards.get(node)
        if volume is not None:
            router.attach(volume, self.services[node])

    @property
    def logical_pages(self) -> int:
        return self.planner.total_pages

    # -- functional state (planner fan-out) ------------------------------
    def register_owner(self, start: int, size: int, tenant: str) -> None:
        """Mark ``[start, start+size)`` as owned by ``tenant``, per shard."""
        for node, shard_start, length in self.planner.split_run(start, size):
            self.shards[node].register_owner(shard_start, length, tenant)

    def prefill(self, start: int, count: int) -> None:
        """Functionally pre-map a logical run (no simulated time).

        Each shard prefills its sub-run in ascending shard-LPN order, so
        sequential allocation lays the slice out stripe-adjacent — the
        physical shape the coalescers merge.
        """
        runs = sorted(self.planner.split_run(start, count),
                      key=lambda run: (run[0], run[1]))
        for node, shard_start, length in runs:
            self.shards[node].prefill(shard_start, length)

    # -- flows -----------------------------------------------------------
    def read(self, src: int, iface, lpn: int, software_path: bool,
             request: Optional[IORequest]):
        """Read logical page ``lpn`` from node ``src`` (DES generator)."""
        node, shard_lpn = self.planner.locate(lpn)
        if node == src:
            data = yield from self.shards[node].read_flow(
                shard_lpn, iface, software_path, request)
            return data
        with StageSpan(self.sim, request, "software"):
            if software_path:
                yield self.sim.process(
                    iface.cpu.compute(iface.config.software_request_ns))
            yield self.sim.timeout(iface.config.rpc_ns)
        data = yield from self.routers[src].remote_read(
            node, shard_lpn, iface.tenant, request)
        with StageSpan(self.sim, request, "pcie"):
            yield self.sim.process(
                iface.pcie.device_to_host(self.page_size))
        with StageSpan(self.sim, request, "interrupt"):
            yield self.sim.timeout(iface.config.interrupt_ns)
        return data

    def write(self, src: int, iface, lpn: int, data: bytes,
              software_path: bool, request: Optional[IORequest]):
        """Write logical page ``lpn`` from node ``src`` (DES generator)."""
        node, shard_lpn = self.planner.locate(lpn)
        if node == src:
            yield from self.shards[node].write_flow(
                iface, shard_lpn, data, software_path, request,
                tenant=iface.tenant)
            return
        with StageSpan(self.sim, request, "software"):
            if software_path:
                yield self.sim.process(
                    iface.cpu.compute(iface.config.software_request_ns))
            yield self.sim.timeout(iface.config.rpc_ns)
        with StageSpan(self.sim, request, "pcie"):
            yield self.sim.process(
                iface.pcie.host_to_device(len(data)))
        yield from self.routers[src].remote_write(
            node, shard_lpn, data, iface.tenant, request)

    # -- traced top-level operations -------------------------------------
    def read_lpn(self, src: int, iface, lpn: int,
                 software_path: bool = True,
                 request: Optional[IORequest] = None):
        """Traced cluster-wide logical read (DES generator) -> bytes."""
        request, owned = iface._start(IOKind.READ, lpn, self.page_size,
                                      request)
        start = self.sim.now
        data = yield from self.read(src, iface, lpn, software_path,
                                    request)
        iface.reads.add()
        iface.read_latency.record(self.sim.now - start)
        if owned:
            iface.tracer.complete(request)
        return data

    def write_lpn(self, src: int, iface, lpn: int, data: bytes,
                  software_path: bool = True,
                  request: Optional[IORequest] = None):
        """Traced cluster-wide logical write (DES generator)."""
        request, owned = iface._start(IOKind.WRITE, lpn, len(data),
                                      request)
        start = self.sim.now
        yield from self.write(src, iface, lpn, data, software_path,
                              request)
        iface.writes.add()
        iface.write_latency.record(self.sim.now - start)
        if owned:
            iface.tracer.complete(request)

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict:
        """Aggregate shard, router, and remote-coalescing statistics."""
        out = {
            "placement": self.planner.placement,
            "stripe_chunk_pages": self.planner.chunk,
            "logical_pages": self.logical_pages,
            "shards": {node: volume.stats()
                       for node, volume in sorted(self.shards.items())},
        }
        if self.routers:
            out["routers"] = {node: router.stats()
                              for node, router in sorted(
                                  self.routers.items())}
        remote = {node: service.coalescer.stats()
                  for node, service in sorted(self.services.items())
                  if service.coalescer is not None}
        if remote:
            out["remote_coalescing"] = remote
        return out
