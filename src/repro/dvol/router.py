"""Per-node routing tier for distributed volumes.

Mirrors the cluster's request/response protocol
(:class:`~repro.core.cluster.BlueDBMCluster`) on the distributed
volume's own endpoint set: remote ``read_lpn``/``write_lpn`` operations
become request packets to the shard's home node, are served there
against the shard :class:`~repro.volume.LogicalVolume` through a
controller-side :class:`ShardServiceIface` (no host software or PCIe at
the destination — the service runs in the storage device, the paper's
controller-to-controller story), and the page/ack rides back on one of
two response endpoints chosen by request id, so parallel serial lanes
between a node pair are both used.

The traced :class:`~repro.io.IORequest` travels inside the request
payload, exactly as ``qos_cluster`` remote tenants do: the destination
splitter schedules and accounts the remote read under the *source
tenant's* label (``SplitterPort.sched_tenant``), so remote traffic
stays individually arbitrated at the shard.  Send-side serialization is
charged to a ``net`` stage span and deterministic propagation is
annotated as ``network`` (2 x hops x hop latency), so a remote op's
trace shows its network hops alongside ``queue``/``device``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..io import IORequest, StageSpan
from ..sim import Counter, Event, Simulator
from .coalesce import RemoteCoalescer

__all__ = ["DvolRouter", "ShardServiceIface"]

#: A forwarded flash command: shard LPN + op + tenant + reply route.
DVOL_REQUEST_BYTES = 32
#: A write acknowledgement (no data payload).
DVOL_ACK_BYTES = 8


class ShardServiceIface:
    """Controller-side I/O driver for one shard's volume flows.

    Implements the interface protocol
    :class:`~repro.volume.LogicalVolume` flows drive
    (``_read_flow``/``_write_flow`` plus a ``tenant`` label) without any
    host-side machinery: remote operations served here pay splitter
    admission and the device — never the destination host's software,
    buffers, PCIe or interrupts, which is exactly what the integrated
    network skips.  With a :class:`~repro.dvol.coalesce.RemoteCoalescer`
    attached, reads stage there (same-source stripe-adjacent runs merge
    before admission); otherwise they ride the service port directly.
    """

    def __init__(self, sim: Simulator, port, page_size: int,
                 coalescer: Optional[RemoteCoalescer] = None,
                 tenant: str = "dvol"):
        self.sim = sim
        self.port = port
        self.page_size = page_size
        self.coalescer = coalescer
        self.tenant = tenant

    def _read_flow(self, addr, software_path: bool,
                   request: Optional[IORequest], interrupt: bool = True):
        if self.coalescer is not None:
            result = yield self.coalescer.submit(addr, request)
            return result
        result = yield self.sim.process(
            self.port.read_page(addr, request=request))
        return result

    def _write_flow(self, addr, data: bytes, software_path: bool,
                    request: Optional[IORequest]):
        yield self.sim.process(
            self.port.write_page(addr, data, request=request))


class DvolRouter:
    """One node's routing tier: forwards remote shard ops node-to-node.

    Every node gets a router (any node can source remote operations);
    shard nodes additionally :meth:`attach` their volume + service
    interface and answer requests.  The router owns its request ids and
    pending-event table, so its protocol never interleaves with the
    cluster's own remote paths even though both ride one fabric.
    """

    def __init__(self, sim: Simulator, network, node_id: int,
                 request_ep: int, response_eps, page_size: int):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.request_ep = request_ep
        self.response_eps = tuple(response_eps)
        self.page_size = page_size
        self.volume = None
        self.iface: Optional[ShardServiceIface] = None
        self._req_ids = itertools.count()
        self._pending: Dict[int, Event] = {}
        self.remote_reads = Counter(f"dvol-n{node_id}-remote-reads")
        self.remote_writes = Counter(f"dvol-n{node_id}-remote-writes")
        self.served_reads = Counter(f"dvol-n{node_id}-served-reads")
        self.served_writes = Counter(f"dvol-n{node_id}-served-writes")
        sim.process(self._service(), name=f"dvol-service-{node_id}")
        for ep in self.response_eps:
            sim.process(self._response_dispatcher(ep),
                        name=f"dvol-resp-{node_id}-{ep}")

    def attach(self, volume, iface: ShardServiceIface) -> None:
        """Make this node a shard server for ``volume``."""
        self.volume = volume
        self.iface = iface

    def stats(self) -> dict:
        return {"remote_reads": self.remote_reads.value,
                "remote_writes": self.remote_writes.value,
                "served_reads": self.served_reads.value,
                "served_writes": self.served_writes.value}

    # -- source side ----------------------------------------------------
    def _annotate(self, request: Optional[IORequest], dst: int) -> None:
        if request:
            hops = self.network.hop_count(self.node_id, dst)
            request.annotate(
                "network", 2 * hops * self.network.config.hop_latency_ns)

    def remote_read(self, dst: int, shard_lpn: int, tenant: str,
                    request: Optional[IORequest]):
        """Read one shard page of node ``dst`` (DES generator) -> bytes."""
        req_id = next(self._req_ids)
        reply_ep = self.response_eps[req_id % len(self.response_eps)]
        event = self.sim.event()
        self._pending[req_id] = event
        message = {"op": "read", "lpn": shard_lpn, "req_id": req_id,
                   "reply_ep": reply_ep, "tenant": tenant,
                   "request": request}
        endpoint = self.network.endpoint(self.node_id, self.request_ep)
        with StageSpan(self.sim, request, "net"):
            yield self.sim.process(
                endpoint.send(dst, message, DVOL_REQUEST_BYTES))
        data = yield event
        self.remote_reads.add()
        self._annotate(request, dst)
        return data

    def remote_write(self, dst: int, shard_lpn: int, data: bytes,
                     tenant: str, request: Optional[IORequest]):
        """Write one shard page of node ``dst`` (DES generator).

        The page data rides the request (command + payload on the wire);
        the response is a small ack once the shard's program completed.
        """
        req_id = next(self._req_ids)
        reply_ep = self.response_eps[req_id % len(self.response_eps)]
        event = self.sim.event()
        self._pending[req_id] = event
        message = {"op": "write", "lpn": shard_lpn, "data": data,
                   "req_id": req_id, "reply_ep": reply_ep,
                   "tenant": tenant, "request": request}
        endpoint = self.network.endpoint(self.node_id, self.request_ep)
        with StageSpan(self.sim, request, "net"):
            yield self.sim.process(endpoint.send(
                dst, message, DVOL_REQUEST_BYTES + len(data)))
        yield event
        self.remote_writes.add()
        self._annotate(request, dst)

    # -- destination side -----------------------------------------------
    def _service(self):
        """Serve remote shard operations arriving on the request endpoint."""
        endpoint = self.network.endpoint(self.node_id, self.request_ep)
        while True:
            message = yield self.sim.process(endpoint.receive())
            self.sim.process(self._serve(message.src, message.payload),
                             name=f"dvol-serve-{self.node_id}")

    def _serve(self, requester: int, msg: dict):
        if self.volume is None:
            raise RuntimeError(
                f"node {self.node_id} received a dvol request but "
                f"serves no shard")
        request = msg.get("request")
        reply_ep = self.network.endpoint(self.node_id, msg["reply_ep"])
        if msg["op"] == "read":
            data = yield from self.volume.read_flow(
                msg["lpn"], self.iface, False, request, interrupt=False)
            self.served_reads.add()
            with StageSpan(self.sim, request, "net"):
                yield self.sim.process(reply_ep.send(
                    requester, {"req_id": msg["req_id"], "data": data},
                    self.page_size))
        elif msg["op"] == "write":
            yield from self.volume.write_flow(
                self.iface, msg["lpn"], msg["data"], False, request,
                tenant=msg["tenant"])
            self.served_writes.add()
            with StageSpan(self.sim, request, "net"):
                yield self.sim.process(reply_ep.send(
                    requester, {"req_id": msg["req_id"], "data": None},
                    DVOL_ACK_BYTES))
        else:
            raise ValueError(f"unknown dvol op {msg['op']!r}")

    def _response_dispatcher(self, ep_id: int):
        endpoint = self.network.endpoint(self.node_id, ep_id)
        while True:
            message = yield self.sim.process(endpoint.receive())
            event = self._pending.pop(message.payload["req_id"], None)
            if event is not None:
                event.succeed(message.payload["data"])
