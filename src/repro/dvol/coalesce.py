"""Remote read coalescing at the distributed volume's network port.

Remote reads arrive at a shard's service port staggered by request
serialization (one ~32-byte command every few tens of nanoseconds), so
the greedy read :class:`~repro.flash.coalesce.Coalescer` — which carves
a group the moment staging is non-empty — would dispatch them as
singletons.  :class:`RemoteCoalescer` keeps the read coalescer's
grouping rule (:func:`~repro.flash.coalesce.first_group` runs of
same-tenant, same-card, stripe-adjacent pages) but paces dispatch the
way the :class:`~repro.flash.coalesce.WriteCoalescer` does: a group is
carved only while the service port has slot headroom, so reads arriving
while every slot is busy *accumulate* in staging and merge when a slot
frees.  Same-source stripe-adjacent remote runs — which the placement
planner's chunking preserves — therefore admit as multi-page commands,
and the service port's deliberately small slot cap
(``DistributedVolumeSpec.remote_in_flight``) is what makes the pacing
bind.

Staging time is queueing and is charged to the request's ``queue``
stage from submit to carve, exactly as the write coalescer charges it —
so a remote op's trace decomposes into ``net`` + ``queue`` + ``device``
like a local one plus its hops.
"""

from __future__ import annotations

from typing import List, Optional

from ..flash.coalesce import Coalescer, _Pending
from ..sim import Event

__all__ = ["RemoteCoalescer"]


class RemoteCoalescer(Coalescer):
    """Slot-paced read coalescer for a shard's network service port."""

    def __init__(self, port, max_pages: int):
        self._slot_gate: Optional[Event] = None
        self._inflight = 0
        super().__init__(port, max_pages)

    # -- intake ---------------------------------------------------------
    def submit(self, addr, request) -> Event:
        """Stage one remote page read; staging wait is ``queue`` time."""
        if request:
            request.enter("queue", self.sim.now)
        return super().submit(addr, request)

    # -- dispatch -------------------------------------------------------
    def _dispatch(self):
        """Forever: wait for staged work *and* slot headroom, then carve.

        The headroom wait is the whole difference from the greedy base
        dispatcher: while this stage's own commands hold every port
        slot, arrivals pile up in staging and merge into wide runs.
        """
        sim = self.sim
        while True:
            if not self._staging:
                self._gate = sim.event()
                yield self._gate
                self._gate = None
            while self._inflight >= self.port.max_in_flight:
                self._slot_gate = sim.event()
                yield self._slot_gate
                self._slot_gate = None
            group = self._take_group()
            self._inflight += 1
            sim.process(self._execute(group))

    def _take_group(self) -> List[_Pending]:
        group = super()._take_group()
        now = self.sim.now
        for pending in group:
            if pending.request:
                pending.request.exit("queue", now)
        return group

    def _retired(self) -> None:
        self._inflight -= 1
        if self._slot_gate is not None and not self._slot_gate.triggered:
            self._slot_gate.succeed()

    def _execute(self, group: List[_Pending]):
        try:
            yield from super()._execute(group)
        finally:
            self._retired()
