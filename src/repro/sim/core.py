"""Discrete-event simulation kernel.

This module provides the event loop that every timing model in the
reproduction runs on.  It is deliberately small and SimPy-flavoured:
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events trigger.

Time is kept in integer **nanoseconds** so that scheduling is exact and
deterministic; helpers in :mod:`repro.sim.units` convert to and from the
microsecond/GB-per-second quantities the paper reports.

Performance
-----------
The kernel is the hot loop of every experiment, so it is built around
two observations profiled from the heavy scenarios (``qd_sweep``,
``gc_steady``, the open-loop arrival workloads):

* **Most events are immediate.**  80–90% of all scheduling calls carry
  ``delay == 0`` — process bootstraps, process completions, ``succeed()``
  wakeups, resource grants.  Those bypass the time-ordered heap entirely
  and ride a FIFO *ready lane* (a deque).  Global ordering is unchanged:
  every scheduling call still draws a ticket from one monotonic counter,
  and the loop compares the ready lane's head ticket against the heap
  top's ticket on time ties, so the merged order is exactly the order
  the single heap used to produce — results are bit-identical.
* **Process wakeups don't need Event objects.**  Bootstrapping a new
  process, resuming one that yielded an already-processed event, and
  interrupting one used to allocate a throwaway ``Event`` each.  The
  ready lane carries those as plain ``(ticket, None, resume, value,
  ok)`` tuples instead — no allocation beyond the tuple, no callback
  list, one call to wake.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield sim.timeout(100)
...     log.append(sim.now)
>>> _ = sim.process(worker(sim))
>>> sim.run()
>>> log
[100]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "Interrupt",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not model errors)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value, and is *processed* after its callbacks have run.  Processes wait
    on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False if the event carries an exception instead of a value."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or its exception)."""
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` ns."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        if delay == 0:
            # Inlined ready-lane schedule: succeed() is the single
            # busiest trigger path (resource grants, queue handoffs).
            sim = self.sim
            eid = sim._eid
            sim._eid = eid + 1
            sim._ready.append((eid, self))
        else:
            self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if delay < 0:
            raise SimulationError(
                f"cannot fail {self!r} with negative delay {delay}")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        # Fully inlined (no Event.__init__ / _schedule calls): timeouts
        # are the bulk of all heap traffic, so construction is one
        # straight-line body.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        eid = sim._eid
        sim._eid = eid + 1
        if delay:
            heapq.heappush(sim._queue, (sim.now + delay, eid, self))
        else:
            sim._ready.append((eid, self))


class Process(Event):
    """A running coroutine; itself an event that fires when it returns.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event triggers, the generator is resumed with the event's value (or the
    event's exception is thrown into it).
    """

    __slots__ = ("_generator", "_send", "_waiting_on", "_name")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = ""):
        # Binding .send up front both validates the argument and saves
        # an attribute lookup on every resume.
        try:
            self._send = generator.send
        except AttributeError:
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            ) from None
        # Inlined Event.__init__ (one process per modeled operation adds
        # up — see the module docstring).
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._name = name
        # Bootstrap: first resume at the current time, in scheduling
        # order — a direct ready-lane wake, no throwaway Event.
        eid = sim._eid
        sim._eid = eid + 1
        sim._ready.append((eid, None, self._proceed, None, True))

    @property
    def name(self) -> str:
        """Diagnostic label (lazy: most processes are never named)."""
        return (self._name or getattr(self._generator, "__name__", "process"))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        # Detach from whatever we were waiting on; that event may still
        # fire later but must no longer resume us.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        sim = self.sim
        eid = sim._eid
        sim._eid = eid + 1
        sim._ready.append((eid, None, self._proceed, Interrupt(cause), False))

    def _resume(self, event: Event) -> None:
        """Callback form of :meth:`_proceed`, attached to real events."""
        self._proceed(event._value, event._ok)

    def _proceed(self, value: Any, ok: bool) -> None:
        self._waiting_on = None
        sim = self.sim
        try:
            if ok:
                result = self._send(value)
            else:
                result = self._generator.throw(value)
        except StopIteration as stop:
            self._triggered = True
            self._value = stop.value
            eid = sim._eid
            sim._eid = eid + 1
            sim._ready.append((eid, self))
            return
        except BaseException as exc:
            self._triggered = True
            self._ok = False
            self._value = exc
            if not self.callbacks:
                # Nobody is waiting on this process: crash the simulation
                # rather than silently swallow the error.
                raise
            sim._schedule(self, 0)
            return
        try:
            callbacks = result.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}, expected an Event"
            ) from None
        if callbacks is not None:
            self._waiting_on = result
            callbacks.append(self._resume)
        elif isinstance(result, Event):
            # Already processed: resume immediately at the current time.
            eid = sim._eid
            sim._eid = eid + 1
            sim._ready.append((eid, None, self._proceed,
                               result._value, result._ok))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}, expected an Event"
            )


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Event.__init__(self, sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if self._triggered:
                # An earlier already-processed constituent decided the
                # composite; don't leave dead callbacks on the rest.
                break
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _detach(self) -> None:
        """Drop ``_check`` from every still-pending constituent.

        Once the composite has fired, the losing siblings must not keep
        a reference to it: a long-lived pending event re-used across
        many ``any_of`` waits (the async submission pump's completion
        events, open-loop in-flight tails) would otherwise accumulate
        one dead callback per wait — unbounded memory growth and a
        linear callback scan when it finally fires.
        """
        check = self._check
        for ev in self.events:
            callbacks = ev.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass

    def _results(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev._triggered
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            self._detach()
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._results())
        self._detach()


class Simulator:
    """The event loop: a time-ordered heap plus an immediate ready lane.

    All model components share one :class:`Simulator`; its :attr:`now` is
    the global clock in nanoseconds.

    Scheduling draws a ticket from one monotonic counter regardless of
    which structure the event lands in, and the loop merges the two
    sources by ``(time, ticket)``, so firing order is identical to a
    single global priority queue — deterministic FIFO within a
    timestamp.

    ``now`` is a plain attribute (read ~once per model statement, so a
    property would be measurable overhead); treat it as read-only.
    """

    def __init__(self):
        #: (time, ticket, event) min-heap for delayed events.
        self._queue: list = []
        #: FIFO of immediate work at the current time.  Entries are
        #: ``(ticket, event)`` for zero-delay events and
        #: ``(ticket, None, resume, value, ok)`` for direct process
        #: wakes that need no Event object.
        self._ready: deque = deque()
        #: Next scheduling ticket (a plain int beats itertools.count at
        #: this call volume).
        self._eid = 0
        #: Current simulated time in nanoseconds (read-only).
        self.now = 0

    # -- event construction helpers ------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be succeeded/failed by a model."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a concurrently-running process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling / main loop ----------------------------------------
    def _schedule(self, event: Event, delay: int) -> None:
        """Enqueue ``event`` to fire ``delay`` ns from now.

        ``delay == 0`` rides the ready lane (O(1), no heap traffic);
        negative delays are a model bug and fail here, at the call
        site, instead of surfacing later as "time went backwards"
        deep inside :meth:`step`.
        """
        eid = self._eid
        self._eid = eid + 1
        if delay == 0:
            self._ready.append((eid, event))
        elif delay > 0:
            heapq.heappush(self._queue, (self.now + delay, eid, event))
        else:
            raise SimulationError(
                f"cannot schedule {event!r} at negative delay {delay} "
                f"(now={self.now})")

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        if self._ready:
            return self.now
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event (merged by time, then ticket)."""
        queue, ready = self._queue, self._ready
        event = None
        if ready:
            # Ready entries are always at the current time; the heap
            # only wins when its top shares that time with an earlier
            # ticket.
            if queue:
                head = queue[0]
                if head[0] == self.now and head[1] < ready[0][0]:
                    event = heapq.heappop(queue)[2]
            if event is None:
                entry = ready.popleft()
                event = entry[1]
                if event is None:
                    # Direct process wake — no Event, no callbacks.
                    entry[2](entry[3], entry[4])
                    return
        else:
            when, _, event = heapq.heappop(queue)
            if when < self.now:
                raise SimulationError("time went backwards")
            self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock reaches ``until`` ns."""
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})")
        queue, ready = self._queue, self._ready
        heappop = heapq.heappop
        popleft = ready.popleft
        while True:
            # Inlined _next(): this loop runs once per event and the
            # call/branch overhead is measurable at millions of events.
            if ready:
                event = None
                if queue:
                    head = queue[0]
                    if head[0] == self.now and head[1] < ready[0][0]:
                        event = heappop(queue)[2]
                if event is None:
                    entry = popleft()
                    event = entry[1]
                    if event is None:
                        # Direct process wake — no Event, no callbacks.
                        entry[2](entry[3], entry[4])
                        continue
            elif queue:
                head = queue[0]
                when = head[0]
                if until is not None and when > until:
                    self.now = until
                    return
                event = heappop(queue)[2]
                self.now = when
            else:
                break
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            for callback in callbacks:
                callback(event)
        if until is not None:
            self.now = until

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` to completion and return its value.

        Raises the process's exception if it failed.  Other concurrently
        registered processes keep running as usual.
        """
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} deadlocked (event queue drained)")
        if not proc.ok:
            raise proc._value
        return proc._value
