"""Discrete-event simulation kernel.

This module provides the event loop that every timing model in the
reproduction runs on.  It is deliberately small and SimPy-flavoured:
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events trigger.

Time is kept in integer **nanoseconds** so that scheduling is exact and
deterministic; helpers in :mod:`repro.sim.units` convert to and from the
microsecond/GB-per-second quantities the paper reports.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield sim.timeout(100)
...     log.append(sim.now)
>>> _ = sim.process(worker(sim))
>>> sim.run()
>>> log
[100]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "Interrupt",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not model errors)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value, and is *processed* after its callbacks have run.  Processes wait
    on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False if the event carries an exception instead of a value."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or its exception)."""
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` ns."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running coroutine; itself an event that fires when it returns.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event triggers, the generator is resumed with the event's value (or the
    event's exception is thrown into it).
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        wake = Event(self.sim)
        wake._ok = False
        wake._value = Interrupt(cause)
        wake._triggered = True
        wake.callbacks.append(self._resume)
        # Detach from whatever we were waiting on; that event may still
        # fire later but must no longer resume us.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.sim._schedule(wake, 0)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self._triggered = True
            self._value = stop.value
            sim._schedule(self, 0)
            return
        except BaseException as exc:
            sim._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            if not self.callbacks:
                # Nobody is waiting on this process: crash the simulation
                # rather than silently swallow the error.
                raise
            sim._schedule(self, 0)
            return
        sim._active_process = None
        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}, expected an Event"
            )
        if result.callbacks is None:
            # Already processed: resume immediately at the current time.
            wake = Event(sim)
            wake._ok = result._ok
            wake._value = result._value
            wake._triggered = True
            wake.callbacks.append(self._resume)
            sim._schedule(wake, 0)
        else:
            self._waiting_on = result
            result.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev._triggered
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._results())


class Simulator:
    """The event loop: a priority queue of (time, tiebreak, event).

    All model components share one :class:`Simulator`; its :attr:`now` is
    the global clock in nanoseconds.
    """

    def __init__(self):
        self._queue: list = []
        self._eid = itertools.count()
        self._now = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event construction helpers ------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be succeeded/failed by a model."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a concurrently-running process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling / main loop ----------------------------------------
    def _schedule(self, event: Event, delay: int) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock reaches ``until`` ns."""
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` to completion and return its value.

        Raises the process's exception if it failed.  Other concurrently
        registered processes keep running as usual.
        """
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} deadlocked (event queue drained)")
        if not proc.ok:
            raise proc._value
        return proc._value
