"""Unit helpers: the kernel keeps time in integer nanoseconds.

The paper quotes microseconds, Gbps and GB/s; these helpers convert both
ways so model parameters can be written in the paper's units.

Conventions
-----------
* ``GB/s`` is decimal (1e9 bytes/second), matching the paper's usage
  (e.g. "1.6GB/s" PCIe, "1.2GB/s" per flash card).
* ``Gbps`` is decimal bits (1e9 bits/second) as used for serial links.
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "S",
    "KB",
    "MB",
    "GB",
    "us",
    "ms",
    "seconds",
    "to_us",
    "to_ms",
    "to_s",
    "gbps_to_bytes_per_ns",
    "gbytes_to_bytes_per_ns",
    "transfer_ns",
    "bandwidth_gbps",
    "bandwidth_gbytes",
]

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return int(round(value * MS))


def seconds(value: float) -> int:
    """Seconds -> integer nanoseconds."""
    return int(round(value * S))


def to_us(ns_value: int) -> float:
    """Nanoseconds -> microseconds."""
    return ns_value / US


def to_ms(ns_value: int) -> float:
    """Nanoseconds -> milliseconds."""
    return ns_value / MS


def to_s(ns_value: int) -> float:
    """Nanoseconds -> seconds."""
    return ns_value / S


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Link rate in Gbps -> bytes per nanosecond.

    10 Gbps == 1.25 bytes/ns.
    """
    return gbps / 8.0


def gbytes_to_bytes_per_ns(gbs: float) -> float:
    """Bandwidth in GB/s -> bytes per nanosecond (1 GB/s == 1 byte/ns)."""
    return gbs


def transfer_ns(num_bytes: int, bytes_per_ns: float) -> int:
    """Time to move ``num_bytes`` at ``bytes_per_ns``, at least 1 ns."""
    if bytes_per_ns <= 0:
        raise ValueError(f"non-positive bandwidth {bytes_per_ns}")
    if num_bytes <= 0:
        return 0
    return max(1, int(round(num_bytes / bytes_per_ns)))


def bandwidth_gbytes(num_bytes: int, elapsed_ns: int) -> float:
    """Observed bandwidth in GB/s for ``num_bytes`` over ``elapsed_ns``."""
    if elapsed_ns <= 0:
        return 0.0
    return num_bytes / elapsed_ns  # bytes/ns == GB/s


def bandwidth_gbps(num_bytes: int, elapsed_ns: int) -> float:
    """Observed bandwidth in Gbps for ``num_bytes`` over ``elapsed_ns``."""
    return bandwidth_gbytes(num_bytes, elapsed_ns) * 8.0
