"""Shared resources for simulation processes.

The hardware the paper describes is built almost entirely from
latency-insensitive FIFOs with backpressure (Section 5: "Most of the
interfaces are latency-insensitive FIFOs with backpressure").  These
classes model that world:

* :class:`Store` — a bounded FIFO; ``put`` blocks when full, ``get``
  blocks when empty.  The universal backpressured channel.
* :class:`Resource` — counted resource (e.g. DMA engines, bus slots).
* :class:`CreditPool` — token/credit counter used by the link-layer
  token-based flow control (Section 3.2.2).
* :class:`Gate` — a level-triggered condition processes can wait on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, Simulator, SimulationError

__all__ = ["Store", "Resource", "CreditPool", "Gate"]


def _resolved(event: Event, value: Any = None) -> Event:
    """Pre-resolve ``event``: triggered, processed, no callback list.

    The uncontended fast path of every primitive below.  A process
    yielding an already-processed event is resumed through the
    kernel's ready lane with a ticket drawn at the ``yield`` — and
    since every call site yields the returned event immediately (no
    scheduling happens between the call and the yield), that ticket
    occupies exactly the queue position the ``succeed()`` ticket would
    have: firing order is unchanged, but the grant skips the
    ready-queue round trip (succeed + callback registration + one
    whole kernel step).  Only taken when no other process is waiting
    on the primitive, so no third party's wakeup can reorder around
    it.
    """
    event._triggered = True
    event._processed = True
    event._value = value
    event.callbacks = None
    return event


class StorePut(Event):
    """Pending put; fires when the item has been accepted."""

    __slots__ = ("item",)

    def __init__(self, sim: Simulator, item: Any):
        super().__init__(sim)
        self.item = item


class StoreGet(Event):
    """Pending get; fires with the item as its value."""

    __slots__ = ()


class Store:
    """A bounded FIFO queue connecting producer and consumer processes.

    ``capacity=None`` means unbounded (puts never block).  Items are
    delivered in strict FIFO order, which several paper invariants rely on
    (e.g. per-endpoint packet ordering, Figure 6).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >=1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Enqueue ``item``; the returned event fires once space existed."""
        if not self._putters and not self._getters and not self.is_full:
            self.items.append(item)
            return _resolved(StorePut(self.sim, item))
        event = StorePut(self.sim, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Dequeue; the returned event fires with the front item."""
        if self.items and not self._getters and not self._putters:
            return _resolved(StoreGet(self.sim), self.items.popleft())
        event = StoreGet(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def put_nowait(self, item: Any) -> None:
        """Non-blocking put; raises if a bounded store is full.

        Wakes waiting getters synchronously.  Use for returns to
        unbounded pools (e.g. tag free-lists) where blocking — and thus
        a ``yield`` inside ``finally`` — must be avoided.
        """
        if self.is_full:
            raise SimulationError(f"put_nowait on full store {self.name!r}")
        self.items.append(item)
        self._dispatch()

    def try_get(self) -> Any:
        """Non-blocking get: returns the front item or None if empty.

        Only safe when no getter processes are waiting (used by pollers).
        """
        if self._getters or not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Accept puts while there is room.
            while self._putters and not self.is_full:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve gets while there are items.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True


class Resource:
    """A counted resource with FIFO request ordering.

    ``request()`` returns an event firing when a unit is granted;
    ``release()`` returns the unit.  Models DMA engines, per-bus command
    slots, accelerator units shared by applications, etc.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >=1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            return _resolved(Event(self.sim))
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def use(self, hold_ns: int):
        """Process helper: acquire, hold for ``hold_ns``, release."""
        def _use(sim=self.sim):
            yield self.request()
            try:
                yield sim.timeout(hold_ns)
            finally:
                self.release()
        return _use()


class CreditPool:
    """Token-based flow-control credits (link layer, Section 3.2.2).

    A sender takes credits before transmitting; the receiver returns them
    as it drains its buffer.  ``take`` blocks (in FIFO order) until enough
    credits are available, providing lossless backpressure.
    """

    def __init__(self, sim: Simulator, initial: int, name: str = ""):
        if initial < 0:
            raise SimulationError(f"negative initial credits {initial}")
        self.sim = sim
        self.name = name
        self.credits = initial
        self.initial = initial
        self._waiters: Deque[tuple] = deque()

    def take(self, amount: int = 1) -> Event:
        """Event firing once ``amount`` credits have been claimed."""
        if amount < 1:
            raise SimulationError(f"credit take amount must be >=1, got {amount}")
        if not self._waiters and amount <= self.credits:
            self.credits -= amount
            return _resolved(Event(self.sim))
        event = Event(self.sim)
        self._waiters.append((event, amount))
        self._dispatch()
        return event

    def give(self, amount: int = 1) -> None:
        """Return ``amount`` credits to the pool."""
        if amount < 1:
            raise SimulationError(f"credit give amount must be >=1, got {amount}")
        self.credits += amount
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and self._waiters[0][1] <= self.credits:
            event, amount = self._waiters.popleft()
            self.credits -= amount
            event.succeed()


class Gate:
    """A level condition: processes wait until the gate is open.

    Used for interrupt-style notifications (e.g. "read buffer N is ready")
    without busy polling.
    """

    def __init__(self, sim: Simulator, is_open: bool = False):
        self.sim = sim
        self._open = is_open
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        event = Event(self.sim)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self._open = False
