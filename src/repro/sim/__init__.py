"""Discrete-event simulation kernel used by every BlueDBM model.

Public surface:

* :class:`~repro.sim.core.Simulator` — the event loop (integer ns clock).
* :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Process` —
  event/coroutine primitives.
* :mod:`~repro.sim.resources` — FIFO stores, counted resources, credit
  pools (token flow control), gates.
* :mod:`~repro.sim.stats` — counters, latency stats, bandwidth meters.
* :mod:`~repro.sim.units` — ns/µs/GB/Gbps conversion helpers.
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import CreditPool, Gate, Resource, Store
from .stats import (
    BandwidthLedger,
    BandwidthMeter,
    Counter,
    LatencyHistogram,
    LatencyStats,
    UtilizationTracker,
)
from .trace import Probe, TraceRecord, Tracer
from . import units

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Store",
    "Resource",
    "CreditPool",
    "Gate",
    "Counter",
    "LatencyStats",
    "LatencyHistogram",
    "BandwidthMeter",
    "BandwidthLedger",
    "UtilizationTracker",
    "Tracer",
    "TraceRecord",
    "Probe",
    "units",
]
