"""Measurement utilities: counters, latency stats, bandwidth meters.

Benchmarks reproduce the paper's figures from these collectors; they are
deliberately simple so a reader can audit what each reported number means.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .core import Simulator
from .units import bandwidth_gbps, bandwidth_gbytes

__all__ = ["Counter", "LatencyStats", "BandwidthMeter", "UtilizationTracker"]


class Counter:
    """A named monotonically-increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement not allowed ({amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class LatencyStats:
    """Collects latency samples (ns) and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        return max(self.samples) if self.samples else 0

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ns": self.mean,
            "min_ns": float(self.minimum),
            "max_ns": float(self.maximum),
            "p50_ns": self.percentile(50),
            "p99_ns": self.percentile(99),
        }


class BandwidthMeter:
    """Tracks bytes moved over a window of simulated time."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.total_bytes = 0
        self.start_ns: Optional[int] = None
        self.last_ns: Optional[int] = None

    def record(self, num_bytes: int) -> None:
        """Record ``num_bytes`` transferred at the current sim time."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count {num_bytes}")
        now = self.sim.now
        if self.start_ns is None:
            self.start_ns = now
        self.last_ns = now
        self.total_bytes += num_bytes

    @property
    def elapsed_ns(self) -> int:
        if self.start_ns is None or self.last_ns is None:
            return 0
        return self.last_ns - self.start_ns

    def gbytes_per_sec(self, elapsed_ns: Optional[int] = None) -> float:
        """Observed GB/s over the measured (or supplied) window."""
        window = self.elapsed_ns if elapsed_ns is None else elapsed_ns
        return bandwidth_gbytes(self.total_bytes, window)

    def gbits_per_sec(self, elapsed_ns: Optional[int] = None) -> float:
        """Observed Gbps over the measured (or supplied) window."""
        window = self.elapsed_ns if elapsed_ns is None else elapsed_ns
        return bandwidth_gbps(self.total_bytes, window)


class UtilizationTracker:
    """Tracks busy time of a component (e.g. a host CPU core).

    Call :meth:`busy` for each busy interval; :meth:`utilization` reports
    busy/elapsed over the observation window.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.busy_ns = 0
        self._window_start = sim.now

    def busy(self, duration_ns: int) -> None:
        if duration_ns < 0:
            raise ValueError(f"negative busy duration {duration_ns}")
        self.busy_ns += duration_ns

    def reset(self) -> None:
        self.busy_ns = 0
        self._window_start = self.sim.now

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of the window spent busy, clamped to [0, 1]."""
        window = (self.sim.now - self._window_start
                  if elapsed_ns is None else elapsed_ns)
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ns / window)
