"""Measurement utilities: counters, latency stats, bandwidth meters.

Benchmarks reproduce the paper's figures from these collectors; they are
deliberately simple so a reader can audit what each reported number means.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .core import Simulator
from .units import bandwidth_gbps, bandwidth_gbytes

__all__ = ["Counter", "LatencyStats", "LatencyHistogram", "BandwidthMeter",
           "BandwidthLedger", "UtilizationTracker"]


class Counter:
    """A named monotonically-increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement not allowed ({amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class LatencyStats:
    """Collects latency samples (ns) and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        return max(self.samples) if self.samples else 0

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ns": self.mean,
            "min_ns": float(self.minimum),
            "max_ns": float(self.maximum),
            "p50_ns": self.percentile(50),
            "p99_ns": self.percentile(99),
        }


class LatencyHistogram:
    """Log₂-bucketed latency histogram with bounded memory.

    :class:`LatencyStats` keeps every sample, which is exact but grows
    with the workload; the per-stage tracing of heavy multi-tenant runs
    wants O(1)-memory percentiles instead.  Samples land in power-of-two
    nanosecond buckets (bucket *k* covers ``[2^(k-1), 2^k)``), and
    percentiles linearly interpolate within the winning bucket — at most
    a factor-of-two-wide bracket, plenty for p50/p99 shape assertions.
    """

    MAX_BUCKET = 63  # 2^63 ns ≈ 292 years of simulated time

    def __init__(self, name: str = ""):
        self.name = name
        self.buckets: List[int] = [0] * (self.MAX_BUCKET + 1)
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None

    def record(self, latency_ns: int, weight: int = 1) -> None:
        """Record one sample, optionally counted ``weight`` times.

        ``weight > 1`` is how 1-in-N trace sampling keeps aggregate
        counts unbiased: each kept sample stands for ``N`` requests.
        """
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        index = int(latency_ns).bit_length()
        if index > self.MAX_BUCKET:
            index = self.MAX_BUCKET
        self.buckets[index] += weight
        self.count += weight
        self.total_ns += latency_ns * weight
        if self.min_ns is None or latency_ns < self.min_ns:
            self.min_ns = latency_ns
        if self.max_ns is None or latency_ns > self.max_ns:
            self.max_ns = latency_ns

    @property
    def mean(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def minimum(self) -> int:
        """Smallest recorded sample (exact); API parity with LatencyStats."""
        return self.min_ns or 0

    @property
    def maximum(self) -> int:
        """Largest recorded sample (exact); API parity with LatencyStats."""
        return self.max_ns or 0

    def percentile(self, p: float) -> float:
        """Estimated percentile, p in [0, 100] (0 when empty)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if not self.count:
            return 0.0
        if self.min_ns == self.max_ns:
            return float(self.min_ns)
        target = (p / 100) * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if seen + bucket_count >= target:
                low = 0 if index == 0 else 1 << (index - 1)
                high = 1 << index
                # Clamp the bracket to observed extremes so single-bucket
                # histograms report exact values.
                low = max(low, self.min_ns or 0)
                high = min(high, (self.max_ns or 0) + 1)
                if high <= low:
                    return float(low)
                frac = (target - seen) / bucket_count
                return low + frac * (high - low)
            seen += bucket_count
        return float(self.max_ns or 0)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min_ns is not None and (self.min_ns is None
                                         or other.min_ns < self.min_ns):
            self.min_ns = other.min_ns
        if other.max_ns is not None and (self.max_ns is None
                                         or other.max_ns > self.max_ns):
            self.max_ns = other.max_ns

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean_ns": self.mean,
            "min_ns": float(self.min_ns or 0),
            "max_ns": float(self.max_ns or 0),
            "p50_ns": self.percentile(50),
            "p99_ns": self.percentile(99),
        }

    def __repr__(self) -> str:
        return (f"LatencyHistogram({self.name!r}, n={self.count}, "
                f"p50≈{self.percentile(50):.0f}ns)")


class BandwidthMeter:
    """Tracks bytes moved over a window of simulated time."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.total_bytes = 0
        self.start_ns: Optional[int] = None
        self.last_ns: Optional[int] = None

    def record(self, num_bytes: int) -> None:
        """Record ``num_bytes`` transferred at the current sim time."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count {num_bytes}")
        now = self.sim.now
        if self.start_ns is None:
            self.start_ns = now
        self.last_ns = now
        self.total_bytes += num_bytes

    @property
    def elapsed_ns(self) -> int:
        if self.start_ns is None or self.last_ns is None:
            return 0
        return self.last_ns - self.start_ns

    def gbytes_per_sec(self, elapsed_ns: Optional[int] = None) -> float:
        """Observed GB/s over the measured (or supplied) window."""
        window = self.elapsed_ns if elapsed_ns is None else elapsed_ns
        return bandwidth_gbytes(self.total_bytes, window)

    def gbits_per_sec(self, elapsed_ns: Optional[int] = None) -> float:
        """Observed Gbps over the measured (or supplied) window."""
        window = self.elapsed_ns if elapsed_ns is None else elapsed_ns
        return bandwidth_gbps(self.total_bytes, window)


class BandwidthLedger:
    """Per-tenant bytes serviced, bucketed into fixed simulated-time windows.

    :class:`BandwidthMeter` tracks one stream's total; QoS accounting
    needs *per-tenant* byte counts **per window** so rate caps can be
    checked window by window ("never exceeds rate x window + one
    burst") and fairness can be measured over exactly the contended
    interval.  Windows are aligned to multiples of ``window_ns`` from
    time zero; iteration order of tenants is first-seen order, which is
    deterministic for a deterministic simulation — byte-identical
    results across repeat runs.
    """

    def __init__(self, sim: Simulator, window_ns: int = 1_000_000,
                 name: str = ""):
        if window_ns < 1:
            raise ValueError(f"window_ns must be >= 1, got {window_ns}")
        self.sim = sim
        self.window_ns = window_ns
        self.name = name
        self.totals: Dict[str, int] = {}
        #: window index (now // window_ns) -> tenant -> bytes.
        self._windows: Dict[int, Dict[str, int]] = {}

    def record(self, tenant: str, num_bytes: int) -> None:
        """Charge ``num_bytes`` to ``tenant`` at the current sim time."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count {num_bytes}")
        self.totals[tenant] = self.totals.get(tenant, 0) + num_bytes
        window = self._windows.setdefault(self.sim.now // self.window_ns, {})
        window[tenant] = window.get(tenant, 0) + num_bytes

    def tenants(self) -> List[str]:
        return list(self.totals)

    def total_bytes(self, tenant: str) -> int:
        return self.totals.get(tenant, 0)

    def window_series(self, tenant: str) -> List[Tuple[int, int]]:
        """(window start ns, bytes) pairs for ``tenant``, time-ordered."""
        return [(index * self.window_ns, counts[tenant])
                for index, counts in sorted(self._windows.items())
                if tenant in counts]

    def peak_window_bytes(self, tenant: str) -> int:
        """The busiest single window's byte count for ``tenant``."""
        return max((counts.get(tenant, 0)
                    for counts in self._windows.values()), default=0)

    def gbytes_per_sec(self, tenant: str,
                       elapsed_ns: Optional[int] = None) -> float:
        """Tenant bandwidth over the run (or the supplied window)."""
        window = self.sim.now if elapsed_ns is None else elapsed_ns
        return bandwidth_gbytes(self.totals.get(tenant, 0), window)

    def summary(self, elapsed_ns: Optional[int] = None
                ) -> Dict[str, Dict[str, float]]:
        """Per-tenant totals/peak-window/rate, JSON-ready."""
        return {tenant: {
            "bytes": float(total),
            "peak_window_bytes": float(self.peak_window_bytes(tenant)),
            "gbytes_per_sec": self.gbytes_per_sec(tenant, elapsed_ns),
        } for tenant, total in self.totals.items()}

    def __repr__(self) -> str:
        return (f"BandwidthLedger({self.name!r}, tenants={len(self.totals)}, "
                f"window={self.window_ns}ns)")


class UtilizationTracker:
    """Tracks busy time of a component (e.g. a host CPU core).

    Call :meth:`busy` for each busy interval; :meth:`utilization` reports
    busy/elapsed over the observation window.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.busy_ns = 0
        self._window_start = sim.now

    def busy(self, duration_ns: int) -> None:
        if duration_ns < 0:
            raise ValueError(f"negative busy duration {duration_ns}")
        self.busy_ns += duration_ns

    def reset(self) -> None:
        self.busy_ns = 0
        self._window_start = self.sim.now

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of the window spent busy, clamped to [0, 1]."""
        window = (self.sim.now - self._window_start
                  if elapsed_ns is None else elapsed_ns)
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ns / window)
