"""Simulation tracing: timestamped event records for debugging models.

A :class:`Tracer` collects (time, component, event, detail) records from
instrumented models and can render a timeline or per-component summary.
Models don't require a tracer — they accept an optional one, or tests
attach probes themselves.  :class:`Probe` wraps any DES generator to
record its start/end without modifying the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from .core import Simulator
from .units import to_us

__all__ = ["TraceRecord", "Tracer", "Probe"]


@dataclass(frozen=True)
class TraceRecord:
    """One timeline entry."""

    time_ns: int
    component: str
    event: str
    detail: Any = None

    def render(self) -> str:
        detail = "" if self.detail is None else f"  {self.detail}"
        return (f"[{to_us(self.time_ns):12.3f} us] "
                f"{self.component:24s} {self.event}{detail}")


class Tracer:
    """Bounded in-memory trace collector."""

    def __init__(self, sim: Simulator, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def record(self, component: str, event: str,
               detail: Any = None) -> None:
        """Append a record at the current simulated time."""
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(self.sim.now, component, event,
                                        detail))

    # -- queries ------------------------------------------------------------
    def for_component(self, component: str) -> List[TraceRecord]:
        return [r for r in self.records if r.component == component]

    def between(self, start_ns: int, end_ns: int) -> List[TraceRecord]:
        return [r for r in self.records
                if start_ns <= r.time_ns <= end_ns]

    def counts(self) -> Dict[str, int]:
        """Events per component."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.component] = out.get(record.component, 0) + 1
        return out

    def timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (up to ``limit``) records."""
        records = self.records if limit is None else self.records[:limit]
        lines = [record.render() for record in records]
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped "
                         f"(capacity {self.capacity})")
        return "\n".join(lines)


class Probe:
    """Wrap DES generators to trace their start, end, and duration."""

    def __init__(self, tracer: Tracer, component: str):
        self.tracer = tracer
        self.component = component

    def wrap(self, generator, label: str):
        """Return a generator that traces around ``generator``."""
        def _wrapped():
            start = self.tracer.sim.now
            self.tracer.record(self.component, f"{label} start")
            try:
                result = yield from generator
            except BaseException as exc:
                self.tracer.record(
                    self.component, f"{label} failed",
                    detail=type(exc).__name__)
                raise
            self.tracer.record(
                self.component, f"{label} end",
                detail=f"{to_us(self.tracer.sim.now - start):.3f} us")
            return result
        return _wrapped()
