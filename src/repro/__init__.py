"""BlueDBM reproduction: a behavioral simulator of a flash-based Big Data
analytics appliance with in-store processing and an integrated storage
network (Jun et al., ISCA 2015).

Subpackages
-----------
``repro.api``
    Declarative front door: validated/JSON-round-trippable
    ``ScenarioSpec``/``WorkloadSpec``, the ``Session`` facade that
    builds and drives the machine, structured ``RunResult``s, and the
    ``@experiment`` registry behind ``repro list`` / ``repro run``.
``repro.experiments``
    Registered implementations of every reproduced table/figure (the
    benchmarks call the same code and keep only shape assertions).
``repro.sim``
    Discrete-event simulation kernel (events, processes, FIFOs, stats).
``repro.io``
    Unified I/O request pipeline: ``IORequest`` with per-stage
    timestamps, end-to-end ``RequestTracer``, pluggable QoS scheduling
    policies (FIFO, fair-share, priority, EDF).
``repro.flash``
    Raw NAND flash substrate: chips, buses, ECC, tagged controller,
    interface splitter and Flash Server.
``repro.ftl`` / ``repro.fs``
    Host-side flash management: page-mapped FTL and an RFS-style
    log-structured file system exposing physical addresses to ISPs.
``repro.network``
    Integrated storage network: serial links with token flow control,
    switches, deterministic per-endpoint routing, topology builders.
``repro.host``
    Host interface: PCIe/DMA model, page buffers, RPC, CPU timing model,
    FIFO accelerator scheduler.
``repro.devices``
    Baseline devices: commodity SSD, hard disk, DRAM store.
``repro.isp``
    In-store processor engines: Hamming/LSH, Morris-Pratt search,
    graph traversal.
``repro.core``
    The appliance itself: node and cluster assembly, accelerator
    framework, global address space.
``repro.apps``
    Full applications with accelerated and software paths (nearest
    neighbour, graph traversal, string search).
``repro.reporting``
    Power/FPGA-resource models and table/figure formatting used by the
    benchmark harnesses.
"""

__version__ = "1.0.0"
