"""Tests for topology builders and routing-table computation."""

import pytest

from repro.network import (
    Cable,
    Topology,
    build_routing_tables,
    fat_tree,
    fully_connected,
    line,
    mesh2d,
    ring,
    shortest_hop_counts,
    star,
)


class TestTopology:
    def test_connect_assigns_incrementing_ports(self):
        topo = Topology(3)
        c1 = topo.connect(0, 1)
        c2 = topo.connect(0, 2)
        assert (c1.port_a, c2.port_a) == (0, 1)
        assert topo.ports_used(0) == 2
        assert topo.ports_used(1) == 1

    def test_port_limit_enforced(self):
        topo = Topology(10, max_ports=2)
        topo.connect(0, 1)
        topo.connect(0, 2)
        with pytest.raises(ValueError, match="out of ports"):
            topo.connect(0, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Cable(1, 0, 1, 1)

    def test_neighbors(self):
        topo = Topology(3)
        topo.connect(0, 1)
        topo.connect(0, 2)
        assert topo.neighbors(0) == [(0, 1, 0), (1, 2, 0)]
        assert topo.neighbors(1) == [(0, 0, 0)]

    def test_connectivity_detection(self):
        topo = Topology(3)
        topo.connect(0, 1)
        assert not topo.is_connected()
        topo.connect(1, 2)
        assert topo.is_connected()

    def test_config_roundtrip(self):
        topo = ring(5, lanes=2)
        restored = Topology.from_config(topo.to_config())
        assert restored.n_nodes == 5
        assert len(restored.cables) == len(topo.cables)
        assert restored.adjacency() == topo.adjacency()


class TestBuilders:
    def test_paper_ring_uses_exactly_8_ports(self):
        # 20 nodes, 4 lanes to next and previous (Section 6.3).
        topo = ring(20, lanes=4)
        assert all(topo.ports_used(n) == 8 for n in range(20))
        assert topo.is_connected()

    def test_ring_average_hops_matches_paper(self):
        # Paper: "the average latency to a remote node is 5 hops".
        topo = ring(20, lanes=1)
        total, pairs = 0, 0
        for src in range(20):
            dist = shortest_hop_counts(topo, src)
            total += sum(d for node, d in dist.items() if node != src)
            pairs += 19
        assert 5.0 <= total / pairs <= 5.5

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_line_hop_counts(self):
        topo = line(5)
        dist = shortest_hop_counts(topo, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_star_all_two_hops_via_hub(self):
        topo = star(6, hub=0)
        dist = shortest_hop_counts(topo, 1)
        assert dist[0] == 1
        assert all(dist[n] == 2 for n in range(2, 6))

    def test_star_hub_port_exhaustion(self):
        with pytest.raises(ValueError):
            star(10)  # hub would need 9 ports

    def test_mesh2d_dimensions(self):
        topo = mesh2d(3, 3)
        assert topo.n_nodes == 9
        # Corner has 2 neighbors, center has 4.
        assert len(topo.neighbors(0)) == 2
        assert len(topo.neighbors(4)) == 4
        assert topo.is_connected()

    def test_fully_connected(self):
        topo = fully_connected(4)
        assert len(topo.cables) == 6
        assert all(max(d for d in
                       shortest_hop_counts(topo, n).values()) == 1
                   for n in range(4))

    def test_fat_tree_leaves_reach_all_spines(self):
        topo = fat_tree(n_spine=2, n_leaf=4)
        assert topo.is_connected()
        # Each leaf has one cable per spine.
        assert all(topo.ports_used(leaf) == 2 for leaf in range(2, 6))


class TestRouting:
    def test_tables_cover_all_destinations(self):
        topo = ring(6)
        tables = build_routing_tables(topo, n_endpoints=2)
        for node, table in enumerate(tables):
            for dst in range(6):
                if dst == node:
                    continue
                for ep in range(2):
                    assert 0 <= table.next_port(dst, ep) < 8

    def test_route_is_shortest(self):
        topo = line(5)
        tables = build_routing_tables(topo, n_endpoints=1)
        # Walk the route 0 -> 4 and count hops.
        node, hops = 0, 0
        while node != 4 and hops < 10:
            port = tables[node].next_port(4, 0)
            neighbors = {p: peer for p, peer, _ in topo.neighbors(node)}
            node = neighbors[port]
            hops += 1
        assert node == 4
        assert hops == 4

    def test_deterministic_per_endpoint(self):
        topo = ring(6, lanes=2)
        t1 = build_routing_tables(topo, n_endpoints=4)
        t2 = build_routing_tables(topo, n_endpoints=4)
        for node in range(6):
            for dst in range(6):
                if dst == node:
                    continue
                for ep in range(4):
                    assert (t1[node].next_port(dst, ep)
                            == t2[node].next_port(dst, ep))

    def test_endpoints_spread_over_parallel_lanes(self):
        topo = line(2, lanes=4)
        tables = build_routing_tables(topo, n_endpoints=4)
        ports = {tables[0].next_port(1, ep) for ep in range(4)}
        assert len(ports) == 4  # each endpoint takes its own lane

    def test_unknown_route_raises(self):
        topo = line(3)
        tables = build_routing_tables(topo, n_endpoints=1)
        with pytest.raises(KeyError):
            tables[0].next_port(2, endpoint=5)

    def test_disconnected_topology_rejected(self):
        topo = Topology(3)
        topo.connect(0, 1)
        with pytest.raises(ValueError, match="not connected"):
            build_routing_tables(topo, n_endpoints=1)

    def test_zero_endpoints_rejected(self):
        with pytest.raises(ValueError):
            build_routing_tables(line(2), n_endpoints=0)
