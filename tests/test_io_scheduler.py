"""Tests for the pluggable QoS scheduling policies (repro.io.scheduler)."""

import pytest

from repro.io import (
    POLICIES,
    EarliestDeadlinePolicy,
    FIFOPolicy,
    QueueEntry,
    RoundRobinPolicy,
    ScheduledResource,
    SchedulerPolicy,
    StrictPriorityPolicy,
    bind_policy,
    make_policy,
)
from repro.sim import Simulator


def _entry(seq, tenant="t", priority=0, deadline=None):
    return QueueEntry(seq, tenant, priority, deadline, enqueued_ns=0,
                      payload=seq)


class TestPolicies:
    def test_fifo_preserves_arrival_order(self):
        policy = FIFOPolicy()
        for seq in range(5):
            policy.push(_entry(seq))
        assert [policy.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_round_robin_rotates_tenants(self):
        policy = RoundRobinPolicy()
        # a floods first; b and c each add one late request.
        for seq in range(4):
            policy.push(_entry(seq, tenant="a"))
        policy.push(_entry(10, tenant="b"))
        policy.push(_entry(11, tenant="c"))
        order = [(policy.pop().tenant) for _ in range(6)]
        # b and c are served within the first rotation, not behind a's
        # whole backlog.
        assert order.index("b") <= 2
        assert order.index("c") <= 2
        assert order.count("a") == 4

    def test_round_robin_fifo_within_tenant(self):
        policy = RoundRobinPolicy()
        for seq in range(3):
            policy.push(_entry(seq, tenant="a"))
        assert [policy.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_strict_priority_orders_by_priority_then_seq(self):
        policy = StrictPriorityPolicy()
        policy.push(_entry(0, priority=0))
        policy.push(_entry(1, priority=5))
        policy.push(_entry(2, priority=5))
        policy.push(_entry(3, priority=1))
        assert [policy.pop().seq for _ in range(4)] == [1, 2, 3, 0]

    def test_edf_orders_by_deadline_none_last(self):
        policy = EarliestDeadlinePolicy()
        policy.push(_entry(0, deadline=None))
        policy.push(_entry(1, deadline=300))
        policy.push(_entry(2, deadline=100))
        policy.push(_entry(3, deadline=200))
        assert [policy.pop().seq for _ in range(4)] == [2, 3, 1, 0]

    def test_len_tracks_depth(self):
        for name in POLICIES:
            policy = make_policy(name)
            assert len(policy) == 0
            policy.push(_entry(0))
            policy.push(_entry(1))
            assert len(policy) == 2
            policy.pop()
            assert len(policy) == 1


class TestMakePolicy:
    def test_known_names(self):
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("rr"), RoundRobinPolicy)
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("priority"), StrictPriorityPolicy)
        assert isinstance(make_policy("edf"), EarliestDeadlinePolicy)

    def test_none_is_fifo(self):
        assert isinstance(make_policy(None), FIFOPolicy)

    def test_instance_passthrough(self):
        policy = RoundRobinPolicy()
        assert make_policy(policy) is policy

    def test_class_is_instantiated(self):
        assert isinstance(make_policy(FIFOPolicy), FIFOPolicy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lottery")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            make_policy(42)


class TestBindPolicy:
    """Policy instances hold per-resource queues: no silent sharing."""

    def test_instance_cannot_drive_two_resources(self):
        sim = Simulator()
        policy = RoundRobinPolicy()
        ScheduledResource(sim, 1, policy=policy, name="a")
        with pytest.raises(ValueError, match="already drives"):
            ScheduledResource(sim, 1, policy=policy, name="b")

    def test_names_and_classes_always_yield_fresh_policies(self):
        sim = Simulator()
        a = ScheduledResource(sim, 1, policy="rr")
        b = ScheduledResource(sim, 1, policy="rr")
        c = ScheduledResource(sim, 1, policy=RoundRobinPolicy)
        assert a.policy is not b.policy
        assert b.policy is not c.policy

    def test_shared_instance_across_cluster_nodes_rejected_eagerly(self):
        """The corruption scenario: one policy object via node_kwargs
        would mix every node's admission queue — now an eager error."""
        from repro.core import BlueDBMCluster
        from repro.flash import FlashGeometry

        geo = FlashGeometry(buses_per_card=2, chips_per_bus=2,
                            blocks_per_chip=4, pages_per_block=8,
                            page_size=64, cards_per_node=1)
        with pytest.raises(ValueError, match="already drives"):
            BlueDBMCluster(Simulator(), 2, node_kwargs=dict(
                geometry=geo, splitter_policy=RoundRobinPolicy(),
                splitter_in_flight=1))

    def test_scheduler_and_resource_cannot_share(self):
        from repro.host import AcceleratorScheduler

        sim = Simulator()
        policy = FIFOPolicy()
        AcceleratorScheduler(sim, 1, policy=policy)
        with pytest.raises(ValueError, match="already drives"):
            bind_policy(policy, "other")


class TestScheduledResource:
    @pytest.fixture
    def sim(self):
        return Simulator()

    def test_grants_up_to_capacity_immediately(self, sim):
        res = ScheduledResource(sim, capacity=2)
        granted = []

        def taker(sim, tag):
            yield res.request(tenant=tag)
            granted.append((tag, sim.now))

        sim.process(taker(sim, "a"))
        sim.process(taker(sim, "b"))
        sim.run()
        assert [g[0] for g in granted] == ["a", "b"]
        assert res.in_use == 2
        assert res.available == 0

    def test_fifo_matches_resource_semantics(self, sim):
        res = ScheduledResource(sim, capacity=1, policy="fifo")
        order = []

        def user(sim, tag, hold):
            yield res.request(tenant=tag)
            order.append(tag)
            yield sim.timeout(hold)
            res.release()

        for tag in ("a", "b", "c"):
            sim.process(user(sim, tag, 10))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_policy_decides_next_grant(self, sim):
        res = ScheduledResource(sim, capacity=1, policy="priority")
        order = []

        def holder(sim):
            yield res.request(tenant="holder")
            yield sim.timeout(100)
            res.release()

        def waiter(sim, tag, priority):
            yield sim.timeout(1)  # enqueue while the holder runs
            yield res.request(tenant=tag, priority=priority)
            order.append(tag)
            res.release()

        sim.process(holder(sim))
        sim.process(waiter(sim, "low", 0))
        sim.process(waiter(sim, "high", 9))
        sim.run()
        assert order == ["high", "low"]

    def test_per_tenant_wait_stats_and_grants(self, sim):
        res = ScheduledResource(sim, capacity=1)

        def user(sim, tag):
            yield res.request(tenant=tag)
            yield sim.timeout(50)
            res.release()

        sim.process(user(sim, "a"))
        sim.process(user(sim, "b"))
        sim.run()
        assert res.grants == {"a": 1, "b": 1}
        assert res.tenant_waits["a"].maximum == 0
        assert res.tenant_waits["b"].maximum == 50

    def test_release_when_idle_rejected(self, sim):
        res = ScheduledResource(sim, capacity=1)
        with pytest.raises(ValueError):
            res.release()

    def test_capacity_validated(self, sim):
        with pytest.raises(ValueError):
            ScheduledResource(sim, capacity=0)

    def test_use_helper(self, sim):
        res = ScheduledResource(sim, capacity=1)
        sim.process(res.use(25, tenant="x"))
        sim.run()
        assert sim.now == 25
        assert res.in_use == 0
        assert res.grants == {"x": 1}

    def test_queue_depth(self, sim):
        res = ScheduledResource(sim, capacity=1)

        def holder(sim):
            yield res.request()
            yield sim.timeout(10)
            res.release()

        def waiter(sim):
            yield res.request()
            res.release()

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.process(waiter(sim))
        sim.run(until=5)
        assert res.queue_depth == 2
        sim.run()
        assert res.queue_depth == 0


class TestAcceleratorSchedulerPolicies:
    """The Section 4 scheduler as a thin wrapper over a policy."""

    def test_priority_policy_reorders_waiters(self):
        from repro.host import AcceleratorScheduler

        sim = Simulator()
        sched = AcceleratorScheduler(sim, n_units=1, policy="priority")
        order = []

        def app(sim, name, priority, delay):
            yield sim.timeout(delay)
            unit = yield sim.process(
                sched.acquire(name, priority=priority))
            order.append(name)
            yield sim.timeout(100)
            sched.release(unit)

        sim.process(app(sim, "batch", 0, 0))
        sim.process(app(sim, "bg", 0, 1))
        sim.process(app(sim, "urgent", 3, 2))
        sim.run()
        # batch holds the unit; urgent jumps ahead of bg in the queue.
        assert order == ["batch", "urgent", "bg"]
        assert sched.grants == {"batch": 1, "urgent": 1, "bg": 1}

    def test_rr_policy_fair_shares_apps(self):
        from repro.host import AcceleratorScheduler

        sim = Simulator()
        sched = AcceleratorScheduler(sim, n_units=1, policy="rr")
        order = []

        def request_loop(sim, name, count):
            for _ in range(count):
                unit = yield sim.process(sched.acquire(name))
                order.append(name)
                yield sim.timeout(10)
                sched.release(unit)

        sim.process(request_loop(sim, "greedy", 4))
        sim.process(request_loop(sim, "meek", 1))
        sim.run()
        # meek is served within one rotation, not after greedy's backlog.
        assert order.index("meek") <= 2
