"""``__all__`` audit: the public packages export what they promise.

Three contracts:

* every name in a package's ``__all__`` actually resolves (no stale
  exports after a refactor), with no duplicates;
* every public attribute a package module defines that *should* be
  shared — anything in one of its submodules' ``__all__`` that the
  package re-imports — appears in the package ``__all__`` (no silent
  gaps like the PR-3 policies or the new batch types being importable
  but unlisted);
* the specific spine types this repo's PRs added are pinned by name,
  so a future cleanup cannot drop them unnoticed.
"""

import importlib

import pytest

PACKAGES = ["repro.io", "repro.sim", "repro.api", "repro.flash",
            "repro.host", "repro.network", "repro.ftl", "repro.volume",
            "repro.dvol", "repro.parallel", "repro.faults"]

#: Package -> names that must stay exported (the QoS policies and
#: bandwidth accounting from PR 3, the batch/read-coalescing types
#: from PR 4, the volume subsystem and program-coalescing types from
#: this PR).
PINNED = {
    "repro.io": [
        "WeightedFairPolicy", "TokenBucketPolicy", "QueueEntry",
        "ScheduledResource", "RequestBatch", "BatchItem",
        "BatchStageSpan", "StageSpan", "IORequest", "IOKind",
        "RequestTracer", "POLICIES",
    ],
    "repro.sim": [
        "BandwidthLedger", "LatencyHistogram", "Simulator", "Event",
    ],
    "repro.flash": [
        "Coalescer", "WriteCoalescer", "first_group", "plan_groups",
        "FlashSplitter", "SplitterPort", "FlashCard", "WearTracker",
        "BadBlockTable", "ProgramFailedError", "BadBlockProgramError",
    ],
    "repro.api": [
        "ScenarioSpec", "WorkloadSpec", "TenantSpec", "VolumeSpec",
        "DistributedVolumeSpec", "FaultSpec", "Session", "RunResult",
        "experiment",
    ],
    "repro.ftl": [
        "BlockAllocator", "ALLOCATION_MODES", "PageMap", "FtlCore",
        "LogStructuredCore", "OutOfSpaceError", "BlockDeviceFTL",
        "WEAR_LEVELING_MODES",
    ],
    "repro.faults": [
        "FaultPlan", "FaultInjector", "set_fault_seed_override",
        "fault_seed_override",
    ],
    "repro.volume": [
        "LogicalVolume",
    ],
    "repro.dvol": [
        "ShardedVolume", "PlacementPlanner", "PLACEMENT_MODES",
        "DvolRouter", "ShardServiceIface", "RemoteCoalescer",
    ],
    "repro.parallel": [
        "parallel_map", "WorkerPool", "PointError", "active_pool",
        "current_pool",
    ],
}


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve_without_duplicates(package):
    module = importlib.import_module(package)
    exported = module.__all__
    assert len(set(exported)) == len(exported), (
        f"duplicate names in {package}.__all__")
    for name in exported:
        assert hasattr(module, name), (
            f"{package}.__all__ lists {name!r} but the package does "
            f"not define it")


@pytest.mark.parametrize("package", PACKAGES)
def test_reimported_submodule_publics_are_exported(package):
    """A name a submodule exports and the package re-imports must be in
    the package's ``__all__`` — otherwise it is public-by-accident."""
    module = importlib.import_module(package)
    exported = set(module.__all__)
    missing = []
    for name in dir(module):
        if name.startswith("_"):
            continue
        value = getattr(module, name)
        origin = getattr(value, "__module__", None)
        if origin is None or not origin.startswith(package + "."):
            continue
        submodule = importlib.import_module(origin)
        if name in getattr(submodule, "__all__", ()) \
                and name not in exported:
            missing.append(name)
    assert not missing, (
        f"{package} re-imports {sorted(missing)} from its submodules "
        f"but does not list them in __all__")


@pytest.mark.parametrize("package,names",
                         [(p, n) for p, ns in PINNED.items() for n in [ns]])
def test_pinned_spine_types_stay_exported(package, names):
    module = importlib.import_module(package)
    exported = set(module.__all__)
    missing = [name for name in names if name not in exported]
    assert not missing, (
        f"{package}.__all__ dropped pinned exports: {missing}")
