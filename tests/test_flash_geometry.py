"""Tests for flash geometry and physical addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.flash import DEFAULT_GEOMETRY, FlashGeometry, PhysAddr


@pytest.fixture
def geo():
    return FlashGeometry(buses_per_card=2, chips_per_bus=2,
                         blocks_per_chip=4, pages_per_block=4,
                         page_size=64, cards_per_node=2)


class TestCapacities:
    def test_paper_default_is_512gb_per_card(self):
        # 8 buses x 8 chips x 4096 blocks x 256 pages x 8KB = 512 GiB-ish.
        assert DEFAULT_GEOMETRY.card_bytes == 8 * 8 * 4096 * 256 * 8192

    def test_paper_default_node_is_1tb(self):
        assert DEFAULT_GEOMETRY.node_bytes == 2 * DEFAULT_GEOMETRY.card_bytes

    def test_small_counts(self, geo):
        assert geo.pages_per_chip == 16
        assert geo.pages_per_bus == 32
        assert geo.pages_per_card == 64
        assert geo.pages_per_node == 128
        assert geo.blocks_per_card == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            FlashGeometry(buses_per_card=0)


class TestPhysAddr:
    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            PhysAddr(bus=-1)

    def test_block_addr_zeroes_page(self):
        addr = PhysAddr(node=1, card=1, bus=2, chip=3, block=7, page=9)
        blk = addr.block_addr()
        assert blk.page == 0
        assert blk.block == 7
        assert blk.chip_key() == addr.chip_key()

    def test_keys(self):
        addr = PhysAddr(node=1, card=0, bus=2, chip=3, block=4, page=5)
        assert addr.chip_key() == (1, 0, 2, 3)
        assert addr.bus_key() == (1, 0, 2)

    def test_at_node(self):
        addr = PhysAddr(node=0, bus=1, block=2, page=3)
        moved = addr.at_node(7)
        assert moved.node == 7
        assert moved.bus == 1 and moved.block == 2 and moved.page == 3

    def test_ordering_and_hashing(self):
        a = PhysAddr(block=1)
        b = PhysAddr(block=2)
        assert a < b
        assert len({a, b, PhysAddr(block=1)}) == 2

    def test_str_is_readable(self):
        assert str(PhysAddr(node=1, card=0, bus=2, chip=3, block=4,
                            page=5)) == "n1/c0/b2/ch3/blk4/p5"


class TestLinearMapping:
    def test_roundtrip_all_pages(self, geo):
        seen = set()
        for linear in range(geo.pages_per_node):
            addr = geo.from_linear(linear, node=3)
            assert addr.node == 3
            assert geo.linear_page(addr) == linear
            seen.add((addr.card, addr.bus, addr.chip, addr.block, addr.page))
        assert len(seen) == geo.pages_per_node

    def test_linear_out_of_range(self, geo):
        with pytest.raises(ValueError):
            geo.from_linear(geo.pages_per_node)
        with pytest.raises(ValueError):
            geo.from_linear(-1)

    def test_validate_rejects_out_of_geometry(self, geo):
        with pytest.raises(ValueError):
            geo.validate(PhysAddr(bus=geo.buses_per_card))
        with pytest.raises(ValueError):
            geo.validate(PhysAddr(page=geo.pages_per_block))

    @given(st.integers(min_value=0))
    def test_roundtrip_property_default_geometry(self, linear):
        geo = DEFAULT_GEOMETRY
        linear %= geo.pages_per_node
        assert geo.linear_page(geo.from_linear(linear)) == linear


class TestStriping:
    def test_striped_spreads_over_chips_first(self, geo):
        # First (cards*buses*chips) indices must each hit a distinct chip.
        n_units = geo.cards_per_node * geo.buses_per_card * geo.chips_per_bus
        chips = {geo.striped(i).chip_key() for i in range(n_units)}
        assert len(chips) == n_units

    def test_striped_covers_all_pages(self, geo):
        addrs = {geo.striped(i) for i in range(geo.pages_per_node)}
        assert len(addrs) == geo.pages_per_node

    def test_striped_same_unit_advances_page(self, geo):
        n_units = geo.cards_per_node * geo.buses_per_card * geo.chips_per_bus
        first = geo.striped(0)
        second = geo.striped(n_units)
        assert first.chip_key() == second.chip_key()
        assert (second.block, second.page) != (first.block, first.page)

    def test_striped_out_of_range(self, geo):
        with pytest.raises(ValueError):
            geo.striped(geo.pages_per_node)

    def test_striped_index_inverts_striped(self, geo):
        assert all(geo.striped_index(geo.striped(i)) == i
                   for i in range(geo.pages_per_node))

    @given(st.integers(0, DEFAULT_GEOMETRY.pages_per_node - 1))
    def test_striped_index_property_default_geometry(self, index):
        assert DEFAULT_GEOMETRY.striped_index(
            DEFAULT_GEOMETRY.striped(index)) == index

    def test_striped_index_validates(self, geo):
        with pytest.raises(ValueError):
            geo.striped_index(PhysAddr(bus=geo.buses_per_card))

    def test_iter_block_pages(self, geo):
        addr = PhysAddr(bus=1, chip=1, block=2, page=3)
        pages = list(geo.iter_block_pages(addr))
        assert len(pages) == geo.pages_per_block
        assert all(p.block == 2 and p.bus == 1 for p in pages)
        assert [p.page for p in pages] == list(range(geo.pages_per_block))
