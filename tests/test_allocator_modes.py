"""BlockAllocator: heap free lists and the sequential allocation mode.

Two contracts this PR added:

* the per-chip free lists are min-heaps keyed by erase count, and
  least-erased-first order must survive arbitrary interleavings of
  takes, frees and external erase recording (the property the old
  sort-per-take gave by brute force);
* ``mode="sequential"`` hands out write points whose
  :meth:`~repro.flash.FlashGeometry.striped_index` values are exactly
  consecutive — the inverse of :meth:`~repro.flash.FlashGeometry.
  striped` — falling back to the chip rotation when no block id is
  free on every chip.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import BadBlockTable, FlashGeometry, PhysAddr, WearTracker
from repro.ftl import ALLOCATION_MODES, BlockAllocator

GEO = FlashGeometry(buses_per_card=2, chips_per_bus=2, blocks_per_chip=4,
                    pages_per_block=4, page_size=64, cards_per_node=1)
N_UNITS = (GEO.cards_per_node * GEO.buses_per_card * GEO.chips_per_bus)


def make_allocator(mode="striped", geometry=GEO, wear=None):
    return BlockAllocator(geometry, BadBlockTable(geometry),
                          wear or WearTracker(), node=0, mode=mode)


# ----------------------------------------------------------------------
# heap free lists
# ----------------------------------------------------------------------
class TestWearHeap:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            make_allocator(mode="zigzag")
        assert set(ALLOCATION_MODES) == {"striped", "sequential"}

    def test_take_prefers_least_erased_after_external_erases(self):
        wear = WearTracker()
        # Age block 0 of every chip *after* construction: the heap
        # entries go stale and must re-key lazily at take time.
        alloc = make_allocator(wear=wear)
        for unit in range(N_UNITS):
            addr = GEO.striped(unit)
            for _ in range(3):
                wear.record_erase(PhysAddr(node=0, card=addr.card,
                                           bus=addr.bus, chip=addr.chip,
                                           block=0))
        for _ in range(N_UNITS):
            taken = alloc.next_page()
            assert wear.erase_count(taken) == 0
            assert taken.block != 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(["take", "free", "erase"]),
                    min_size=1, max_size=60),
           st.randoms(use_true_random=False))
    def test_least_erased_first_under_interleaved_frees(self, script,
                                                        rng):
        """Whatever the interleaving, every taken block is least-erased
        (ties by id) among its chip's free blocks at take time."""
        wear = WearTracker()
        alloc = make_allocator(wear=wear)
        consumed = {}  # block_addr -> pages taken from it
        freeable = []  # fully-consumed blocks we may free back

        def erase_count(key, block):
            node, card, bus, chip = key
            return wear.erase_count(PhysAddr(
                node=node, card=card, bus=bus, chip=chip, block=block))

        for action in script:
            if action == "take":
                free_before = {
                    key: sorted(blocks)
                    for key, blocks in alloc._free.items() if blocks}
                addr = alloc.next_page()
                if addr is None:
                    continue
                key = (addr.node, addr.card, addr.bus, addr.chip)
                if addr.block in free_before.get(key, ()):
                    # A fresh block was opened: it must be minimal by
                    # (erase count, id) among the chip's free blocks.
                    best = min(free_before[key],
                               key=lambda b: (erase_count(key, b), b))
                    assert addr.block == best
                block = addr.block_addr()
                consumed[block] = consumed.get(block, 0) + 1
                if consumed[block] == GEO.pages_per_block:
                    freeable.append(block)
            elif action == "free" and freeable:
                block = freeable.pop(rng.randrange(len(freeable)))
                del consumed[block]
                wear.record_erase(block)
                alloc.release_block(block)
            elif action == "erase" and freeable:
                # External wear on an owned block (GC aging it before
                # the free) — must reorder future takes.
                wear.record_erase(
                    freeable[rng.randrange(len(freeable))])

    def test_double_release_still_rejected(self):
        alloc = make_allocator()
        addrs = [alloc.next_page() for _ in range(GEO.pages_per_node)]
        alloc.release_block(addrs[0])
        with pytest.raises(ValueError):
            alloc.release_block(addrs[0])

    def test_retire_block_removes_from_circulation(self):
        alloc = make_allocator()
        victim = PhysAddr(node=0, block=2)
        alloc.retire_block(victim)
        seen = set()
        while True:
            addr = alloc.next_page()
            if addr is None:
                break
            seen.add((addr.card, addr.bus, addr.chip, addr.block))
        assert (0, 0, 0, 2) not in seen


# ----------------------------------------------------------------------
# sequential mode
# ----------------------------------------------------------------------
class TestSequentialMode:
    def test_striped_indices_are_consecutive(self):
        alloc = make_allocator(mode="sequential")
        addrs = [alloc.next_page() for _ in range(3 * N_UNITS)]
        indices = [GEO.striped_index(a) for a in addrs]
        base = indices[0]
        assert indices == list(range(base, base + len(indices)))
        # And they really are the inverse of striped().
        for index, addr in zip(indices, addrs):
            assert GEO.striped(index) == addr

    def test_full_device_allocates_every_page(self):
        alloc = make_allocator(mode="sequential")
        seen = set()
        for _ in range(GEO.pages_per_node):
            addr = alloc.next_page()
            assert addr is not None
            seen.add(addr)
        assert len(seen) == GEO.pages_per_node
        assert alloc.next_page() is None

    def test_bad_block_excluded_and_rotation_fallback_used(self):
        badblocks = BadBlockTable(GEO)
        # Block 1 bad on one chip: no stripe group can use block 1.
        badblocks.mark_bad(PhysAddr(node=0, bus=1, chip=0, block=1))
        alloc = BlockAllocator(GEO, badblocks, WearTracker(), node=0,
                               mode="sequential")
        addrs = []
        while True:
            addr = alloc.next_page()
            if addr is None:
                break
            addrs.append(addr)
        # The bad block never appears, everything else does.
        assert all(not (a.bus == 1 and a.chip == 0 and a.block == 1)
                   for a in addrs)
        assert len(addrs) == GEO.pages_per_node - GEO.pages_per_block
        # Stripe groups formed from the blocks common to every chip
        # (3 of 4); the leftover good block-1 pages came from the
        # rotation fallback.
        groups = [a for a in addrs if a.block != 1]
        indices = [GEO.striped_index(a) for a in groups]
        assert indices[:3 * N_UNITS] == sorted(indices[:3 * N_UNITS])

    def test_sequential_wear_prefers_cold_stripe_group(self):
        wear = WearTracker()
        for unit in range(N_UNITS):
            addr = GEO.striped(unit)
            wear.record_erase(PhysAddr(node=0, card=addr.card,
                                       bus=addr.bus, chip=addr.chip,
                                       block=0))
        alloc = make_allocator(mode="sequential", wear=wear)
        first = alloc.next_page()
        # Block 0 is the most worn everywhere: the group opens on a
        # colder block id.
        assert first.block != 0
