"""Cross-cutting semantic tests: the paper's subtler contracts."""

import pytest

from repro.core import BlueDBMNode
from repro.flash import FlashGeometry, FlashTiming, PhysAddr
from repro.network import StorageNetwork, ring
from repro.sim import Simulator, Store

GEO = FlashGeometry(buses_per_card=2, chips_per_bus=2, blocks_per_chip=8,
                    pages_per_block=4, page_size=256, cards_per_node=1)
FAST = FlashTiming(t_read_ns=500, t_prog_ns=1000, t_erase_ns=2000,
                   bus_bytes_per_ns=1.0, aurora_bytes_per_ns=3.3,
                   aurora_latency_ns=5, cmd_overhead_ns=5)


class TestFigure6Ordering:
    """Figure 6: packets from the same endpoint to a destination keep
    FIFO order even while other endpoints interleave on other routes."""

    def test_interleaved_endpoints_each_stay_fifo(self):
        sim = Simulator()
        net = StorageNetwork(sim, ring(6, lanes=1), n_endpoints=3)
        received = {ep: [] for ep in range(3)}

        def sender(sim, ep):
            for i in range(15):
                yield sim.process(net.endpoint(0, ep).send(3, i, 64))

        def receiver(sim, ep):
            for _ in range(15):
                message = yield sim.process(net.endpoint(3, ep).receive())
                received[ep].append(message.payload)

        for ep in range(3):
            sim.process(sender(sim, ep))
            sim.process(receiver(sim, ep))
        sim.run()
        for ep in range(3):
            assert received[ep] == list(range(15)), f"endpoint {ep}"

    def test_multiple_sources_to_one_endpoint(self):
        """Different sources may interleave, but each source's messages
        arrive in its own send order."""
        sim = Simulator()
        net = StorageNetwork(sim, ring(5), n_endpoints=1)
        arrivals = []

        def sender(sim, src):
            for i in range(10):
                yield sim.process(
                    net.endpoint(src, 0).send(0, (src, i), 64))

        def receiver(sim):
            for _ in range(20):
                message = yield sim.process(net.endpoint(0, 0).receive())
                arrivals.append(message.payload)

        sim.process(sender(sim, 1))
        sim.process(sender(sim, 3))
        sim.process(receiver(sim))
        sim.run()
        for src in (1, 3):
            seq = [i for s, i in arrivals if s == src]
            assert seq == list(range(10))


class TestStaleExtentsAfterGC:
    """Section 4's contract is that applications *query* the file system
    for physical locations per job: extents captured before garbage
    collection may go stale; re-querying always yields live locations."""

    def _churned_node(self):
        sim = Simulator()
        node = BlueDBMNode(sim, geometry=GEO, flash_timing=FAST)

        def setup(sim):
            yield from node.fs.write_file("keep", b"K" * 256)
            for i in range(4 * GEO.pages_per_node):
                yield from node.fs.write_file("churn",
                                              bytes([i % 251]) * 256)

        before = None

        def capture(sim):
            nonlocal before
            yield from node.fs.write_file("keep", b"K" * 256)
            before = node.fs.physical_extents("keep")
            for i in range(4 * GEO.pages_per_node):
                yield from node.fs.write_file("churn",
                                              bytes([i % 251]) * 256)

        sim.run_process(capture(sim))
        return sim, node, before

    def test_requeried_extents_read_live_data(self):
        sim, node, before = self._churned_node()
        assert node.fs.gc_runs > 0
        after = node.fs.physical_extents("keep")

        def read(sim, addr):
            result = yield sim.process(node.isp_read(addr))
            return result.data

        assert sim.run_process(read(sim, after[0])).startswith(b"K" * 64)

    def test_stale_extents_may_be_relocated(self):
        sim, node, before = self._churned_node()
        after = node.fs.physical_extents("keep")
        # GC reclaimed blocks during the churn (greedy victims are the
        # fully-invalid churn blocks, so the kept file may or may not
        # have moved) — either way, the re-queried address is the
        # authoritative one and has the same shape.
        assert node.fs.gc_runs > 0
        assert len(after) == len(before)


class TestNandDisciplineThroughStack:
    def test_fs_never_violates_program_order(self):
        """The whole stack (FS -> allocator -> controller -> chip) must
        respect NAND's program-once-per-erase rule; a violation raises
        ProgramError and would crash this workload."""
        sim = Simulator()
        node = BlueDBMNode(sim, geometry=GEO, flash_timing=FAST)

        def hammer(sim):
            for round_ in range(3):
                for f in range(6):
                    yield from node.fs.write_file(
                        f"f{f}", bytes([round_ * 7 + f]) * 256)
                yield from node.fs.delete("f0")
                yield from node.fs.write_file("f0", b"reborn" * 10)

        sim.run_process(hammer(sim))

        def verify(sim):
            data = yield from node.fs.read_file("f0")
            return data

        assert sim.run_process(verify(sim)) == b"reborn" * 10

    def test_flash_server_streams_survive_concurrent_writes(self):
        """Reading one file while another is being written: streams see
        consistent data (pages are immutable once programmed)."""
        sim = Simulator()
        node = BlueDBMNode(sim, geometry=GEO, flash_timing=FAST)

        def setup(sim):
            yield from node.fs.write_file("stable", b"S" * 512)

        sim.run_process(setup(sim))
        extents = node.fs.physical_extents("stable")
        handle = node.flash_server.register_file("stable", extents)
        got = []

        def reader(sim):
            out = Store(sim)
            sim.process(node.flash_server.stream_file(
                handle.handle_id, out))
            for _ in range(len(extents)):
                result = yield out.get()
                got.append(result.data)

        def writer(sim):
            for i in range(8):
                yield from node.fs.write_file(f"noise{i}", bytes(200))

        sim.process(reader(sim))
        sim.process(writer(sim))
        sim.run()
        assert all(d == b"S" * 256 for d in got)
