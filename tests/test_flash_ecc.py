"""Tests for the SECDED error-correcting code."""

import pytest
from hypothesis import given, strategies as st

from repro.flash import ecc
from repro.flash.ecc import UncorrectableError

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestWordCodec:
    def test_clean_word_decodes_unchanged(self):
        data = 0xDEADBEEF12345678
        parity = ecc.encode_word(data)
        decoded, n = ecc.decode_word(data, parity)
        assert decoded == data
        assert n == 0

    @given(WORDS, st.integers(min_value=0, max_value=63))
    def test_any_single_data_bit_corrected(self, data, bit):
        parity = ecc.encode_word(data)
        corrupted = data ^ (1 << bit)
        decoded, n = ecc.decode_word(corrupted, parity)
        assert decoded == data
        assert n == 1

    @given(WORDS, st.integers(min_value=0, max_value=7))
    def test_any_single_parity_bit_flip_harmless(self, data, pbit):
        parity = ecc.encode_word(data)
        decoded, n = ecc.decode_word(data, parity ^ (1 << pbit))
        assert decoded == data
        assert n == 1

    @given(WORDS, st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_double_data_error_detected(self, data, bit1, bit2):
        if bit1 == bit2:
            return
        parity = ecc.encode_word(data)
        corrupted = data ^ (1 << bit1) ^ (1 << bit2)
        with pytest.raises(UncorrectableError):
            ecc.decode_word(corrupted, parity)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ecc.encode_word(1 << 64)
        with pytest.raises(ValueError):
            ecc.decode_word(1 << 64, 0)
        with pytest.raises(ValueError):
            ecc.decode_word(0, 256)


class TestPageCodec:
    def test_parity_overhead_is_one_byte_per_word(self):
        assert ecc.parity_bytes_for(8192) == 1024

    def test_parity_requires_word_multiple(self):
        with pytest.raises(ValueError):
            ecc.parity_bytes_for(100)

    def test_page_roundtrip_clean(self):
        data = bytes(range(256)) * 4  # 1024 bytes
        parity = ecc.encode_page(data)
        assert len(parity) == 128
        decoded, n = ecc.decode_page(data, parity)
        assert decoded == data
        assert n == 0

    def test_page_single_bit_in_each_of_two_words_corrected(self):
        data = bytearray(64)
        parity = ecc.encode_page(bytes(data))
        corrupted = bytearray(data)
        corrupted[0] ^= 0x01      # word 0
        corrupted[17] ^= 0x80     # word 2
        decoded, n = ecc.decode_page(bytes(corrupted), parity)
        assert decoded == bytes(data)
        assert n == 2

    def test_page_double_error_in_one_word_raises(self):
        data = bytes(64)
        parity = ecc.encode_page(data)
        corrupted = bytearray(data)
        corrupted[8] ^= 0x03  # two bits in word 1
        with pytest.raises(UncorrectableError):
            ecc.decode_page(bytes(corrupted), parity)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ecc.decode_page(bytes(16), bytes(1))
        with pytest.raises(ValueError):
            ecc.encode_page(bytes(12))

    @given(st.binary(min_size=8, max_size=64).filter(lambda b: len(b) % 8 == 0),
           st.data())
    def test_page_any_single_flip_corrected(self, data, draw):
        parity = ecc.encode_page(data)
        bit = draw.draw(st.integers(min_value=0, max_value=len(data) * 8 - 1))
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        decoded, n = ecc.decode_page(bytes(corrupted), parity)
        assert decoded == data
        assert n == 1
