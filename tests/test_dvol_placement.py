"""Property tests for the distributed-volume placement planner.

:class:`repro.dvol.PlacementPlanner` is a pure function from LPN to
``(node, shard_lpn)`` — these properties pin the contract everything
else in :mod:`repro.dvol` leans on: the map is a bijection (every LPN
lands on exactly one shard slot, and comes back through the inverse),
contiguous runs shatter into at most ``shards`` stripe-adjacent
sub-runs covering exactly the original pages, and the striped and
hashed modes are two bijections over the *same* page sets.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.dvol import PLACEMENT_MODES, PlacementPlanner

@st.composite
def planners(draw):
    chunk = draw(st.integers(min_value=1, max_value=16))
    rounds = draw(st.integers(min_value=1, max_value=16))
    slack = draw(st.integers(min_value=0, max_value=chunk - 1))
    return PlacementPlanner(
        shards=draw(st.integers(min_value=1, max_value=6)),
        shard_pages=rounds * chunk + slack,  # partial chunks unusable
        placement=draw(st.sampled_from(PLACEMENT_MODES)),
        stripe_chunk_pages=chunk,
        hash_seed=draw(st.integers(min_value=0, max_value=3)),
    )


@settings(max_examples=200, deadline=None)
@given(planners())
def test_every_lpn_maps_to_exactly_one_slot(planner):
    seen = set()
    for lpn in range(planner.total_pages):
        node, shard_lpn = planner.locate(lpn)
        assert 0 <= node < planner.shards
        assert 0 <= shard_lpn < planner.rounds * planner.chunk
        seen.add((node, shard_lpn))
    # Injective over the full space -> each slot used exactly once.
    assert len(seen) == planner.total_pages


@settings(max_examples=200, deadline=None)
@given(planners())
def test_locate_and_lpn_of_are_inverses(planner):
    for lpn in range(planner.total_pages):
        node, shard_lpn = planner.locate(lpn)
        assert planner.lpn_of(node, shard_lpn) == lpn


@settings(max_examples=200, deadline=None)
@given(planners(), st.data())
def test_split_run_covers_run_in_few_contiguous_pieces(planner, data):
    total = planner.total_pages
    if total == 0:
        return
    start = data.draw(st.integers(min_value=0, max_value=total - 1))
    count = data.draw(st.integers(min_value=1, max_value=total - start))
    runs = planner.split_run(start, count)

    covered = []
    for node, shard_start, length in runs:
        assert length >= 1
        for off in range(length):
            covered.append(planner.lpn_of(node, shard_start + off))
    # Exactly the requested pages, each once.
    assert sorted(covered) == list(range(start, start + count))

    # Stripe-adjacency survives: per node the pieces merged, so a run
    # never shatters into more pieces than there are shards... unless
    # it wraps rounds, in which case each (node, round) boundary can
    # start a new piece — but a run no longer than one full stripe
    # (shards * chunk pages) stays within `shards` pieces.
    if count <= planner.shards * planner.chunk:
        assert len(runs) <= planner.shards


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=3))
def test_striped_and_hashed_cover_identical_page_sets(
        shards, rounds, chunk, seed):
    shard_pages = rounds * chunk
    striped = PlacementPlanner(shards, shard_pages, "striped", chunk)
    hashed = PlacementPlanner(shards, shard_pages, "hashed", chunk,
                              hash_seed=seed)
    assert striped.total_pages == hashed.total_pages

    def slots(planner):
        return {planner.locate(lpn) for lpn in range(planner.total_pages)}

    # Same LPN domain, same (node, shard_lpn) codomain — hashing only
    # permutes which node serves which chunk within each round.
    assert slots(striped) == slots(hashed)


def test_striped_round_robins_chunks():
    planner = PlacementPlanner(shards=3, shard_pages=32,
                               placement="striped", stripe_chunk_pages=4)
    assert [planner.locate(lpn)[0] for lpn in range(0, 24, 4)] \
        == [0, 1, 2, 0, 1, 2]
    # Within a chunk the shard LPNs are contiguous.
    assert [planner.locate(lpn)[1] for lpn in range(4, 8)] == [0, 1, 2, 3]


def test_out_of_range_rejected():
    planner = PlacementPlanner(shards=2, shard_pages=16,
                               placement="striped", stripe_chunk_pages=4)
    with pytest.raises(ValueError):
        planner.locate(planner.total_pages)
    with pytest.raises(ValueError):
        planner.locate(-1)
    with pytest.raises(ValueError):
        planner.lpn_of(2, 0)
    with pytest.raises(ValueError):
        planner.lpn_of(0, 16)
