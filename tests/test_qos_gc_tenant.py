"""End-to-end GC-as-a-tenant tests: background traffic vs victim p99.

Session-level tests of the ``qos_gc`` scenario family (scaled down for
tier-1 speed): GC/wear-leveling runs as a ``background=True`` tenant —
a dedicated low-priority splitter port whose workers loop
read-victim/relocate/erase through private scratch blocks — while a
foreground ISP tenant reads a hot set.  FIFO lets the GC backlog
dictate the victim's p99; wfq and token-bucket hold it near baseline.
"""

import pytest

from repro.api import Session
from repro.experiments.qos import (
    GC_BURST_KB,
    GC_RATE_MBPS,
    qos_gc_scenario,
)

DURATION_NS = 8_000_000


@pytest.fixture(scope="module")
def runs():
    """Baseline (no GC) + fifo/wfq/token-bucket runs, shared."""
    out = {"baseline": Session(qos_gc_scenario(
        "fifo", with_gc=False, duration_ns=DURATION_NS)).run()}
    for policy in ("fifo", "wfq", "token-bucket"):
        out[policy] = Session(qos_gc_scenario(
            policy, duration_ns=DURATION_NS)).run()
    return out


def test_gc_degrades_victim_p99_under_fifo(runs):
    baseline = runs["baseline"].tenant_stats["isp"]
    fifo = runs["fifo"].tenant_stats["isp"]
    assert fifo["p99_ns"] > 3 * baseline["p99_ns"], (
        f"GC should wreck the FIFO victim: p99 {fifo['p99_ns']:.0f} vs "
        f"baseline {baseline['p99_ns']:.0f}")
    assert fifo["completed"] < 0.5 * baseline["completed"]
    assert fifo["deadline_misses"] > 0


@pytest.mark.parametrize("policy", ["wfq", "token-bucket"])
def test_victim_p99_bounded_under_wfq_and_token_bucket(runs, policy):
    baseline = runs["baseline"].tenant_stats["isp"]
    fifo = runs["fifo"].tenant_stats["isp"]
    victim = runs[policy].tenant_stats["isp"]
    assert victim["p99_ns"] < 0.5 * fifo["p99_ns"], (
        f"{policy} does not bound the victim: {victim['p99_ns']:.0f} "
        f"vs fifo {fifo['p99_ns']:.0f}")
    assert victim["p99_ns"] < 3 * baseline["p99_ns"]
    # GC still runs in the background — shaped, not starved.
    assert runs[policy].tenant_stats["gc"]["completed"] > 0


def test_gc_honors_its_token_bucket_cap(runs):
    result = runs["token-bucket"]
    gc_bytes = result.metrics["splitter_bandwidth"][0]["gc"]["bytes"]
    cap = (GC_RATE_MBPS * 1e6 / 1e9 * result.elapsed_ns
           + GC_BURST_KB * 1024)
    assert 0 < gc_bytes <= cap


def test_gc_tenant_accounting_includes_reads_and_writes(runs):
    """GC bandwidth counts both directions of a relocation.

    Each completed GC iteration reads one victim page and programs one
    scratch page, so the splitter must have charged gc at least
    2 x completions x page (erases add zero bytes but are serviced
    too — the read/write counters see them all).
    """
    result = runs["wfq"]
    completed = result.metrics["completions"]["gc"]
    gc_bytes = result.metrics["splitter_bandwidth"][0]["gc"]["bytes"]
    assert completed > 0
    assert gc_bytes >= 2 * completed * 8192


def test_gc_port_is_separate_from_fixed_ports(runs):
    """The background tenant got its own splitter port (index 3+)."""
    session = Session(qos_gc_scenario("fifo", duration_ns=100_000))
    ports = session.node.splitter.ports
    assert [p.tenant for p in ports[:3]] == ["isp", "host", "net"]
    assert ports[3].tenant == "gc"
    assert ports[3].priority == 0
