"""Distributed volumes end to end: routing, coalescing, accounting.

Small 2- and 3-node scenarios drive :mod:`repro.dvol` through the
declarative API: remote reads/writes cross the integrated network and
come back correct, traces show the ``net`` hops alongside
``queue``/``device``, the remote coalescer merges stripe-adjacent
runs, and the fabric's payload-byte ledger reconciles exactly — even
across multi-hop forwarded routes.
"""

import dataclasses

import pytest

from repro.api import (
    DistributedVolumeSpec,
    ScenarioSpec,
    Session,
    SpecError,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.network import NetworkConfig

PAGE = 8192


def dvol_spec(n_nodes=2, shards=2, tenant_node=0, placement="striped",
              remote_coalesce=False, fill=0.0, links=None,
              duration_ns=200_000, queue_depth=4, pattern="sequential",
              write_fraction=0.0, drain=False):
    topology = (TopologySpec(kind="custom", links=links) if links
                else TopologySpec())
    return ScenarioSpec(
        name="dvol-test", n_nodes=n_nodes, topology=topology,
        network=NetworkConfig(max_packet_payload=2048),
        dvol=DistributedVolumeSpec(
            shards=shards, placement=placement, stripe_chunk_pages=8,
            remote_coalesce=remote_coalesce,
            remote_coalesce_max_pages=8, remote_in_flight=4,
            volume={"fill": fill, "allocation": "sequential"}),
        workload=WorkloadSpec(
            duration_ns=duration_ns, queue_depth=queue_depth,
            drain=drain,
            tenants=(TenantSpec("t0", access="dvol", node=tenant_node,
                                pattern=pattern, addr_space=2048,
                                write_fraction=write_fraction,
                                software_path=False, workers=2),)))


# ----------------------------------------------------------------------
# flows
# ----------------------------------------------------------------------
def test_remote_read_crosses_network_and_returns_erased_pattern():
    # Unprefilled volume: every read — local or remote — returns the
    # erased pattern, so a wrong routing/shard mapping cannot hide.
    session = Session(dvol_spec())
    dvol = session.dvol
    iface = session._dvol_ifaces["t0"]
    datas = []

    def driver(sim):
        for lpn in (0, 8, 16, 24):  # chunks alternate node 0 / node 1
            data = yield from dvol.read_lpn(0, iface, lpn,
                                            software_path=False)
            datas.append(data)

    session.sim.run_process(driver(session.sim))
    assert all(d == b"\xff" * PAGE for d in datas)
    routers = {n: r.stats() for n, r in dvol.routers.items()}
    assert routers[0]["remote_reads"] == 2      # lpns 8, 24 live on node 1
    assert routers[1]["served_reads"] == 2


def test_remote_write_read_roundtrip_under_tenant_identity():
    session = Session(dvol_spec())
    dvol = session.dvol
    iface = session._dvol_ifaces["t0"]
    payload = bytes([7]) * PAGE
    out = []

    def driver(sim):
        yield from dvol.write_lpn(0, iface, 9, payload,
                                  software_path=False)
        data = yield from dvol.read_lpn(0, iface, 9,
                                        software_path=False)
        out.append(data)

    session.sim.run_process(driver(session.sim))
    assert out == [payload]
    # LPN 9 lives in node 1's chunk: the write and the read both
    # crossed the network and were served by node 1's shard.
    stats = dvol.routers[1].stats()
    assert stats["served_writes"] == 1
    assert stats["served_reads"] == 1
    # The shard accounted the program to the *source* tenant, not to
    # the service port.
    assert dvol.shards[1].stats()["user_writes"]["t0"] == 1


def test_remote_ops_trace_net_alongside_queue_and_device():
    session = Session(dvol_spec(remote_coalesce=True, fill=1.0))
    result = None

    def driver(sim):
        dvol = session.dvol
        iface = session._dvol_ifaces["t0"]
        yield from dvol.read_lpn(0, iface, 8, software_path=False)

    session.sim.run_process(driver(session.sim))
    result = session.result()
    stages = result.stage_stats
    # The remote read decomposes into network serialization hops plus
    # the ordinary storage stages at the destination.
    for stage in ("net", "queue", "device", "pcie", "interrupt"):
        assert stage in stages, f"missing stage {stage!r}"
    # Both directions charged: request-command hop + page-response hop.
    assert stages["net"]["mean_ns"] > 0


def test_remote_coalescer_merges_sequential_remote_runs():
    spec = dvol_spec(remote_coalesce=True, fill=1.0,
                     links=((0, 1), (0, 1)), duration_ns=400_000,
                     queue_depth=16)
    result = Session(spec).run()
    remote = result.metrics["dvol"]["remote_coalescing"]
    pages = sum(s["pages"] for s in remote.values())
    commands = sum(s["commands"] for s in remote.values())
    assert commands > 0
    assert pages / commands > 1.5


def test_hashed_placement_serves_the_same_scan():
    striped = Session(dvol_spec(fill=1.0)).run()
    hashed = Session(dvol_spec(fill=1.0, placement="hashed")).run()
    for run in (striped, hashed):
        assert run.metrics["completions"]["t0"] > 0
    # Both placements expose the same logical capacity.
    assert (striped.metrics["dvol"]["logical_pages"]
            == hashed.metrics["dvol"]["logical_pages"])


def test_single_node_dvol_is_all_local():
    result = Session(dvol_spec(n_nodes=1, shards=1, fill=1.0)).run()
    assert result.metrics["completions"]["t0"] > 0
    assert "routers" not in result.metrics["dvol"]


# ----------------------------------------------------------------------
# byte-accounting reconciliation (multi-hop forwarding)
# ----------------------------------------------------------------------
def test_byte_ledger_reconciles_across_forwarded_hops():
    # A 3-node line with both shards on nodes 0-1 and the tenant on
    # node 2: every request to shard 0 (and its page-sized response)
    # crosses node 1, which must charge its links without inflating
    # the endpoint totals.
    spec = dvol_spec(n_nodes=3, tenant_node=2,
                     links=((0, 1), (1, 2)), drain=True)
    session = Session(spec)
    session.run()
    ledger = session.cluster.network.byte_ledger()
    # Traffic flowed, and some of it was relayed through node 1.
    assert ledger["endpoint_sent_bytes"] > 0
    assert ledger["forwarded_bytes"] > 0
    # Endpoints count each payload once per end; the wire counts every
    # hop, the relays being exactly the surplus.
    assert (ledger["endpoint_sent_bytes"]
            == ledger["endpoint_received_bytes"])
    assert (ledger["link_payload_bytes"] - ledger["forwarded_bytes"]
            == ledger["endpoint_sent_bytes"])


def test_byte_ledger_reconciles_without_forwarding():
    # Adjacent nodes (2-node direct link): no relays, wire == endpoints.
    spec = dvol_spec(drain=True)
    session = Session(spec)
    session.run()
    ledger = session.cluster.network.byte_ledger()
    assert ledger["endpoint_sent_bytes"] > 0
    assert ledger["forwarded_bytes"] == 0
    assert (ledger["endpoint_sent_bytes"]
            == ledger["endpoint_received_bytes"])
    assert (ledger["link_payload_bytes"]
            == ledger["endpoint_sent_bytes"])


# ----------------------------------------------------------------------
# spec validation and serialization
# ----------------------------------------------------------------------
def test_dvol_tenant_without_dvol_spec_rejected():
    with pytest.raises(SpecError):
        ScenarioSpec(
            n_nodes=2,
            workload=WorkloadSpec(
                duration_ns=1000,
                tenants=(TenantSpec("t0", access="dvol"),)))


def test_dvol_more_shards_than_nodes_rejected():
    with pytest.raises(SpecError):
        dataclasses.replace(dvol_spec(), dvol=DistributedVolumeSpec(
            shards=3))


def test_dvol_bad_placement_rejected():
    with pytest.raises(SpecError):
        DistributedVolumeSpec(placement="round-robin")


def test_dvol_remote_coalesce_needs_two_pages():
    with pytest.raises(SpecError):
        DistributedVolumeSpec(remote_coalesce=True,
                              remote_coalesce_max_pages=1)


def test_dvol_tenant_cannot_take_fixed_port_name():
    with pytest.raises(SpecError):
        TenantSpec("host", access="dvol")


def test_dvol_windows_overflow_rejected():
    with pytest.raises(SpecError):
        spec = dvol_spec()
        dataclasses.replace(
            spec, workload=dataclasses.replace(
                spec.workload,
                tenants=(TenantSpec("t0", access="dvol",
                                    addr_space=10_000_000),)))


def test_dvol_spec_round_trips_through_dicts():
    spec = dvol_spec(remote_coalesce=True, fill=0.5,
                     placement="hashed", links=((0, 1), (0, 1)))
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
