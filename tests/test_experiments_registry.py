"""The hand-maintained experiments registry must not drift.

``python -m repro experiments`` prints ``repro.__main__.EXPERIMENTS`` as
the catalogue of everything the repo reproduces; nothing enforces that a
newly-added benchmark file gets an entry.  This test closes the loop in
both directions: every ``benchmarks/test_*.py`` matches a registry entry
(entries may use glob patterns, e.g. ``test_ablation_*.py``), and every
registry entry points at at least one real file.
"""

import fnmatch
import pathlib

from repro.__main__ import EXPERIMENTS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def _benchmark_files():
    return sorted(p.name for p in BENCH_DIR.glob("test_*.py"))


def _registry_patterns():
    patterns = []
    for _, _, path in EXPERIMENTS:
        prefix = "benchmarks/"
        assert path.startswith(prefix), (
            f"registry path {path!r} does not live under benchmarks/")
        patterns.append(path[len(prefix):])
    return patterns


def test_benchmarks_exist():
    assert _benchmark_files(), "no benchmark files found — wrong layout?"


def test_every_benchmark_is_registered():
    patterns = _registry_patterns()
    unregistered = [
        name for name in _benchmark_files()
        if not any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
    ]
    assert not unregistered, (
        f"benchmarks missing from repro.__main__.EXPERIMENTS: "
        f"{unregistered} — add an entry so "
        f"`python -m repro experiments` stays complete")


def test_every_registry_entry_matches_a_file():
    files = _benchmark_files()
    stale = [
        pattern for pattern in _registry_patterns()
        if not any(fnmatch.fnmatch(name, pattern) for name in files)
    ]
    assert not stale, (
        f"EXPERIMENTS entries with no matching benchmark file: {stale}")


def test_registry_rows_are_well_formed():
    for row in EXPERIMENTS:
        assert len(row) == 3
        exp_id, title, path = row
        assert exp_id and title and path
