"""The decorator-based experiment registry must not drift.

``repro list`` prints the registry as the catalogue of everything the
repo reproduces; the ``@experiment`` decorator builds it next to the
measurement code.  These tests close the loop in every direction:
every registered id resolves to a runnable callable and an existing
benchmark file, every benchmark file is produced by some experiment,
and the CLI's ``list`` output matches the registry exactly.
"""

import io
import pathlib
from contextlib import redirect_stdout

from repro.__main__ import cmd_list
from repro.api import Experiment, all_experiments, get_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def _benchmark_files():
    return sorted(p.name for p in BENCH_DIR.glob("test_*.py"))


def test_registry_is_populated():
    assert len(all_experiments()) >= 16


def test_every_experiment_is_runnable_and_well_formed():
    for exp in all_experiments():
        assert isinstance(exp, Experiment)
        assert exp.exp_id and exp.title and exp.label
        assert callable(exp.runner)
        assert get_experiment(exp.exp_id) is exp


def test_every_experiment_produces_an_existing_benchmark():
    for exp in all_experiments():
        assert exp.produces.startswith("benchmarks/"), (
            f"{exp.exp_id}: produces {exp.produces!r} does not live "
            f"under benchmarks/")
        assert (REPO_ROOT / exp.produces).is_file(), (
            f"{exp.exp_id}: {exp.produces} does not exist")


def test_every_benchmark_is_registered():
    produced = {pathlib.Path(exp.produces).name
                for exp in all_experiments()}
    unregistered = [name for name in _benchmark_files()
                    if name not in produced]
    assert not unregistered, (
        f"benchmarks with no registered experiment: {unregistered} — "
        f"register one with @experiment so `repro list` stays complete")


def test_experiment_ids_are_unique():
    ids = [exp.exp_id for exp in all_experiments()]
    assert len(set(ids)) == len(ids)


def test_cli_list_matches_registry_exactly():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert cmd_list() == 0
    lines = [line for line in buffer.getvalue().splitlines()
             if line and not line.startswith("run one:")]
    experiments = all_experiments()
    assert len(lines) == len(experiments)
    for line, exp in zip(lines, experiments):
        # Each row carries exactly this experiment's id, label, title
        # and benchmark path, in registry order.
        assert line.startswith(exp.exp_id), (line, exp.exp_id)
        assert exp.label in line
        assert exp.title in line
        assert line.rstrip().endswith(exp.produces)
